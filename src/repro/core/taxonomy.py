"""The Table 2 taxonomy: 12 policy combinations and their factory.

Three orthogonal axes — throttling mechanism x scope x migration — give
2 x 2 x 3 = 12 schemes. :data:`ALL_POLICY_SPECS` enumerates them in the
paper's table order (rows: global, distributed; columns: no migration,
counter-based, sensor-based; stop-go before DVFS within each cell pair),
and :func:`build_policy` constructs the runnable policy objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.counter_migration import CounterBasedMigration
from repro.core.dvfs import DVFSPolicy
from repro.core.migration import MigrationPolicy
from repro.core.policy import DEFAULT_THRESHOLD_C, ThrottlePolicy
from repro.core.sensor_migration import SensorBasedMigration
from repro.core.stopgo import StopGoPolicy


class ThrottleKind(enum.Enum):
    """First axis: the low-level throttling mechanism."""

    STOP_GO = "stop-go"
    DVFS = "dvfs"


class Scope(enum.Enum):
    """Second axis: global chip-wide control vs. per-core control."""

    GLOBAL = "global"
    DISTRIBUTED = "distributed"


class MigrationKind(enum.Enum):
    """Third axis: the OS migration mechanism."""

    NONE = "none"
    COUNTER = "counter"
    SENSOR = "sensor"


@dataclass(frozen=True)
class PolicySpec:
    """One cell of Table 2."""

    throttle: ThrottleKind
    scope: Scope
    migration: MigrationKind

    @property
    def name(self) -> str:
        """Human-readable name matching the paper's terminology."""
        scope = "Global" if self.scope is Scope.GLOBAL else "Dist."
        mech = "stop-go" if self.throttle is ThrottleKind.STOP_GO else "DVFS"
        base = f"{scope} {mech}"
        if self.migration is MigrationKind.COUNTER:
            return f"{base} + counter-based migration"
        if self.migration is MigrationKind.SENSOR:
            return f"{base} + sensor-based migration"
        return base

    @property
    def is_baseline(self) -> bool:
        """Whether this is the paper's baseline (distributed stop-go)."""
        return (
            self.throttle is ThrottleKind.STOP_GO
            and self.scope is Scope.DISTRIBUTED
            and self.migration is MigrationKind.NONE
        )

    @property
    def key(self) -> str:
        """Stable machine-readable identifier."""
        return f"{self.scope.value}-{self.throttle.value}-{self.migration.value}"


def _spec_order() -> List[PolicySpec]:
    specs = []
    for migration in (MigrationKind.NONE, MigrationKind.COUNTER, MigrationKind.SENSOR):
        for scope in (Scope.GLOBAL, Scope.DISTRIBUTED):
            for throttle in (ThrottleKind.STOP_GO, ThrottleKind.DVFS):
                specs.append(PolicySpec(throttle, scope, migration))
    return specs


#: All 12 combinations in Table 2 order (migration-major, global row first).
ALL_POLICY_SPECS: Tuple[PolicySpec, ...] = tuple(_spec_order())

#: The paper's baseline: distributed stop-go, no migration.
BASELINE_SPEC = PolicySpec(ThrottleKind.STOP_GO, Scope.DISTRIBUTED, MigrationKind.NONE)


#: Token spellings accepted by :func:`spec_by_key` beyond the canonical
#: key (axis order is also free, so ``dvfs-dist-none`` resolves to
#: ``distributed-dvfs-none``).
_KEY_ALIASES = {
    "dist": ("distributed",),
    "distributed": ("distributed",),
    "global": ("global",),
    "dvfs": ("dvfs",),
    "stopgo": ("stop", "go"),
    "stop": ("stop",),
    "go": ("go",),
    "none": ("none",),
    "counter": ("counter",),
    "sensor": ("sensor",),
}


def spec_by_key(key: str) -> PolicySpec:
    """Look up a spec by its :attr:`PolicySpec.key`.

    Exact keys always win; otherwise common alias spellings are accepted
    — axis tokens in any order, ``dist`` for ``distributed``, ``stopgo``
    for ``stop-go`` — so CLI users can type ``dvfs-dist-none`` for
    ``distributed-dvfs-none``.
    """
    for spec in ALL_POLICY_SPECS:
        if spec.key == key:
            return spec
    tokens: List[str] = []
    for token in key.lower().split("-"):
        expanded = _KEY_ALIASES.get(token)
        if expanded is None:
            raise KeyError(f"unknown policy key {key!r}")
        tokens.extend(expanded)
    wanted = sorted(tokens)
    for spec in ALL_POLICY_SPECS:
        if sorted(spec.key.split("-")) == wanted:
            return spec
    raise KeyError(f"unknown policy key {key!r}")


def build_policy(
    spec: PolicySpec,
    n_cores: int,
    dt: float,
    threshold_c: float = DEFAULT_THRESHOLD_C,
    core_min_scales: Optional[Sequence[float]] = None,
) -> Tuple[ThrottlePolicy, Optional[MigrationPolicy]]:
    """Instantiate the throttle and (optional) migration policy for a spec.

    Parameters
    ----------
    spec:
        The taxonomy cell.
    n_cores:
        Number of cores.
    dt:
        Control period (trace sample period) for the DVFS PI design.
    threshold_c:
        Thermal emergency threshold.
    core_min_scales:
        Optional per-core DVFS floors (a scenario's per-class operating
        points, see :mod:`repro.scenarios`). Applies only to DVFS
        throttling — stop-go is binary clock gating, not an operating
        point. ``None`` keeps the paper's uniform 0.2 floor.
    """
    if spec.throttle is ThrottleKind.STOP_GO:
        throttle: ThrottlePolicy = StopGoPolicy(
            n_cores, scope=spec.scope.value, threshold_c=threshold_c
        )
    else:
        throttle = DVFSPolicy(
            n_cores,
            dt=dt,
            scope=spec.scope.value,
            threshold_c=threshold_c,
            output_floors=core_min_scales,
        )

    migration: Optional[MigrationPolicy]
    if spec.migration is MigrationKind.NONE:
        migration = None
    elif spec.migration is MigrationKind.COUNTER:
        migration = CounterBasedMigration()
    else:
        migration = SensorBasedMigration()
    return throttle, migration
