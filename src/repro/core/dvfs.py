"""PI-controlled DVFS throttling (Section 4 of the paper).

Each controlled domain (one per core when distributed, one for the whole
chip when global) runs the paper's discrete PI law at the trace sample
period, regulating the domain's hottest monitored sensor toward a setpoint
just below the 84.2 C emergency threshold. Outputs are clipped to
[0.2, 1.0]; the actuator-side constraints (10 us transition penalty, 2%
minimum transition) are enforced by :class:`repro.core.dvfs.DVFSActuator`,
which the engine interposes between policy output and the modeled silicon.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.control.pi import (
    MAX_FREQUENCY_SCALE,
    MIN_FREQUENCY_SCALE,
    DiscretePIController,
    PIDesign,
    design_paper_controller,
)
from repro.core.policy import DEFAULT_THRESHOLD_C, SensorReadings, ThrottlePolicy

#: Setpoint margin below the threshold ("slightly below", Section 2.3).
DEFAULT_SETPOINT_MARGIN_C = 2.0


class DVFSPolicy(ThrottlePolicy):
    """Formal closed-loop DVFS, global or distributed.

    Parameters
    ----------
    n_cores:
        Number of cores.
    dt:
        Control period (the trace sample period).
    scope:
        ``"distributed"``: one PI controller per core; ``"global"``: one
        controller fed the hottest sensor anywhere, output applied to all.
    design:
        PI design; defaults to the paper's constants at ``dt``.
    threshold_c, setpoint_margin_c:
        Emergency threshold and setpoint placement below it.
    output_floors:
        Optional per-core lower clips of the frequency scale (per-class
        DVFS floors from a :mod:`repro.scenarios` tech node / core
        class). Distributed scope gives controller ``c`` the floor of
        core ``c``; global scope uses the most restrictive (highest)
        floor, since one shared operating point must stay legal for
        every core in the domain. ``None`` keeps the paper's uniform
        ``MIN_FREQUENCY_SCALE`` clip.
    """

    kind = "dvfs"

    def __init__(
        self,
        n_cores: int,
        dt: float,
        scope: str = "distributed",
        design: Optional[PIDesign] = None,
        threshold_c: float = DEFAULT_THRESHOLD_C,
        setpoint_margin_c: float = DEFAULT_SETPOINT_MARGIN_C,
        output_floors: Optional[Sequence[float]] = None,
    ):
        """Build one PI controller per core (or one shared, global scope)."""
        super().__init__(n_cores, threshold_c)
        if scope not in ("global", "distributed"):
            raise ValueError(f"scope must be 'global' or 'distributed': {scope!r}")
        if not setpoint_margin_c >= 0:
            raise ValueError(f"setpoint_margin_c must be >= 0: {setpoint_margin_c}")
        self.scope = scope
        self.design = design or design_paper_controller(dt)
        self.setpoint_c = self.threshold_c - setpoint_margin_c
        n_controllers = n_cores if scope == "distributed" else 1
        if output_floors is None:
            floors = [MIN_FREQUENCY_SCALE] * n_controllers
        else:
            floors = [float(f) for f in output_floors]
            if len(floors) != n_cores:
                raise ValueError(
                    f"output_floors must have {n_cores} entries, "
                    f"got {len(floors)}"
                )
            if scope == "global":
                floors = [max(floors)]
        self.controllers: List[DiscretePIController] = [
            DiscretePIController(
                self.design, setpoint=self.setpoint_c, output_min=floors[i]
            )
            for i in range(n_controllers)
        ]

    def controller_for(self, core: int) -> DiscretePIController:
        """The controller governing ``core``."""
        return self.controllers[core if self.scope == "distributed" else 0]

    def scales(self, time_s: float, readings: SensorReadings) -> List[float]:
        """Advance each controller one period and return per-core scales.

        "Since an individual controller governs an entire core or
        processor, it typically selects the hottest of the input
        temperatures" (Section 4.1).
        """
        self._check_readings(readings)
        return self.scales_from_hottest(
            time_s, [self.hottest(r) for r in readings]
        )

    def scales_from_hottest(
        self, time_s: float, hottest: Sequence[float]
    ) -> List[float]:
        """Validation-free :meth:`scales` on per-core hottest readings.

        The controllers only ever consume each core's hottest monitored
        temperature, so the engine's hot loop can hand that in directly
        (skipping per-step dict assembly); results are identical to
        :meth:`scales` on the readings the values came from.
        """
        if self.scope == "distributed":
            return [
                self.controllers[core].step(hottest[core], time_s)
                for core in range(self.n_cores)
            ]
        scale = self.controllers[0].step(max(hottest), time_s)
        return [scale] * self.n_cores

    def average_scale(self, core: int) -> float:
        """Mean PI output over the current feedback window."""
        return self.controller_for(core).average_output

    def reset_window(self, core: int) -> None:
        """Restart the feedback-averaging window for ``core``."""
        self.controller_for(core).reset_window()

    def on_migration(self, cores: Sequence[int], time_s: float) -> None:
        """Migration flushes the departed thread's feedback window."""
        for core in cores:
            self.reset_window(core)


class DVFSActuator:
    """Physical voltage/frequency actuator for one core.

    Enforces the Table 3 constraints: a requested change smaller than 2%
    of the scale range is ignored (the PLL is not re-locked for noise),
    and every accepted change stalls the core for the 10 us transition
    penalty. Stop-go's 0.0 "scale" bypasses the actuator — clock gating is
    not a PLL transition.

    Fault hook: ``fault_gate`` (when set, see :mod:`repro.faults`) is a
    callable ``(time_s, requested, current) -> (allow, extra_penalty_s)``
    consulted only for requests that pass the minimum-transition filter —
    i.e. only for transitions that would actually re-lock the PLL. A
    rejected request leaves the operating point unchanged and costs
    nothing (it was lost, not executed); an accepted one may carry extra
    stall time. The gate is ``None`` in un-faulted runs, keeping that
    path byte-identical to the pre-fault actuator.
    """

    def __init__(
        self,
        transition_penalty_s: float = 10e-6,
        min_transition: float = 0.02,
        initial_scale: float = MAX_FREQUENCY_SCALE,
    ):
        """Validate the Table 3 constants and start at ``initial_scale``."""
        if not transition_penalty_s >= 0:
            raise ValueError(f"transition_penalty_s must be >= 0")
        if not 0 <= min_transition < 1:
            raise ValueError(f"min_transition must be in [0,1): {min_transition}")
        self.transition_penalty_s = float(transition_penalty_s)
        self.min_transition_abs = min_transition * (
            MAX_FREQUENCY_SCALE - MIN_FREQUENCY_SCALE
        )
        self.current_scale = float(initial_scale)
        self.transitions = 0
        self.fault_gate = None
        #: Transitions lost to an injected fault (0 without a gate).
        self.faulted_rejections = 0

    def request(self, scale: float, time_s: float = 0.0) -> float:
        """Apply a requested scale; returns the stall time incurred (s).

        The new operating point takes effect immediately after the stall;
        the caller accounts the stall against useful work in the current
        step. ``time_s`` only matters when a ``fault_gate`` is attached
        (fault activation windows are expressed in silicon time).
        """
        if not 0.0 < scale <= MAX_FREQUENCY_SCALE:
            raise ValueError(f"scale must be in (0, 1]: {scale}")
        if abs(scale - self.current_scale) < self.min_transition_abs:
            return 0.0
        penalty = self.transition_penalty_s
        if self.fault_gate is not None:
            allow, extra_penalty_s = self.fault_gate(
                time_s, scale, self.current_scale
            )
            if not allow:
                self.faulted_rejections += 1
                return 0.0
            penalty += extra_penalty_s
        self.current_scale = scale
        self.transitions += 1
        return penalty
