"""Throttle-policy interface.

A throttle policy is the inner, fine-grained loop of the paper's design:
once per trace sample (27.78 us) it reads the per-core hotspot sensors and
returns one frequency-scale factor per core. The two mechanisms map onto
that interface naturally:

* stop-go returns 1.0 (run) or 0.0 (frozen);
* DVFS returns the PI controller's clipped output in [0.2, 1.0].

A *global* policy returns the same value for every core.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

#: The paper's thermal emergency threshold (deg C).
DEFAULT_THRESHOLD_C = 84.2

#: Sensor reading type: hotspot unit name -> temperature, one dict per core.
SensorReadings = List[Dict[str, float]]


class ThrottlePolicy(abc.ABC):
    """Base class for the inner control loop."""

    #: Short mechanism tag ("stop-go" or "dvfs"), set by subclasses.
    kind: str = ""

    def __init__(self, n_cores: int, threshold_c: float = DEFAULT_THRESHOLD_C):
        """Validate the core count and pin the emergency threshold."""
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1: {n_cores}")
        self.n_cores = n_cores
        self.threshold_c = float(threshold_c)

    @abc.abstractmethod
    def scales(self, time_s: float, readings: SensorReadings) -> List[float]:
        """One frequency-scale factor per core for the next step.

        ``readings`` holds, per core, the temperatures of that core's
        monitored hotspots. A return value of 0.0 means "stalled" (stop-go
        freeze); DVFS values lie in its clipped range.
        """

    def on_migration(self, cores: Sequence[int], time_s: float) -> None:
        """Hook: the OS migrated the threads on ``cores`` at ``time_s``.

        Default: no action. DVFS overrides this to reset its per-core
        feedback-averaging windows (the recorded data was for the departed
        thread).
        """

    def average_scale(self, core: int) -> float:
        """Mean effective scale of ``core`` since its window reset.

        The outer migration loop reads this to time-normalise observed
        thermal trends. Stop-go policies report their duty fraction;
        DVFS policies report the mean PI output.
        """
        return 1.0

    def reset_window(self, core: int) -> None:
        """Clear the averaging window of :meth:`average_scale`."""

    @staticmethod
    def hottest(reading: Dict[str, float]) -> float:
        """Hottest monitored temperature of one core."""
        if not reading:
            raise ValueError("empty sensor reading")
        return max(reading.values())

    def _check_readings(self, readings: SensorReadings) -> None:
        if len(readings) != self.n_cores:
            raise ValueError(
                f"expected readings for {self.n_cores} cores, got {len(readings)}"
            )
