"""Counter-based migration (Section 6.1).

Thread intensity on a hotspot unit is estimated from hardware performance
counters: register-file accesses per *adjusted* cycle (the OS records the
frequency scaling factors seen by each run and normalises with them, "used
to scale the power estimations from performance counters by a cubic
relation"). The estimate is the same for every core — counters know the
thread, not the die position — which is exactly the approximation the
sensor-based mechanism later refines.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.migration import MigrationContext, MigrationPolicy
from repro.osmodel.timer import DEFAULT_MIGRATION_PERIOD_S

#: Exponent of the power-vs-frequency relation used for normalisation.
CUBIC = 3.0


class CounterBasedMigration(MigrationPolicy):
    """Figure 4 matching with performance-counter intensities."""

    kind = "counter"

    def __init__(self, min_interval_s: float = DEFAULT_MIGRATION_PERIOD_S):
        """Rate-limit migrations to one per ``min_interval_s`` seconds."""
        super().__init__(min_interval_s)

    def propose(self, ctx: MigrationContext) -> Optional[List[int]]:
        """Greedy reassignment from counter-derived intensities."""
        scheduler = ctx.scheduler

        def intensity(pid: int, core: int, unit: str) -> float:
            # Counters are thread properties: core-independent.
            return scheduler.process(pid).counters.intensity_for(unit)

        # Until threads have accumulated any counter history there is no
        # basis for a decision.
        if all(
            p.counters.adjusted_cycles == 0 for p in scheduler.processes
        ):
            return None
        return self.matched_assignment(ctx, intensity)
