"""Stop-go throttling (global clock gating).

Section 5.1 of the paper: each core runs at full speed until a sensor at
one of its register files reads just below the 84.2 C threshold; a thermal
interrupt then freezes the core for 30 ms, after which it resumes. In the
global variant a trip anywhere freezes the entire chip. Frozen cores keep
their architectural state — the mechanism is "more like a suspend or sleep
switch than an off-switch" — so dynamic power stops but leakage continues
(the engine models exactly that split).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.policy import DEFAULT_THRESHOLD_C, SensorReadings, ThrottlePolicy

#: Freeze duration after a thermal trip (Section 2.3).
DEFAULT_FREEZE_S = 30e-3

#: Trip margin: the interrupt fires when a sensor is within this many
#: degrees of the threshold ("just below the thermal threshold").
DEFAULT_TRIP_MARGIN_C = 0.2


class StopGoPolicy(ThrottlePolicy):
    """Freeze-on-trip throttling, global or distributed.

    Parameters
    ----------
    n_cores:
        Number of cores.
    scope:
        ``"distributed"`` freezes only the tripping core; ``"global"``
        freezes every core when any sensor trips.
    threshold_c, freeze_s, trip_margin_c:
        Emergency threshold, freeze duration, and trip margin.
    """

    kind = "stop-go"

    def __init__(
        self,
        n_cores: int,
        scope: str = "distributed",
        threshold_c: float = DEFAULT_THRESHOLD_C,
        freeze_s: float = DEFAULT_FREEZE_S,
        trip_margin_c: float = DEFAULT_TRIP_MARGIN_C,
    ):
        """Validate scope and freeze length; start with no core frozen."""
        super().__init__(n_cores, threshold_c)
        if scope not in ("global", "distributed"):
            raise ValueError(f"scope must be 'global' or 'distributed': {scope!r}")
        if not freeze_s > 0:
            raise ValueError(f"freeze_s must be positive: {freeze_s}")
        self.scope = scope
        self.freeze_s = float(freeze_s)
        self.trip_margin_c = float(trip_margin_c)
        self._frozen_until: List[float] = [-1.0] * n_cores
        self.trip_count = 0
        # Duty bookkeeping for average_scale (outer-loop feedback).
        self._window_steps: List[int] = [0] * n_cores
        self._window_active: List[int] = [0] * n_cores

    @property
    def trip_temperature_c(self) -> float:
        """Sensor level at which the thermal interrupt fires."""
        return self.threshold_c - self.trip_margin_c

    def scales(self, time_s: float, readings: SensorReadings) -> List[float]:
        """0.0 for frozen cores, 1.0 otherwise; freezes cores that trip."""
        self._check_readings(readings)
        return self.scales_from_hottest(
            time_s, [self.hottest(r) for r in readings]
        )

    def scales_from_hottest(
        self, time_s: float, hottest: Sequence[float]
    ) -> List[float]:
        """Validation-free :meth:`scales` on per-core hottest readings.

        The trip decision only ever consumes each core's hottest
        monitored temperature, so the engine's hot loop can hand that in
        directly (skipping per-step dict assembly); results are
        identical to :meth:`scales` on the readings the values came
        from.
        """
        tripped = [h >= self.trip_temperature_c for h in hottest]
        for core in range(self.n_cores):
            frozen = time_s < self._frozen_until[core]
            if not frozen and tripped[core]:
                if self.scope == "distributed":
                    self._frozen_until[core] = time_s + self.freeze_s
                    self.trip_count += 1
                else:
                    # Global: one trip freezes every core.
                    for c in range(self.n_cores):
                        self._frozen_until[c] = max(
                            self._frozen_until[c], time_s + self.freeze_s
                        )
                    self.trip_count += 1
        out = []
        for core in range(self.n_cores):
            active = time_s >= self._frozen_until[core]
            self._window_steps[core] += 1
            self._window_active[core] += int(active)
            out.append(1.0 if active else 0.0)
        return out

    def is_frozen(self, core: int, time_s: float) -> bool:
        """Whether ``core`` is inside a freeze interval at ``time_s``."""
        return time_s < self._frozen_until[core]

    def average_scale(self, core: int) -> float:
        """Duty fraction of ``core`` over the current averaging window.

        This is the stop-go analogue of a frequency scale, used to
        time-normalise thermal trends in the outer loop.
        """
        if self._window_steps[core] == 0:
            return 1.0
        return self._window_active[core] / self._window_steps[core]

    def reset_window(self, core: int) -> None:
        """Restart the duty-averaging window for ``core``."""
        self._window_steps[core] = 0
        self._window_active[core] = 0

    def on_migration(self, cores: Sequence[int], time_s: float) -> None:
        """Migration flushes duty windows and cancels pending freezes.

        A freeze exists to cool the core below its trip point; after the
        OS installs a different thread the core resumes and the hardware
        trip simply re-fires if the hotspot is still at the threshold.
        Keeping the freeze would pointlessly idle the incoming (usually
        complementary) thread — cancelling it is what makes migration able
        to rescue threads from long stall periods, the heat-and-run effect
        the paper's stop-go + migration numbers rely on.
        """
        for core in cores:
            self.reset_window(core)
            self._frozen_until[core] = time_s
