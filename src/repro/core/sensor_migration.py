"""Sensor-based migration (Section 6.3, Figure 6).

Rather than trusting performance-counter proxies, this policy estimates
thread heat intensity directly from thermal-sensor behaviour recorded by
the inner control loop. The OS maintains a thread-core thermal table
(:class:`repro.osmodel.thermal_table.ThreadCoreThermalTable`); each entry
is a frequency-normalised observation of how a thread drives a core's
hotspot. The Figure 6 flow:

* on each OS decision interrupt, fetch sensor-trend and scaling data from
  the cores and record it into the table (the engine performs the
  recording because it owns the window bookkeeping);
* if the table cannot yet estimate all thread-core combinations, choose
  migration targets that *profile* — fill the largest gap;
* otherwise estimate every thread's intensity per core and run the
  Figure 4 matching. Unlike the counter policy, intensity here is
  core-dependent: "a core next to the cache may have less thermal
  intensity due to the cache's relatively cool temperature".
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.migration import MigrationContext, MigrationPolicy
from repro.osmodel.timer import DEFAULT_MIGRATION_PERIOD_S


class SensorBasedMigration(MigrationPolicy):
    """Figure 4 matching with thermal-table intensities + profiling moves."""

    kind = "sensor"

    def __init__(self, min_interval_s: float = DEFAULT_MIGRATION_PERIOD_S):
        """Rate-limit migrations and start the profiling-move counter."""
        super().__init__(min_interval_s)
        self.profiling_moves = 0

    def propose(self, ctx: MigrationContext) -> Optional[List[int]]:
        """Either a profiling move or the Figure 4 matching."""
        table = ctx.thermal_table
        if table is None:
            raise ValueError(
                "sensor-based migration requires a thermal table in the context"
            )
        scheduler = ctx.scheduler
        pids = [p.pid for p in scheduler.processes]

        if not table.is_sufficient(pids):
            return self._profiling_assignment(ctx)

        def intensity(pid: int, core: int, unit: str) -> float:
            estimate = table.estimate(pid, core, unit)
            # A thread somehow never observed sorts last (never preferred
            # as "least intense") — conservative under missing data.
            return float("inf") if estimate is None else estimate

        return self.matched_assignment(ctx, intensity)

    def _profiling_assignment(self, ctx: MigrationContext) -> Optional[List[int]]:
        """Swap one unprofiled thread onto the core that most needs data.

        Candidates where the thread already sits on the target core are
        skipped — staying put produces the observation anyway.
        """
        table = ctx.thermal_table
        scheduler = ctx.scheduler
        pids = [p.pid for p in scheduler.processes]
        for pid, target_core in table.profiling_candidates(pids):
            source_core = scheduler.core_of(pid)
            if source_core == target_core:
                continue
            assignment = list(scheduler.assignment)
            assignment[source_core], assignment[target_core] = (
                assignment[target_core],
                assignment[source_core],
            )
            self.profiling_moves += 1
            return assignment
        return None
