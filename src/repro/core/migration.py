"""Migration-policy framework and the Figure 4 assignment algorithm.

Both of the paper's migration mechanisms share the same OS-level decision
algorithm (Figure 4); they differ only in how a thread's *intensity* on a
core's critical hotspot is estimated (performance counters vs. the
thread-core thermal table). The algorithm:

1. compute each core's *hotspot imbalance* — critical-hotspot temperature
   minus the core's second-hottest distinct hotspot;
2. visit cores in decreasing imbalance (most in need first);
3. greedily assign each core the remaining process least intense on that
   core's critical hotspot;
4. migrate only where the assignment differs (a core may be assigned its
   current process, in which case "a migration is not done"); the result
   can be "as simple as a single swap, or as complex as a four-way
   rotation".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.osmodel.scheduler import Scheduler
from repro.osmodel.thermal_table import ThreadCoreThermalTable
from repro.osmodel.timer import DEFAULT_MIGRATION_PERIOD_S, RateLimiter


@dataclass
class MigrationContext:
    """Everything the OS sees when making a migration decision.

    Attributes
    ----------
    time_s:
        Decision time.
    scheduler:
        Current process-to-core mapping (and the processes' counters).
    readings:
        Per-core dict of hotspot unit -> sensor temperature.
    avg_scales:
        Per-core average effective scale since the last decision window
        (PI feedback for DVFS, duty fraction for stop-go).
    thermal_table:
        The OS thread-core thermal table (sensor-based policies only).
    rebalance_urgent:
        True when the inner loop is in distress (a core is frozen by
        stop-go): the matcher then accepts rotations even without a
        predicted intensity improvement, because moving a stalled thread
        to any cooler core recovers throughput.
    """

    time_s: float
    scheduler: Scheduler
    readings: List[Dict[str, float]]
    avg_scales: List[float]
    thermal_table: Optional[ThreadCoreThermalTable] = None
    rebalance_urgent: bool = False


def hotspot_imbalance(reading: Dict[str, float]) -> float:
    """Critical-hotspot temperature minus the second-hottest hotspot.

    With a single monitored hotspot the imbalance is defined as 0.
    """
    if not reading:
        raise ValueError("empty sensor reading")
    temps = sorted(reading.values(), reverse=True)
    if len(temps) < 2:
        return 0.0
    return temps[0] - temps[1]


def critical_unit(reading: Dict[str, float]) -> str:
    """The unit of a core's hottest monitored sensor."""
    if not reading:
        raise ValueError("empty sensor reading")
    return max(reading.items(), key=lambda kv: kv[1])[0]


def figure4_assignment(
    current_assignment: Sequence[int],
    readings: Sequence[Dict[str, float]],
    intensity: Callable[[int, int, str], float],
) -> List[int]:
    """The paper's Figure 4 greedy matching.

    Parameters
    ----------
    current_assignment:
        ``core -> pid`` mapping before the decision.
    readings:
        Per-core hotspot temperatures (defines each core's critical
        hotspot and imbalance).
    intensity:
        ``intensity(pid, core, unit)`` — estimated heat intensity of a
        thread on a core's hotspot unit. Lower is better for a hot core.

    Returns the proposed ``core -> pid`` assignment (a permutation of the
    input).
    """
    n_cores = len(current_assignment)
    if len(readings) != n_cores:
        raise ValueError("one reading per core is required")
    remaining = list(current_assignment)
    order = sorted(
        range(n_cores),
        key=lambda core: hotspot_imbalance(readings[core]),
        reverse=True,
    )
    assignment: List[Optional[int]] = [None] * n_cores
    for core in order:
        unit = critical_unit(readings[core])
        best = min(remaining, key=lambda pid: (intensity(pid, core, unit), pid))
        assignment[core] = best
        remaining.remove(best)
    assert not remaining
    return [pid for pid in assignment if pid is not None]


class MigrationPolicy(abc.ABC):
    """Base class for the outer (OS) control loop.

    Concrete policies implement :meth:`propose` — producing a new
    assignment from a context — while this base class owns the shared
    mechanics: the 10 ms eligibility rule and the bookkeeping of decision
    epochs.
    """

    #: Short tag ("counter" / "sensor"), set by subclasses.
    kind: str = ""

    #: Minimum fractional reduction of summed critical-hotspot intensity a
    #: non-urgent proposal must promise before threads are actually moved
    #: (suppresses cost-only lateral shuffles; urgent rounds bypass it).
    improvement_margin: float = 0.02

    def __init__(self, min_interval_s: float = DEFAULT_MIGRATION_PERIOD_S):
        """Set up the rate limiter and decision/fault bookkeeping."""
        self._limiter = RateLimiter(min_interval_s)
        self.decisions = 0
        self.proposals_with_moves = 0
        #: Fault hook (see :mod:`repro.faults`): when set, a callable
        #: ``(time_s, proposal) -> bool`` deciding whether an accepted
        #: proposal is actually delivered to the scheduler. A dropped
        #: request still counts as a proposal and still consumes the
        #: rate-limit slot — the OS believes it migrated.
        self.request_filter = None
        #: Accepted proposals lost to an injected fault.
        self.dropped_requests = 0

    def matched_assignment(
        self,
        ctx: MigrationContext,
        intensity: Callable[[int, int, str], float],
    ) -> Optional[List[int]]:
        """Run the Figure 4 matching and gate non-urgent neutral moves.

        Returns ``None`` when the matching reproduces the current
        assignment, or when the round is not urgent and the proposal does
        not reduce the summed intensity on each core's critical hotspot by
        at least :attr:`improvement_margin`.
        """
        current = list(ctx.scheduler.assignment)
        proposal = figure4_assignment(current, ctx.readings, intensity)
        if proposal == current:
            return None
        if not ctx.rebalance_urgent:
            units = [critical_unit(r) for r in ctx.readings]
            cur_cost = sum(
                intensity(current[c], c, units[c]) for c in range(len(current))
            )
            new_cost = sum(
                intensity(proposal[c], c, units[c]) for c in range(len(proposal))
            )
            costs_known = all(
                map(lambda v: v == v and v != float("inf"), (cur_cost, new_cost))
            )
            if costs_known and not new_cost < cur_cost * (1.0 - self.improvement_margin):
                return None
        return proposal

    @property
    def min_interval_s(self) -> float:
        """Minimum separation between migration rounds."""
        return self._limiter.min_separation_s

    @abc.abstractmethod
    def propose(self, ctx: MigrationContext) -> Optional[List[int]]:
        """Return a proposed ``core -> pid`` assignment, or ``None``."""

    def decide(self, ctx: MigrationContext) -> Optional[List[int]]:
        """Rate-limited decision entry point called by the engine.

        Returns an assignment that differs from the current one, or
        ``None`` when ineligible or no improvement is proposed.
        """
        if not self._limiter.allow(ctx.time_s):
            return None
        proposal = self.propose(ctx)
        self.decisions += 1
        if proposal is None or list(proposal) == list(ctx.scheduler.assignment):
            return None
        self._limiter.record(ctx.time_s)
        self.proposals_with_moves += 1
        if self.request_filter is not None and not self.request_filter(
            ctx.time_s, list(proposal)
        ):
            self.dropped_requests += 1
            return None
        return list(proposal)
