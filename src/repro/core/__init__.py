"""The paper's primary contribution: the DTM policy space.

Three orthogonal axes (Table 2 of the paper):

1. **Throttling mechanism** — :class:`repro.core.stopgo.StopGoPolicy`
   (freeze on trip) vs. :class:`repro.core.dvfs.DVFSPolicy` (PI-controlled
   frequency/voltage scaling);
2. **Scope** — each policy runs either globally (one decision from the
   hottest sensor anywhere) or distributed (per-core decisions);
3. **Migration** — none, :class:`repro.core.counter_migration.
   CounterBasedMigration`, or :class:`repro.core.sensor_migration.
   SensorBasedMigration`, both executing the Figure 4 assignment
   algorithm on top of the inner throttling loop (the paper's two-loop
   structure, Figure 1).

:mod:`repro.core.taxonomy` enumerates and constructs all 12 combinations.
"""

from repro.core.counter_migration import CounterBasedMigration
from repro.core.dvfs import DVFSPolicy
from repro.core.migration import MigrationContext, MigrationPolicy, figure4_assignment
from repro.core.policy import ThrottlePolicy
from repro.core.sensor_migration import SensorBasedMigration
from repro.core.stopgo import StopGoPolicy
from repro.core.taxonomy import (
    ALL_POLICY_SPECS,
    MigrationKind,
    PolicySpec,
    Scope,
    ThrottleKind,
    build_policy,
)

__all__ = [
    "ALL_POLICY_SPECS",
    "CounterBasedMigration",
    "DVFSPolicy",
    "MigrationContext",
    "MigrationKind",
    "MigrationPolicy",
    "PolicySpec",
    "Scope",
    "SensorBasedMigration",
    "StopGoPolicy",
    "ThrottleKind",
    "ThrottlePolicy",
    "build_policy",
    "figure4_assignment",
]
