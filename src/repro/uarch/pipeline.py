"""Cycle-level out-of-order core model (the Turandot stand-in).

This model exists for two reasons. First, the substitution rule: the
paper's toolflow starts from a cycle-accurate simulator, so the repository
contains one — a 4-wide fetch/dispatch, reservation-station machine with
the Table 3 resources (2 FXU, 2 FPU, 2 LSU, 1 BXU; split mem/int and FP
issue queues; hybrid branch predictor; functional L1/L2). Second,
validation: the fast interval engine that produces production traces is
cross-checked against this model (tests assert the two agree on IPC trends
and unit-utilisation ratios across benchmark profiles).

Programs are synthetic: instruction classes are drawn from the profile's
mix, register dependencies from a geometric dependence-distance process
whose mean tracks the profile's ILP, data addresses from a working-set
generator tuned to the profile's miss rates, and branch outcomes from a
biased static-branch population matched to the profile's misprediction
rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.uarch.benchmarks import BenchmarkProfile
from repro.uarch.branch import (
    MISPREDICT_PENALTY_CYCLES,
    HybridPredictor,
    SyntheticBranchStream,
)
from repro.uarch.caches import CacheHierarchy, WorkingSetAddressGenerator
from repro.uarch.config import MachineConfig
from repro.uarch.isa import (
    EXECUTION_LATENCY,
    FP_RF_ACCESSES,
    INT_RF_ACCESSES,
    InstructionClass,
)
from repro.util.rng import RngStream

#: Units whose access counts the pipeline reports (floorplan unit names).
COUNTED_UNITS = (
    "icache",
    "dcache",
    "bpred",
    "decode",
    "iq",
    "lsu",
    "fxu",
    "intreg",
    "bxu",
    "fpreg",
    "fpu",
)

_FXU_CLASSES = (InstructionClass.INT_ALU, InstructionClass.INT_MUL)
_FPU_CLASSES = (InstructionClass.FP_ALU, InstructionClass.FP_MUL)
_MEM_CLASSES = (InstructionClass.LOAD, InstructionClass.STORE)


@dataclass
class _InFlight:
    """One instruction in the window."""

    icls: InstructionClass
    seq: int
    dep_seq: int  # sequence number of the producing instruction (-1: none)
    ready_cycle: int = 0
    complete_cycle: int = -1  # -1 while not issued
    issued: bool = False


@dataclass
class PipelineStats:
    """Counters accumulated by :meth:`OutOfOrderCore.run`."""

    cycles: int = 0
    instructions: int = 0
    unit_accesses: Dict[str, float] = field(
        default_factory=lambda: {u: 0.0 for u in COUNTED_UNITS}
    )
    l1d_misses: int = 0
    l2_misses: int = 0
    branch_mispredicts: int = 0

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l1d_mpki(self) -> float:
        """Observed L1D misses per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l1d_misses / self.instructions

    def accesses_per_kinst(self, unit: str) -> float:
        """Unit accesses per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.unit_accesses[unit] / self.instructions


class SyntheticProgram:
    """Generates the instruction stream described by a benchmark profile."""

    def __init__(self, profile: BenchmarkProfile, rng: RngStream):
        self.profile = profile
        self._rng = rng
        classes, fractions = zip(*profile.mix)
        self._classes = list(classes)
        self._cdf = np.cumsum(fractions)
        # Dependence distance grows with achievable ILP.
        self._mean_dep_distance = max(1.5, profile.base_ipc * 4.0)
        # Address stream roughness tracks the profile's L1 miss rate.
        working_set = int(16 * 1024 + profile.l1d_mpki * 24 * 1024)
        random_fraction = min(0.9, 0.05 + profile.l1d_mpki / 50.0)
        self.addresses = WorkingSetAddressGenerator(
            working_set, random_fraction, rng=rng.child("addr")
        )
        predictability = max(
            0.0, 1.0 - profile.mispredicts_per_kinst / 60.0
        )
        self.branches = SyntheticBranchStream(
            predictability, rng=rng.child("branch")
        )

    def next_class(self) -> InstructionClass:
        """Sample the next instruction's class from the mix."""
        u = float(self._rng.uniform())
        idx = int(np.searchsorted(self._cdf, u))
        return self._classes[min(idx, len(self._classes) - 1)]

    def dependence_distance(self) -> int:
        """Distance (in instructions) to the producer of this instruction."""
        # Geometric with the configured mean; distance >= 1.
        p = 1.0 / self._mean_dep_distance
        return 1 + int(np.log(max(1e-12, float(self._rng.uniform()))) / np.log(1 - p))


class OutOfOrderCore:
    """The cycle-level machine: fetch -> dispatch -> issue -> retire."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        config: Optional[MachineConfig] = None,
        seed: int = 0,
        l2_share: float = 0.25,
    ):
        self.config = config or MachineConfig()
        self.profile = profile
        rng = RngStream(seed, "pipeline", profile.name)
        self.program = SyntheticProgram(profile, rng)
        self.caches = CacheHierarchy(self.config, l2_share=l2_share)
        self.predictor = HybridPredictor(self.config.core.branch_predictor)
        self.stats = PipelineStats()
        self._rob: List[_InFlight] = []
        self._complete_by_seq: Dict[int, int] = {}
        self._next_seq = 0
        self._fetch_stalled_until = 0
        core = self.config.core
        self._rob_capacity = core.reorder_buffer
        self._mem_int_queue_capacity = core.mem_int_queue[0] * core.mem_int_queue[1]
        self._fp_queue_capacity = core.fp_queue[0] * core.fp_queue[1]

    # -- per-cycle stages --------------------------------------------------

    def _retire(self, cycle: int) -> None:
        retired = 0
        while (
            self._rob
            and retired < self.config.core.retire_width
            and self._rob[0].complete_cycle not in (-1,)
            and self._rob[0].complete_cycle <= cycle
        ):
            entry = self._rob.pop(0)
            self._complete_by_seq[entry.seq] = entry.complete_cycle
            retired += 1
            self.stats.instructions += 1
        # Garbage-collect old completion records outside the window.
        if len(self._complete_by_seq) > 4 * self._rob_capacity:
            horizon = self._next_seq - 2 * self._rob_capacity
            self._complete_by_seq = {
                s: c for s, c in self._complete_by_seq.items() if s >= horizon
            }

    def _issue(self, cycle: int) -> None:
        core = self.config.core
        free_units = {
            "fxu": core.n_fxu,
            "fpu": core.n_fpu,
            "lsu": core.n_lsu,
            "bxu": core.n_bxu,
        }
        for entry in self._rob:
            if entry.issued or entry.ready_cycle > cycle:
                continue
            if entry.icls in _FXU_CLASSES:
                unit = "fxu"
            elif entry.icls in _FPU_CLASSES:
                unit = "fpu"
            elif entry.icls in _MEM_CLASSES:
                unit = "lsu"
            else:
                unit = "bxu"
            if free_units[unit] == 0:
                continue
            free_units[unit] -= 1
            latency = EXECUTION_LATENCY[entry.icls]
            if entry.icls in _MEM_CLASSES:
                result = self.caches.access(self.program.addresses.next_address())
                latency += result.latency_cycles
                if result.level != "l1":
                    self.stats.l1d_misses += 1
                if result.level == "memory":
                    self.stats.l2_misses += 1
                self.stats.unit_accesses["dcache"] += 1
            entry.issued = True
            entry.complete_cycle = cycle + latency
            self.stats.unit_accesses[unit] += 1
            self.stats.unit_accesses["iq"] += 1
            # RF intensity multipliers model per-access port utilisation
            # (the same scaling the interval engine applies), so the two
            # models agree on which register file a benchmark stresses.
            self.stats.unit_accesses["intreg"] += (
                INT_RF_ACCESSES[entry.icls] * self.profile.int_rf_intensity
            )
            self.stats.unit_accesses["fpreg"] += (
                FP_RF_ACCESSES[entry.icls] * self.profile.fp_rf_intensity
            )

    def _queue_occupancy(self) -> Dict[str, int]:
        mem_int = sum(
            1
            for e in self._rob
            if not e.issued and e.icls not in _FPU_CLASSES
        )
        fp = sum(1 for e in self._rob if not e.issued and e.icls in _FPU_CLASSES)
        return {"mem_int": mem_int, "fp": fp}

    def _dispatch(self, cycle: int) -> None:
        if cycle < self._fetch_stalled_until:
            return
        occupancy = self._queue_occupancy()
        for _ in range(self.config.core.fetch_width):
            if len(self._rob) >= self._rob_capacity:
                break
            icls = self.program.next_class()
            if icls in _FPU_CLASSES:
                if occupancy["fp"] >= self._fp_queue_capacity:
                    break
                occupancy["fp"] += 1
            else:
                if occupancy["mem_int"] >= self._mem_int_queue_capacity:
                    break
                occupancy["mem_int"] += 1
            seq = self._next_seq
            self._next_seq += 1
            dep_seq = seq - self.program.dependence_distance()
            entry = _InFlight(icls=icls, seq=seq, dep_seq=dep_seq)
            entry.ready_cycle = cycle + 1
            producer = self._find_producer(dep_seq)
            if producer is not None:
                if producer.complete_cycle == -1:
                    # Producer not yet issued: conservatively wait for it.
                    entry.ready_cycle = cycle + 2
                    entry.dep_seq = dep_seq
                else:
                    entry.ready_cycle = max(entry.ready_cycle, producer.complete_cycle)
            elif dep_seq in self._complete_by_seq:
                entry.ready_cycle = max(
                    entry.ready_cycle, self._complete_by_seq[dep_seq]
                )
            self._rob.append(entry)
            self.stats.unit_accesses["decode"] += 1
            self.stats.unit_accesses["icache"] += 0.25  # one line feeds ~4 insts
            if icls is InstructionClass.BRANCH:
                self.stats.unit_accesses["bpred"] += 1
                pc, taken = self.program.branches.next_branch()
                predicted = self.predictor.predict(pc)
                self.predictor.update(pc, taken)
                if predicted != taken:
                    self.stats.branch_mispredicts += 1
                    self._fetch_stalled_until = cycle + MISPREDICT_PENALTY_CYCLES
                    break  # wrong-path fetch ends the cycle

    def _find_producer(self, dep_seq: int) -> Optional[_InFlight]:
        if dep_seq < 0:
            return None
        for entry in self._rob:
            if entry.seq == dep_seq:
                return entry
        return None

    def _refresh_ready(self, cycle: int) -> None:
        # Wake consumers whose producers completed this cycle.
        for entry in self._rob:
            if entry.issued:
                continue
            producer = self._find_producer(entry.dep_seq)
            if producer is not None and producer.complete_cycle not in (-1,):
                entry.ready_cycle = max(entry.ready_cycle, producer.complete_cycle)

    # -- driver --------------------------------------------------------------

    def run(self, n_cycles: int) -> PipelineStats:
        """Simulate ``n_cycles`` cycles; returns the accumulated stats."""
        if n_cycles <= 0:
            raise ValueError(f"n_cycles must be positive: {n_cycles}")
        start = self.stats.cycles
        for cycle in range(start, start + n_cycles):
            self._retire(cycle)
            self._refresh_ready(cycle)
            self._issue(cycle)
            self._dispatch(cycle)
            self.stats.cycles += 1
        return self.stats

    def run_instructions(self, n_instructions: int, max_cycles: int = None) -> PipelineStats:
        """Simulate until ``n_instructions`` retire (or ``max_cycles`` hit)."""
        if n_instructions <= 0:
            raise ValueError(f"n_instructions must be positive: {n_instructions}")
        max_cycles = max_cycles or n_instructions * 50
        while (
            self.stats.instructions < n_instructions
            and self.stats.cycles < max_cycles
        ):
            self.run(min(1000, max_cycles - self.stats.cycles))
        return self.stats
