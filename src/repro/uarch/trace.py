"""Power-trace container.

A :class:`PowerTrace` is the interface between the offline performance/
power simulation and the online thermal/timing simulation — exactly the
role of the paper's Turandot+PowerTimer output files. Each trace holds,
per 100,000-cycle sample: dynamic power per core unit (at nominal V/f),
shared-L2 activity, retired instructions, and the register-file access
counters consumed by counter-based migration.

Traces are finite (0.25 s by default) and replayed circularly: "when a
power trace ... is completed before the end of the simulation, that trace
is restarted at the beginning" (Section 3.3). The engine tracks a
fractional *position* in full-speed sample units; under DVFS the position
advances at the frequency-scale rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.uarch.interval_model import UNIT_ORDER


@dataclass(frozen=True)
class PowerTrace:
    """Recorded behaviour of one benchmark at nominal voltage/frequency."""

    benchmark: str
    sample_period_s: float
    sample_cycles: int
    unit_power: np.ndarray       # (n, n_units) dynamic W, UNIT_ORDER columns
    l2_activity: np.ndarray      # (n,)
    instructions: np.ndarray     # (n,)
    int_rf_accesses: np.ndarray  # (n,)
    fp_rf_accesses: np.ndarray   # (n,)

    def __post_init__(self):
        n = self.unit_power.shape[0]
        if self.unit_power.ndim != 2 or self.unit_power.shape[1] != len(UNIT_ORDER):
            raise ValueError(
                f"unit_power must be (n, {len(UNIT_ORDER)}), got "
                f"{self.unit_power.shape}"
            )
        for name in ("l2_activity", "instructions", "int_rf_accesses",
                     "fp_rf_accesses"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {arr.shape}")
        if n < 1:
            raise ValueError("trace must contain at least one sample")
        if not self.sample_period_s > 0:
            raise ValueError("sample_period_s must be positive")

    @property
    def n_samples(self) -> int:
        """Number of samples in the trace."""
        return self.unit_power.shape[0]

    @property
    def duration_s(self) -> float:
        """Full-speed duration of one pass through the trace."""
        return self.n_samples * self.sample_period_s

    def sample_index(self, position: float) -> int:
        """Circular sample index for a fractional position."""
        return int(position) % self.n_samples

    def unit_power_at(self, position: float) -> np.ndarray:
        """Per-unit dynamic power at a trace position (nominal V/f)."""
        return self.unit_power[self.sample_index(position)]

    def l2_activity_at(self, position: float) -> float:
        """Shared-L2 activity factor at a trace position."""
        return float(self.l2_activity[self.sample_index(position)])

    def counters_at(self, position: float) -> Dict[str, float]:
        """Counter values of the sample at a trace position.

        These are *per full sample* values; the engine pro-rates them by
        the fraction of a sample actually executed in a wall-clock step.
        """
        i = self.sample_index(position)
        return {
            "instructions": float(self.instructions[i]),
            "int_rf_accesses": float(self.int_rf_accesses[i]),
            "fp_rf_accesses": float(self.fp_rf_accesses[i]),
        }

    @property
    def mean_core_power_w(self) -> float:
        """Average core dynamic power over the trace (nominal V/f)."""
        return float(self.unit_power.sum(axis=1).mean())

    @property
    def nominal_bips(self) -> float:
        """Unthrottled throughput in billions of instructions per second."""
        total_instructions = float(self.instructions.sum())
        return total_instructions / self.duration_s / 1e9

    def mean_unit_power(self, unit: str) -> float:
        """Average dynamic power of one unit over the trace."""
        return float(self.unit_power[:, UNIT_ORDER.index(unit)].mean())
