"""Trace generation and caching.

``generate_trace`` runs the interval engine for a benchmark profile and
converts the resulting activity into a :class:`PowerTrace` via the power
model. Traces are deterministic in ``(benchmark, config, duration, seed)``
and cached at module level, since the same 22 traces back every policy and
workload combination (the paper likewise generates each SimPoint trace
once and reuses it across all experiments).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.uarch.benchmarks import BenchmarkProfile, get_benchmark
from repro.uarch.config import MachineConfig
from repro.uarch.interval_model import simulate_intervals
from repro.uarch.power import PowerModel
from repro.uarch.trace import PowerTrace
from repro.util.rng import DEFAULT_ROOT_SEED, RngStream

#: Default full-speed trace length (seconds). The paper's traces are
#: "hundreds of milliseconds" and loop to fill the 0.5 s experiment.
DEFAULT_TRACE_DURATION_S = 0.25

_CacheKey = Tuple[str, int, float, float, int, float]
_TRACE_CACHE: Dict[_CacheKey, PowerTrace] = {}


def _cache_key(
    profile: BenchmarkProfile,
    config: MachineConfig,
    duration_s: float,
    seed: int,
    power_scale: float,
) -> _CacheKey:
    return (
        profile.name,
        config.trace_sample_cycles,
        config.clock_hz,
        duration_s,
        seed,
        power_scale,
    )


def generate_trace(
    benchmark,
    config: Optional[MachineConfig] = None,
    duration_s: float = DEFAULT_TRACE_DURATION_S,
    seed: int = DEFAULT_ROOT_SEED,
    power_scale: float = 1.0,
    use_cache: bool = True,
) -> PowerTrace:
    """Generate (or fetch from cache) the power trace of one benchmark.

    Parameters
    ----------
    benchmark:
        A :class:`BenchmarkProfile` or a benchmark name.
    config:
        Machine configuration; defaults to the paper's Table 3 machine.
    duration_s:
        Full-speed length of the trace.
    seed:
        Root seed for the benchmark's phase/jitter streams.
    power_scale:
        Uniform power-budget scale (see :class:`PowerModel`).
    use_cache:
        Reuse a previously generated identical trace if available.
    """
    profile = (
        benchmark if isinstance(benchmark, BenchmarkProfile) else get_benchmark(benchmark)
    )
    config = config or MachineConfig()
    if not duration_s > 0:
        raise ValueError(f"duration_s must be positive: {duration_s}")

    key = _cache_key(profile, config, duration_s, seed, power_scale)
    if use_cache and key in _TRACE_CACHE:
        return _TRACE_CACHE[key]

    n_intervals = max(1, int(round(duration_s / config.sample_period_s)))
    rng = RngStream(seed, "trace", profile.name)
    stats = simulate_intervals(profile, config, n_intervals, rng)
    model = PowerModel(config, scale=power_scale)

    trace = PowerTrace(
        benchmark=profile.name,
        sample_period_s=config.sample_period_s,
        sample_cycles=config.trace_sample_cycles,
        unit_power=model.core_unit_power(stats),
        l2_activity=stats.l2_activity.copy(),
        instructions=stats.instructions.copy(),
        int_rf_accesses=stats.int_rf_accesses.copy(),
        fp_rf_accesses=stats.fp_rf_accesses.copy(),
    )
    if use_cache:
        _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> int:
    """Drop all cached traces; returns how many were discarded."""
    n = len(_TRACE_CACHE)
    _TRACE_CACHE.clear()
    return n
