"""Program phase behaviour.

Table 1 of the paper splits benchmarks into those that settle at a steady
temperature and those whose temperature "continually rises and falls
throughout execution" (bzip2, ammp, facerec, fma3d). The phase generator
reproduces that distinction: every benchmark's per-interval activity is
modulated by a deterministic waveform — near-constant (small random walk)
for stable programs, and a large-amplitude periodic wave for oscillators.

A :class:`PhaseSpec` is evaluated lazily over interval indices so the
interval engine can vectorise trace generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RngStream

#: Waveform shapes supported by :meth:`PhaseSpec.modulation`.
SHAPES = ("constant", "sine", "square", "sawtooth", "random_walk")


@dataclass(frozen=True)
class PhaseSpec:
    """Activity-modulation waveform for one benchmark.

    Attributes
    ----------
    shape:
        One of :data:`SHAPES`.
    period_s:
        Waveform period (ignored for ``constant`` and ``random_walk``).
    amplitude:
        Peak deviation from 1.0; the modulation stays within
        ``[1 - amplitude, 1 + amplitude]``.
    jitter:
        Standard deviation of per-interval multiplicative noise added on
        top of the waveform (models short-term program variability).
    """

    shape: str = "constant"
    period_s: float = 0.05
    amplitude: float = 0.0
    jitter: float = 0.02

    def __post_init__(self):
        if self.shape not in SHAPES:
            raise ValueError(f"unknown phase shape {self.shape!r}; use one of {SHAPES}")
        if self.shape not in ("constant", "random_walk") and not self.period_s > 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1): {self.amplitude}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0: {self.jitter}")

    @property
    def is_oscillating(self) -> bool:
        """Whether this spec produces Table 1(b)-style temperature swings."""
        return self.shape in ("sine", "square", "sawtooth") and self.amplitude > 0.05

    def modulation(
        self, n_intervals: int, interval_s: float, rng: RngStream
    ) -> np.ndarray:
        """Per-interval modulation factors, shape ``(n_intervals,)``.

        Values are clipped to a minimum of 0.05 so activity never reaches
        exactly zero (even stalled programs keep clocks and caches busy).
        """
        if n_intervals < 1:
            raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")
        if not interval_s > 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        t = np.arange(n_intervals) * interval_s
        if self.shape == "constant":
            wave = np.zeros(n_intervals)
        elif self.shape == "sine":
            wave = np.sin(2.0 * np.pi * t / self.period_s)
        elif self.shape == "square":
            wave = np.sign(np.sin(2.0 * np.pi * t / self.period_s))
            wave[wave == 0] = 1.0
        elif self.shape == "sawtooth":
            frac = np.mod(t / self.period_s, 1.0)
            wave = 2.0 * frac - 1.0
        elif self.shape == "random_walk":
            steps = rng.normal(0.0, 1.0, n_intervals)
            walk = np.cumsum(steps)
            # Mean-revert so the walk stays bounded over long traces.
            walk -= np.linspace(0.0, walk[-1], n_intervals)
            peak = np.abs(walk).max()
            wave = walk / peak if peak > 0 else walk
        else:  # pragma: no cover - guarded by __post_init__
            raise AssertionError(self.shape)
        values = 1.0 + self.amplitude * wave
        if self.jitter > 0:
            values = values * (1.0 + rng.normal(0.0, self.jitter, n_intervals))
        return np.clip(values, 0.05, None)


def stable_phase(jitter: float = 0.02) -> PhaseSpec:
    """A Table 1(a)-style stable program (small random variation only)."""
    return PhaseSpec(shape="random_walk", amplitude=0.04, jitter=jitter)


def oscillating_phase(
    shape: str, period_s: float, amplitude: float
) -> PhaseSpec:
    """A Table 1(b)-style oscillator."""
    return PhaseSpec(shape=shape, period_s=period_s, amplitude=amplitude)
