"""PowerTimer-style power model: activity factors to per-unit watts.

Each unit has an unconstrained (peak) dynamic power at nominal voltage and
frequency; effective power scales with the unit's activity factor on top
of a conditional-clock-gating floor (an idle unit still burns clock-grid
and latch power). The same approach PowerTimer takes — "component power
across simulation intervals is calculated by scaling according to the
counts of various architectural events".

The budget is calibrated so a hot benchmark (gzip, sixtrack) draws
~27-30 W of core dynamic power at 3.6 GHz / 1.0 V / 90 nm, with the
register files as the dominant power *densities* — the paper's hotspots.

Voltage/frequency scaling: dynamic power follows the cubic relation the
paper uses (``P ~ f V^2`` with ``V`` tracking ``f``); leakage follows
``V^2``. Those scalings are applied by the thermal/timing engine, not
here — traces store nominal-condition power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.uarch.config import MachineConfig
from repro.uarch.interval_model import UNIT_ORDER, IntervalStats

#: Peak (activity = 1) dynamic power per core unit, watts.
UNIT_PEAK_DYNAMIC_W: Dict[str, float] = {
    "icache": 5.5,
    "dcache": 6.4,
    "bpred": 3.2,
    "decode": 6.9,
    "iq": 6.4,
    "lsu": 6.4,
    "fxu": 6.4,
    "intreg": 9.9,
    "bxu": 2.3,
    "fpreg": 9.9,
    "fpu": 9.2,
}

#: Fraction of peak burned by an active core's idle unit (clock grid,
#: latches) under conditional clock gating.
IDLE_POWER_FRACTION = 0.15

#: Per-unit overrides of the gating floor. Register files gate their
#: ports aggressively (a port not being read clocks nothing), so an RF
#: that a thread barely touches cools well below the core average — the
#: unit-level asymmetry the migration policies exploit.
UNIT_IDLE_FRACTION: Dict[str, float] = {
    "intreg": 0.05,
    "fpreg": 0.05,
    "fpu": 0.08,
    "fxu": 0.10,
}

#: Peak dynamic power of one L2 bank (of four) and its gating floor.
L2_BANK_PEAK_W = 3.7
L2_IDLE_FRACTION = 0.25

#: Crossbar/interconnect strip power: floor plus traffic-dependent part.
XBAR_PEAK_W = 2.75
XBAR_IDLE_FRACTION = 0.3

#: Chip-wide leakage at the 85 C reference temperature (W). Roughly 20%
#: of realistic maximum chip power, the commonly-cited 90 nm share.
CHIP_REFERENCE_LEAKAGE_W = 32.0


@dataclass(frozen=True)
class PowerModel:
    """Converts interval activity into per-unit dynamic power.

    ``scale`` uniformly scales every peak value — used by sensitivity
    ablations and by the mobile (Table 1) configuration, where the lower
    clock and supply shrink the budget.
    """

    config: MachineConfig
    scale: float = 1.0

    def __post_init__(self):
        if not self.scale > 0:
            raise ValueError(f"scale must be positive: {self.scale}")

    @property
    def unit_peaks(self) -> np.ndarray:
        """Peak watts per unit in :data:`UNIT_ORDER` order."""
        return self.scale * np.array([UNIT_PEAK_DYNAMIC_W[u] for u in UNIT_ORDER])

    def core_unit_power(self, stats: IntervalStats) -> np.ndarray:
        """Per-interval, per-unit dynamic power, shape ``(n, n_units)``.

        ``P_unit = peak * (idle_fraction + (1 - idle_fraction) * activity)``
        with per-unit gating floors from :data:`UNIT_IDLE_FRACTION`.
        """
        peaks = self.unit_peaks
        floors = np.array(
            [UNIT_IDLE_FRACTION.get(u, IDLE_POWER_FRACTION) for u in UNIT_ORDER]
        )
        return peaks[None, :] * (
            floors[None, :] + (1.0 - floors[None, :]) * stats.unit_activity
        )

    def l2_bank_power(self, stats: IntervalStats) -> np.ndarray:
        """Per-interval dynamic power of the L2 bank this thread exercises."""
        return (
            self.scale
            * L2_BANK_PEAK_W
            * (L2_IDLE_FRACTION + (1.0 - L2_IDLE_FRACTION) * stats.l2_activity)
        )

    def xbar_power(self, total_l2_activity: np.ndarray) -> np.ndarray:
        """Crossbar power from summed L2 traffic (chip-level, engine-side)."""
        activity = np.clip(np.asarray(total_l2_activity, dtype=float), 0.0, 1.0)
        return (
            self.scale
            * XBAR_PEAK_W
            * (XBAR_IDLE_FRACTION + (1.0 - XBAR_IDLE_FRACTION) * activity)
        )

    @property
    def core_peak_power_w(self) -> float:
        """Sum of unit peaks — the core's unconstrained dynamic power."""
        return float(self.unit_peaks.sum())

    @property
    def reference_leakage_w(self) -> float:
        """Chip leakage at the reference temperature, for the leakage model."""
        return self.scale * CHIP_REFERENCE_LEAKAGE_W


def dynamic_power_scale(frequency_scale: float) -> float:
    """Cubic DVFS power scaling (``P ~ f V^2``, ``V`` tracking ``f``)."""
    if not 0.0 <= frequency_scale <= 1.0:
        raise ValueError(f"frequency_scale must be in [0,1]: {frequency_scale}")
    return frequency_scale ** 3


def leakage_voltage_scale(frequency_scale: float) -> float:
    """Quadratic supply-voltage dependence of leakage under DVFS."""
    if not 0.0 <= frequency_scale <= 1.0:
        raise ValueError(f"frequency_scale must be in [0,1]: {frequency_scale}")
    return frequency_scale ** 2
