"""Cache models.

Two levels of fidelity, mirroring the two-level structure of the whole
``uarch`` package:

* :class:`SetAssociativeCache` / :class:`CacheHierarchy` — functional
  set-associative LRU caches used by the cycle-level pipeline model, fed
  with synthetic address streams;
* :func:`memory_stall_cpi` — the analytic memory-stall component used by
  the fast interval engine, computed from a profile's miss rates with
  out-of-order overlap factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.uarch.config import CacheConfig, MachineConfig


class SetAssociativeCache:
    """A functional set-associative cache with true-LRU replacement.

    Tracks hit/miss/access counters; :meth:`access` returns whether the
    reference hit. Writes are treated as write-allocate (the paper's
    machine uses writeback caches; allocation policy is what matters for
    occupancy).
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self._sets: List[List[int]] = [[] for _ in range(config.n_sets)]
        self.accesses = 0
        self.hits = 0

    @property
    def misses(self) -> int:
        """Total misses so far."""
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Miss ratio over all accesses (0 before any access)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def access(self, address: int) -> bool:
        """Reference ``address``; returns True on hit. Updates LRU state."""
        block = address // self.config.block_bytes
        set_index = block % self.config.n_sets
        tag = block // self.config.n_sets
        ways = self._sets[set_index]
        self.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)  # most-recently-used at the back
            self.hits += 1
            return True
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)  # evict LRU
        return False

    def reset_counters(self) -> None:
        """Zero the hit/access counters without flushing contents."""
        self.accesses = 0
        self.hits = 0

    def flush(self) -> None:
        """Invalidate all contents (used on thread migration)."""
        self._sets = [[] for _ in range(self.config.n_sets)]


@dataclass
class MemoryAccessResult:
    """Outcome of one hierarchy access: latency and the level that hit."""

    latency_cycles: int
    level: str  # "l1", "l2", or "memory"


class CacheHierarchy:
    """L1 data cache backed by a (possibly capacity-limited) L2.

    The paper's trace methodology capacity-limits each single-threaded run
    to one quarter of the shared L2 (Section 3.3); ``l2_share`` implements
    the same restriction by shrinking the modeled L2 size.
    """

    def __init__(self, config: MachineConfig, l2_share: float = 0.25):
        if not 0 < l2_share <= 1.0:
            raise ValueError(f"l2_share must be in (0, 1]: {l2_share}")
        self.config = config
        self.l1d = SetAssociativeCache(config.l1d, "l1d")
        shared_size = int(config.l2.size_bytes * l2_share)
        # Keep geometry valid: round down to a multiple of way*block.
        granule = config.l2.associativity * config.l2.block_bytes
        shared_size = max(granule, (shared_size // granule) * granule)
        self.l2 = SetAssociativeCache(
            CacheConfig(
                shared_size,
                config.l2.associativity,
                config.l2.block_bytes,
                config.l2.latency_cycles,
            ),
            "l2",
        )

    def access(self, address: int) -> MemoryAccessResult:
        """Data access walking L1 -> L2 -> memory."""
        if self.l1d.access(address):
            return MemoryAccessResult(self.config.l1d.latency_cycles, "l1")
        if self.l2.access(address):
            return MemoryAccessResult(self.config.l2.latency_cycles, "l2")
        return MemoryAccessResult(self.config.memory_latency_cycles, "memory")

    def flush(self) -> None:
        """Invalidate both levels (thread migration cost model)."""
        self.l1d.flush()
        self.l2.flush()


#: Fraction of L2-hit latency an out-of-order core fails to hide.
L2_EXPOSURE = 0.6

#: Fraction of main-memory latency an out-of-order core fails to hide
#: (limited MLP on SPEC-like pointer/stream codes).
MEMORY_EXPOSURE = 0.8


def memory_stall_cpi(
    l1d_mpki: float,
    l2_mpki: float,
    config: MachineConfig,
) -> float:
    """Analytic memory-stall CPI component from miss rates.

    Misses per kilo-instruction are converted to exposed stall cycles per
    instruction, with overlap factors reflecting out-of-order latency
    hiding. This is the component already folded into each profile's
    ``base_ipc``; the interval engine uses it for consistency checks and
    for the pipeline/interval cross-validation tests.
    """
    if l1d_mpki < 0 or l2_mpki < 0:
        raise ValueError("miss rates must be non-negative")
    l2_served = max(0.0, l1d_mpki - l2_mpki)  # L1 misses that hit in L2
    stall_l2 = (
        l2_served / 1000.0 * config.l2.latency_cycles * L2_EXPOSURE
    )
    stall_mem = (
        l2_mpki / 1000.0 * config.memory_latency_cycles * MEMORY_EXPOSURE
    )
    return stall_l2 + stall_mem


class WorkingSetAddressGenerator:
    """Synthetic data-address stream for the functional caches.

    Mixes sequential striding (spatial locality) with uniform references
    over a working set. A larger working set or a higher random fraction
    yields more misses; the pipeline tests assert this directional
    behaviour rather than exact SPEC miss rates.
    """

    def __init__(
        self,
        working_set_bytes: int,
        random_fraction: float,
        stride_bytes: int = 8,
        rng=None,
    ):
        if working_set_bytes <= 0:
            raise ValueError("working_set_bytes must be positive")
        if not 0.0 <= random_fraction <= 1.0:
            raise ValueError(f"random_fraction must be in [0,1]: {random_fraction}")
        from repro.util.rng import RngStream

        self.working_set_bytes = int(working_set_bytes)
        self.random_fraction = float(random_fraction)
        self.stride_bytes = int(stride_bytes)
        self._cursor = 0
        self._rng = rng or RngStream(0, "addrgen")

    def next_address(self) -> int:
        """Produce the next data address."""
        if float(self._rng.uniform()) < self.random_fraction:
            return int(self._rng.integers(0, self.working_set_bytes))
        self._cursor = (self._cursor + self.stride_bytes) % self.working_set_bytes
        return self._cursor
