"""Microarchitectural performance & power substrate (Turandot/PowerTimer
stand-in).

The paper's DTM study consumes its performance simulator through *power
traces*: per-floorplan-unit power sampled every 100,000 cycles (27.78 us
at 3.6 GHz), plus per-interval activity counters (instructions, integer
and FP register-file accesses) that feed the counter-based migration
policy. This package produces those traces from 22 synthetic SPEC CPU2000
benchmark models:

* :mod:`repro.uarch.config` — the Table 3 machine configuration;
* :mod:`repro.uarch.isa` — instruction classes and mixes;
* :mod:`repro.uarch.benchmarks` — calibrated per-benchmark profiles;
* :mod:`repro.uarch.phases` — time-varying phase behaviour;
* :mod:`repro.uarch.caches` / :mod:`repro.uarch.branch` — memory-system
  and branch-predictor models (both functional, for the cycle-level
  pipeline, and analytic, for the interval engine);
* :mod:`repro.uarch.pipeline` — a cycle-level out-of-order core model;
* :mod:`repro.uarch.interval_model` — the fast vectorised interval engine
  used for trace production;
* :mod:`repro.uarch.power` — PowerTimer-style activity-to-power scaling;
* :mod:`repro.uarch.trace` / :mod:`repro.uarch.tracegen` — trace
  containers, generation and caching;
* :mod:`repro.uarch.counters` — per-thread performance counters.
"""

from repro.uarch.benchmarks import (
    ALL_BENCHMARKS,
    BenchmarkProfile,
    get_benchmark,
    specfp_benchmarks,
    specint_benchmarks,
)
from repro.uarch.config import DVFSConfig, MachineConfig, default_machine_config
from repro.uarch.counters import PerformanceCounters
from repro.uarch.power import PowerModel
from repro.uarch.smt import merge_profiles
from repro.uarch.trace import PowerTrace
from repro.uarch.tracegen import clear_trace_cache, generate_trace

__all__ = [
    "ALL_BENCHMARKS",
    "BenchmarkProfile",
    "DVFSConfig",
    "MachineConfig",
    "PerformanceCounters",
    "PowerModel",
    "PowerTrace",
    "merge_profiles",
    "clear_trace_cache",
    "default_machine_config",
    "generate_trace",
    "get_benchmark",
    "specfp_benchmarks",
    "specint_benchmarks",
]
