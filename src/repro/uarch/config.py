"""Machine configuration — a direct encoding of the paper's Table 3.

Every number in :func:`default_machine_config` appears in Table 3 of the
paper ("Design parameters for modeled CPU and its four cores"); the class
also derives the quantities the rest of the system needs (trace sample
period, nominal per-cycle time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.util.validation import check_positive


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: size/associativity/block size/latency."""

    size_bytes: int
    associativity: int
    block_bytes: int
    latency_cycles: int

    def __post_init__(self):
        check_positive(self.size_bytes, "size_bytes")
        check_positive(self.associativity, "associativity")
        check_positive(self.block_bytes, "block_bytes")
        check_positive(self.latency_cycles, "latency_cycles")
        sets = self.size_bytes / (self.associativity * self.block_bytes)
        if sets != int(sets) or int(sets) < 1:
            raise ValueError(
                f"cache geometry does not divide evenly: {self.size_bytes}B / "
                f"({self.associativity} ways * {self.block_bytes}B blocks)"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.associativity * self.block_bytes)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Hybrid predictor: bimodal + gshare + selector (Table 3)."""

    bimodal_entries: int = 16 * 1024
    gshare_entries: int = 16 * 1024
    selector_entries: int = 16 * 1024
    history_bits: int = 14

    def __post_init__(self):
        for name in ("bimodal_entries", "gshare_entries", "selector_entries"):
            check_positive(getattr(self, name), name)


@dataclass(frozen=True)
class CoreConfig:
    """Per-core resources (Table 3 'Core Configuration')."""

    fetch_width: int = 4
    dispatch_width: int = 4
    retire_width: int = 4
    mem_int_queue: Tuple[int, int] = (2, 20)  # 2 queues x 20 entries
    fp_queue: Tuple[int, int] = (2, 5)
    n_fxu: int = 2
    n_fpu: int = 2
    n_lsu: int = 2
    n_bxu: int = 1
    gpr: int = 120
    fpr: int = 108
    spr: int = 90
    reorder_buffer: int = 128
    branch_predictor: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig
    )

    @property
    def issue_width(self) -> int:
        """Maximum instructions issued per cycle across all units."""
        return self.n_fxu + self.n_fpu + self.n_lsu + self.n_bxu


@dataclass(frozen=True)
class DVFSConfig:
    """DVFS actuator limits (Table 3 'DVFS Parameters')."""

    transition_penalty_s: float = 10e-6
    min_frequency_scale: float = 0.2
    min_transition: float = 0.02  # 2% of range

    def __post_init__(self):
        check_positive(self.transition_penalty_s, "transition_penalty_s")
        if not 0 < self.min_frequency_scale < 1:
            raise ValueError(
                f"min_frequency_scale must be in (0,1): {self.min_frequency_scale}"
            )
        if not 0 < self.min_transition < 1:
            raise ValueError(f"min_transition must be in (0,1): {self.min_transition}")


@dataclass(frozen=True)
class MachineConfig:
    """The full modeled CPU (Table 3)."""

    process_nm: int = 90
    vdd: float = 1.0
    clock_hz: float = 3.6e9
    n_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 2, 128, 1)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 128, 1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * 1024 * 1024, 4, 128, 9)
    )
    memory_latency_cycles: int = 100
    dvfs: DVFSConfig = field(default_factory=DVFSConfig)
    migration_penalty_s: float = 100e-6
    trace_sample_cycles: int = 100_000

    def __post_init__(self):
        check_positive(self.clock_hz, "clock_hz")
        check_positive(self.n_cores, "n_cores")
        check_positive(self.memory_latency_cycles, "memory_latency_cycles")
        check_positive(self.migration_penalty_s, "migration_penalty_s")
        check_positive(self.trace_sample_cycles, "trace_sample_cycles")

    @property
    def cycle_time_s(self) -> float:
        """Nominal (unscaled) cycle time."""
        return 1.0 / self.clock_hz

    @property
    def sample_period_s(self) -> float:
        """Trace sample period: 100,000 cycles = 27.78 us at 3.6 GHz.

        The paper rounds this to "28 us"; the exact value reproduces the
        published discrete PI coefficients.
        """
        return self.trace_sample_cycles / self.clock_hz

    @property
    def min_frequency_hz(self) -> float:
        """Lowest DVFS operating point (720 MHz in Table 3)."""
        return self.clock_hz * self.dvfs.min_frequency_scale


def default_machine_config() -> MachineConfig:
    """The paper's 4-core, 3.6 GHz, 90 nm configuration."""
    return MachineConfig()


def mobile_machine_config() -> MachineConfig:
    """The Table 1 measurement platform stand-in: 1.5 GHz, 1 MB L2.

    Mirrors the Pentium M Banias used for the real-hardware measurements:
    lower clock, smaller L2 (the paper notes mcf stays cool precisely
    because Banias provides only 1 MB of L2).
    """
    return MachineConfig(
        process_nm=130,
        vdd=1.1,
        clock_hz=1.5e9,
        n_cores=1,
        l2=CacheConfig(1024 * 1024, 4, 128, 9),
    )
