"""Vectorised interval engine.

Production traces cover 0.25 s of silicon time per benchmark — ~9,000
intervals of 100,000 cycles. Simulating 0.9 G cycles per benchmark with
the cycle-level pipeline is infeasible in Python, so the interval engine
computes the per-interval statistics (retired instructions, unit activity
factors, register-file access counts) analytically from the benchmark
profile and its phase waveform, fully vectorised with numpy. The paper's
own flow has the same shape: Turandot runs offline, and the DTM study
consumes only its per-interval outputs.

The engine is cross-validated against the pipeline model in
``tests/uarch/test_cross_validation.py``: unit-utilisation ratios and IPC
orderings must agree between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.uarch.benchmarks import BenchmarkProfile
from repro.uarch.config import MachineConfig
from repro.uarch.isa import InstructionClass
from repro.util.rng import RngStream

#: Floorplan-unit order used by activity and power matrices.
UNIT_ORDER = (
    "icache",
    "dcache",
    "bpred",
    "decode",
    "iq",
    "lsu",
    "fxu",
    "intreg",
    "bxu",
    "fpreg",
    "fpu",
)

#: Events-per-cycle capacity used to normalise each unit's activity factor.
UNIT_CAPACITY: Dict[str, float] = {
    "icache": 1.0,   # line fetches per cycle
    "dcache": 2.0,   # ports
    "bpred": 1.0,
    "decode": 4.0,   # dispatch width
    "iq": 4.0,
    "lsu": 2.0,
    "fxu": 2.0,
    "intreg": 6.0,   # read/write ports
    "bxu": 1.0,
    "fpreg": 4.0,
    "fpu": 2.0,
}

#: Activity factors are clipped here: brief phase spikes can nominally
#: exceed structural capacity in the analytic model.
MAX_ACTIVITY = 1.0


@dataclass(frozen=True)
class IntervalStats:
    """Per-interval statistics for one benchmark.

    Attributes
    ----------
    instructions:
        Instructions retired in each interval, shape ``(n,)``.
    int_rf_accesses, fp_rf_accesses:
        Register-file access counts per interval (the performance-counter
        values the counter-based migration policy reads).
    unit_activity:
        Activity factor in ``[0, 1]`` per unit, shape ``(n, len(UNIT_ORDER))``
        in :data:`UNIT_ORDER` order.
    l2_activity:
        Shared-L2 activity factor per interval, shape ``(n,)``.
    sample_cycles:
        Cycles per interval (100,000).
    """

    instructions: np.ndarray
    int_rf_accesses: np.ndarray
    fp_rf_accesses: np.ndarray
    unit_activity: np.ndarray
    l2_activity: np.ndarray
    sample_cycles: int

    @property
    def n_intervals(self) -> int:
        """Number of intervals."""
        return self.instructions.shape[0]

    @property
    def mean_ipc(self) -> float:
        """Average IPC over the whole window."""
        return float(self.instructions.mean() / self.sample_cycles)

    def unit_index(self, unit: str) -> int:
        """Column of ``unit`` in :attr:`unit_activity`."""
        try:
            return UNIT_ORDER.index(unit)
        except ValueError:
            raise KeyError(f"unknown unit {unit!r}") from None


def simulate_intervals(
    profile: BenchmarkProfile,
    config: MachineConfig,
    n_intervals: int,
    rng: RngStream,
) -> IntervalStats:
    """Produce :class:`IntervalStats` for ``n_intervals`` intervals.

    The per-interval IPC is the profile's base IPC modulated by its phase
    waveform and clipped to the machine's issue width; unit event rates
    follow from the instruction mix, and activity factors normalise them
    by structural capacity.
    """
    if n_intervals < 1:
        raise ValueError(f"n_intervals must be >= 1: {n_intervals}")
    interval_s = config.sample_period_s
    modulation = profile.phase.modulation(n_intervals, interval_s, rng)
    ipc = np.clip(
        profile.base_ipc * modulation, 0.02, float(config.core.issue_width)
    )

    mix = profile.mix
    int_ops = mix.fraction(InstructionClass.INT_ALU) + mix.fraction(
        InstructionClass.INT_MUL
    )
    fp_ops = mix.fp_fraction
    mem_ops = mix.load_store_fraction
    branches = mix.branch_fraction

    # Events per cycle for each unit.
    events = {
        "icache": 0.30 * ipc,  # ~one line feeds several instructions
        "dcache": mem_ops * ipc,
        "bpred": branches * ipc,
        "decode": ipc,
        "iq": ipc,
        "lsu": mem_ops * ipc,
        "fxu": int_ops * ipc,
        "intreg": profile.int_rf_accesses_per_instruction * ipc,
        "bxu": branches * ipc,
        "fpreg": profile.fp_rf_accesses_per_instruction * ipc,
        "fpu": fp_ops * ipc,
    }
    activity = np.column_stack(
        [
            np.clip(events[u] / UNIT_CAPACITY[u], 0.0, MAX_ACTIVITY)
            for u in UNIT_ORDER
        ]
    )

    cycles = float(config.trace_sample_cycles)
    instructions = ipc * cycles
    int_rf = profile.int_rf_accesses_per_instruction * instructions
    fp_rf = profile.fp_rf_accesses_per_instruction * instructions

    # Shared-L2 activity: L1D misses per cycle over a nominal bank capacity.
    l2_accesses_per_cycle = profile.l1d_mpki / 1000.0 * ipc
    l2_activity = np.clip(l2_accesses_per_cycle / 0.25, 0.0, MAX_ACTIVITY)

    return IntervalStats(
        instructions=instructions,
        int_rf_accesses=int_rf,
        fp_rf_accesses=fp_rf,
        unit_activity=activity,
        l2_activity=l2_activity,
        sample_cycles=config.trace_sample_cycles,
    )
