"""Calibrated synthetic profiles of the 22 SPEC CPU2000 benchmarks.

The paper selects 11 SPECint and 11 SPECfp programs. We cannot run the
SPEC binaries, so each program is replaced by a profile carrying exactly
the characteristics the paper's experiments depend on:

* **throughput** — base IPC at full frequency (sets BIPS);
* **resource intensity** — integer vs. FP register-file accesses per
  instruction (sets which hotspot the program stresses; Section 3.4);
* **memory behaviour** — L1/L2 misses per kilo-instruction (mcf's low
  temperature comes from its memory-bound execution);
* **phase behaviour** — stable vs. oscillating (Table 1's two groups).

Calibration sources are the paper's own statements and Table 1: gzip and
bzip2 are the hottest integer programs, sixtrack the hottest FP program,
mcf by far the coolest; bzip2/ammp/facerec/fma3d oscillate with ~6 degree
swings. IPC values are in the range published for these programs on
4-wide out-of-order models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.uarch.isa import InstructionMix, floating_point_mix, integer_mix
from repro.uarch.phases import PhaseSpec, oscillating_phase, stable_phase

#: Suite tags.
SPECINT = "int"
SPECFP = "fp"


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic stand-in for one SPEC CPU2000 program.

    Attributes
    ----------
    name, suite:
        Program name and suite tag (``"int"`` or ``"fp"``).
    base_ipc:
        Instructions per cycle at nominal frequency with no thermal
        constraint.
    mix:
        Stationary instruction-class distribution.
    int_rf_intensity, fp_rf_intensity:
        Multipliers on the mix-derived register-file access rates; these
        express that e.g. gzip hammers the integer register file harder
        than its raw instruction mix alone would suggest (tight loops,
        high port utilisation).
    l1d_mpki, l2_mpki:
        Data-side misses per kilo-instruction at L1 and L2.
    mispredicts_per_kinst:
        Branch mispredictions per kilo-instruction.
    phase:
        Activity-modulation waveform.
    """

    name: str
    suite: str
    base_ipc: float
    mix: InstructionMix
    int_rf_intensity: float = 1.0
    fp_rf_intensity: float = 1.0
    l1d_mpki: float = 5.0
    l2_mpki: float = 0.5
    mispredicts_per_kinst: float = 4.0
    phase: PhaseSpec = field(default_factory=stable_phase)

    def __post_init__(self):
        if self.suite not in (SPECINT, SPECFP):
            raise ValueError(f"suite must be 'int' or 'fp': {self.suite}")
        if not 0 < self.base_ipc <= 8:
            raise ValueError(f"base_ipc out of range: {self.base_ipc}")
        for attr in ("int_rf_intensity", "fp_rf_intensity"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        for attr in ("l1d_mpki", "l2_mpki", "mispredicts_per_kinst"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")

    @property
    def int_rf_accesses_per_instruction(self) -> float:
        """Expected integer RF accesses per instruction, intensity-scaled."""
        return self.int_rf_intensity * self.mix.int_rf_accesses_per_instruction()

    @property
    def fp_rf_accesses_per_instruction(self) -> float:
        """Expected FP RF accesses per instruction, intensity-scaled."""
        return self.fp_rf_intensity * self.mix.fp_rf_accesses_per_instruction()

    @property
    def is_memory_bound(self) -> bool:
        """Heuristic tag: frequent L2 misses dominate execution."""
        return self.l2_mpki >= 5.0


def _int_profile(
    name: str,
    ipc: float,
    rf: float,
    l1d: float,
    l2: float,
    mispred: float,
    phase: PhaseSpec = None,
    load: float = 0.22,
    store: float = 0.10,
    branch: float = 0.16,
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        suite=SPECINT,
        base_ipc=ipc,
        mix=integer_mix(load=load, store=store, branch=branch),
        int_rf_intensity=rf,
        fp_rf_intensity=0.15,  # FP RF nearly idle in integer code
        l1d_mpki=l1d,
        l2_mpki=l2,
        mispredicts_per_kinst=mispred,
        phase=phase or stable_phase(),
    )


def _fp_profile(
    name: str,
    ipc: float,
    fp_rf: float,
    int_rf: float,
    l1d: float,
    l2: float,
    phase: PhaseSpec = None,
    fp: float = 0.38,
    load: float = 0.24,
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        suite=SPECFP,
        base_ipc=ipc,
        mix=floating_point_mix(fp=fp, load=load),
        int_rf_intensity=int_rf,
        fp_rf_intensity=fp_rf,
        l1d_mpki=l1d,
        l2_mpki=l2,
        mispredicts_per_kinst=1.5,  # FP codes branch predictably
        phase=phase or stable_phase(),
    )


#: The 11 SPECint profiles.
SPECINT_BENCHMARKS: Tuple[BenchmarkProfile, ...] = (
    # gzip: hottest stable integer program (70 C in Table 1) — high IPC,
    # very integer-RF intensive, tiny working set.
    _int_profile("gzip", ipc=1.90, rf=1.20, l1d=3.0, l2=0.3, mispred=4.0),
    # bzip2: hot oscillator (67-72 C) — compression/decompression phases.
    _int_profile(
        "bzip2", ipc=1.80, rf=1.18, l1d=4.5, l2=0.6, mispred=5.0,
        phase=oscillating_phase("square", period_s=0.060, amplitude=0.26),
    ),
    # gcc: moderate everything.
    _int_profile("gcc", ipc=1.30, rf=1.00, l1d=6.0, l2=1.0, mispred=6.0),
    # mcf: by far the coolest (59 C) — pointer-chasing, L2-miss dominated.
    _int_profile("mcf", ipc=0.25, rf=0.85, l1d=40.0, l2=12.0, mispred=8.0,
                 load=0.32),
    # vpr: place & route, moderate IPC, predictable misses.
    _int_profile("vpr", ipc=1.10, rf=1.00, l1d=7.0, l2=1.2, mispred=7.0),
    # crafty: chess, high ILP, branchy but predictable.
    _int_profile("crafty", ipc=1.65, rf=1.10, l1d=3.5, l2=0.3, mispred=5.0),
    # parser: steady 67 C — moderate IPC but RF-intensive loops.
    _int_profile("parser", ipc=1.20, rf=1.12, l1d=5.5, l2=0.8, mispred=6.0),
    # eon: C++ ray tracer; some FP use inside an integer suite program.
    BenchmarkProfile(
        name="eon", suite=SPECINT, base_ipc=1.55,
        mix=floating_point_mix(fp=0.12, load=0.22, store=0.12, branch=0.11),
        int_rf_intensity=1.05, fp_rf_intensity=0.45,
        l1d_mpki=2.5, l2_mpki=0.2, mispredicts_per_kinst=3.0,
        phase=stable_phase(),
    ),
    # perlbmk: interpreter loop, decent IPC.
    _int_profile("perlbmk", ipc=1.45, rf=1.05, l1d=4.0, l2=0.5, mispred=5.5),
    # twolf: steady 67 C, RF-intensive placement kernel.
    _int_profile("twolf", ipc=1.10, rf=1.12, l1d=6.5, l2=0.9, mispred=7.0),
    # vortex: OO database, cache-friendly after warmup.
    _int_profile("vortex", ipc=1.50, rf=1.02, l1d=4.5, l2=0.4, mispred=3.5),
)

#: The 11 SPECfp profiles.
SPECFP_BENCHMARKS: Tuple[BenchmarkProfile, ...] = (
    # swim: memory-streaming stencil (62 C) — bandwidth bound.
    _fp_profile("swim", ipc=0.85, fp_rf=0.95, int_rf=0.75, l1d=25.0, l2=6.0),
    # mgrid: multigrid, dense FP with good locality.
    _fp_profile("mgrid", ipc=1.25, fp_rf=1.05, int_rf=0.70, l1d=9.0, l2=1.5),
    # applu: PDE solver, moderate.
    _fp_profile("applu", ipc=1.10, fp_rf=1.00, int_rf=0.72, l1d=12.0, l2=2.0),
    # mesa: software-rendering "FP" program with heavy integer work (65 C).
    _fp_profile("mesa", ipc=1.55, fp_rf=0.80, int_rf=1.00, l1d=3.5, l2=0.3,
                fp=0.24, load=0.22),
    # art: neural-net simulation, tiny IPC, L2-miss dominated.
    _fp_profile("art", ipc=0.50, fp_rf=0.85, int_rf=0.65, l1d=35.0, l2=9.0),
    # facerec: oscillator (65-71 C), FFT-ish phases.
    _fp_profile(
        "facerec", ipc=1.35, fp_rf=1.10, int_rf=0.75, l1d=8.0, l2=1.2,
        phase=oscillating_phase("sine", period_s=0.050, amplitude=0.38),
    ),
    # ammp: oscillator (58-64 C), molecular dynamics neighbour phases.
    _fp_profile(
        "ammp", ipc=0.95, fp_rf=1.05, int_rf=0.70, l1d=14.0, l2=3.0,
        phase=oscillating_phase("sine", period_s=0.070, amplitude=0.50),
    ),
    # lucas: Lucas-Lehmer FFT, steady 63 C.
    _fp_profile("lucas", ipc=1.05, fp_rf=1.08, int_rf=0.68, l1d=11.0, l2=2.5),
    # fma3d: oscillator (61-67 C), crash-simulation element phases.
    _fp_profile(
        "fma3d", ipc=1.20, fp_rf=1.00, int_rf=0.78, l1d=9.0, l2=1.5,
        phase=oscillating_phase("sawtooth", period_s=0.055, amplitude=0.40),
    ),
    # sixtrack: hottest FP program (71 C) — dense FP, cache resident.
    _fp_profile("sixtrack", ipc=1.90, fp_rf=1.22, int_rf=0.80, l1d=2.5, l2=0.2,
                fp=0.46),
    # wupwise: lattice QCD, high IPC dense FP.
    _fp_profile("wupwise", ipc=1.45, fp_rf=1.05, int_rf=0.72, l1d=7.0, l2=1.0),
)

#: All 22 profiles, name-indexed.
ALL_BENCHMARKS: Dict[str, BenchmarkProfile] = {
    b.name: b for b in SPECINT_BENCHMARKS + SPECFP_BENCHMARKS
}


def get_benchmark(name: str) -> BenchmarkProfile:
    """Look up a profile by program name."""
    try:
        return ALL_BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def specint_benchmarks() -> List[BenchmarkProfile]:
    """The 11 SPECint profiles."""
    return list(SPECINT_BENCHMARKS)


def specfp_benchmarks() -> List[BenchmarkProfile]:
    """The 11 SPECfp profiles."""
    return list(SPECFP_BENCHMARKS)


def oscillating_benchmarks() -> List[BenchmarkProfile]:
    """The Table 1(b) group: programs without a steady temperature."""
    return [b for b in ALL_BENCHMARKS.values() if b.phase.is_oscillating]
