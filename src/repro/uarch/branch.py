"""Branch prediction.

The Table 3 machine uses a hybrid predictor: 16K-entry bimodal, 16K-entry
gshare, and a 16K-entry selector. :class:`HybridPredictor` implements it
functionally (2-bit saturating counters throughout) for the cycle-level
pipeline; :func:`branch_stall_cpi` is the analytic misprediction-penalty
component used by the interval engine.
"""

from __future__ import annotations

import numpy as np

from repro.uarch.config import BranchPredictorConfig, MachineConfig

#: Pipeline refill penalty on a misprediction (front-end depth).
MISPREDICT_PENALTY_CYCLES = 12


class _CounterTable:
    """A table of 2-bit saturating counters, initialized weakly taken."""

    def __init__(self, entries: int):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two: {entries}")
        self.entries = entries
        self.counters = np.full(entries, 2, dtype=np.int8)

    def index(self, key: int) -> int:
        """Fold a key onto the table."""
        return key & (self.entries - 1)

    def predict(self, key: int) -> bool:
        """Predict taken iff the counter's top bit is set."""
        return bool(self.counters[self.index(key)] >= 2)

    def update(self, key: int, taken: bool) -> None:
        """Saturating increment/decrement toward the outcome."""
        i = self.index(key)
        if taken:
            self.counters[i] = min(3, self.counters[i] + 1)
        else:
            self.counters[i] = max(0, self.counters[i] - 1)


class HybridPredictor:
    """Bimodal + gshare with a per-branch selector (Table 3).

    The selector counter chooses gshare when >= 2, bimodal otherwise, and
    trains toward whichever component was correct (standard tournament
    update rule).
    """

    def __init__(self, config: BranchPredictorConfig = None):
        config = config or BranchPredictorConfig()
        self.config = config
        self.bimodal = _CounterTable(config.bimodal_entries)
        self.gshare = _CounterTable(config.gshare_entries)
        self.selector = _CounterTable(config.selector_entries)
        self.history = 0
        self._history_mask = (1 << config.history_bits) - 1
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        use_gshare = self.selector.predict(pc)
        if use_gshare:
            return self.gshare.predict(pc ^ self.history)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Resolve a branch: train all tables, advance history.

        Returns True if the prediction made for this branch was correct.
        """
        bimodal_pred = self.bimodal.predict(pc)
        gshare_pred = self.gshare.predict(pc ^ self.history)
        use_gshare = self.selector.predict(pc)
        final_pred = gshare_pred if use_gshare else bimodal_pred

        # Train the selector only when the components disagree.
        if bimodal_pred != gshare_pred:
            self.selector.update(pc, gshare_pred == taken)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc ^ self.history, taken)
        self.history = ((self.history << 1) | int(taken)) & self._history_mask

        self.predictions += 1
        correct = final_pred == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per resolved branch (0 before any branch)."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_counters(self) -> None:
        """Zero the statistics without forgetting learned state."""
        self.predictions = 0
        self.mispredictions = 0


def branch_stall_cpi(mispredicts_per_kinst: float, config: MachineConfig = None) -> float:
    """Analytic CPI lost to branch mispredictions."""
    if mispredicts_per_kinst < 0:
        raise ValueError("mispredicts_per_kinst must be non-negative")
    return mispredicts_per_kinst / 1000.0 * MISPREDICT_PENALTY_CYCLES


class SyntheticBranchStream:
    """A synthetic branch workload with controllable predictability.

    Emits ``(pc, taken)`` pairs drawn from a small set of static branches:
    loop-like branches (strongly biased taken) and data-dependent branches
    (outcome = Bernoulli with per-branch bias). Lower ``predictability``
    moves mass toward 50/50 branches, raising the misprediction rate of
    any predictor — used to validate :class:`HybridPredictor` behaviour.
    """

    def __init__(self, predictability: float, n_static: int = 64, rng=None):
        if not 0.0 <= predictability <= 1.0:
            raise ValueError(f"predictability must be in [0,1]: {predictability}")
        from repro.util.rng import RngStream

        self._rng = rng or RngStream(0, "branches")
        self.n_static = n_static
        # Per-branch taken bias: predictable branches near 0/1, hard ones near 0.5.
        biases = self._rng.uniform(0.0, 1.0, n_static)
        hard = self._rng.uniform(0.35, 0.65, n_static)
        easy = np.where(biases < 0.5, 0.02, 0.98)
        mask = self._rng.uniform(0.0, 1.0, n_static) < predictability
        self.biases = np.where(mask, easy, hard)
        self.pcs = (np.arange(n_static) * 64 + 0x1000).astype(int)

    def next_branch(self):
        """Draw the next ``(pc, taken)`` pair."""
        i = int(self._rng.integers(0, self.n_static))
        taken = bool(float(self._rng.uniform()) < self.biases[i])
        return int(self.pcs[i]), taken
