"""Instruction classes and per-benchmark instruction mixes.

The synthetic instruction streams driving both the cycle-level pipeline
and the interval engine are described by an :class:`InstructionMix` — the
stationary distribution over instruction classes — rather than by real
program binaries. This is the information the power model actually needs:
which execution resources (and hence floorplan units) each instruction
exercises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple


class InstructionClass(enum.Enum):
    """Broad execution classes, each mapping to a primary functional unit."""

    INT_ALU = "int_alu"  # executes on FXU, reads/writes integer RF
    INT_MUL = "int_mul"  # long-latency FXU op
    FP_ALU = "fp_alu"    # executes on FPU, reads/writes FP RF
    FP_MUL = "fp_mul"    # long-latency FPU op
    LOAD = "load"        # LSU + D-cache
    STORE = "store"      # LSU + D-cache
    BRANCH = "branch"    # BXU + predictor


#: Execution latency (cycles) of each class once issued.
EXECUTION_LATENCY: Dict[InstructionClass, int] = {
    InstructionClass.INT_ALU: 1,
    InstructionClass.INT_MUL: 7,
    InstructionClass.FP_ALU: 4,
    InstructionClass.FP_MUL: 6,
    InstructionClass.LOAD: 1,   # plus cache latency, added by the memory model
    InstructionClass.STORE: 1,
    InstructionClass.BRANCH: 1,
}

#: Integer register-file accesses per instruction of each class
#: (source reads + destination write, pessimistically rounded).
INT_RF_ACCESSES: Dict[InstructionClass, float] = {
    InstructionClass.INT_ALU: 3.0,
    InstructionClass.INT_MUL: 3.0,
    InstructionClass.FP_ALU: 0.0,
    InstructionClass.FP_MUL: 0.0,
    InstructionClass.LOAD: 2.0,   # address base + destination (int side)
    InstructionClass.STORE: 2.0,
    InstructionClass.BRANCH: 1.0,
}

#: FP register-file accesses per instruction of each class.
FP_RF_ACCESSES: Dict[InstructionClass, float] = {
    InstructionClass.INT_ALU: 0.0,
    InstructionClass.INT_MUL: 0.0,
    InstructionClass.FP_ALU: 3.0,
    InstructionClass.FP_MUL: 3.0,
    InstructionClass.LOAD: 0.5,   # FP loads write the FP RF; split heuristically
    InstructionClass.STORE: 0.5,
    InstructionClass.BRANCH: 0.0,
}


@dataclass(frozen=True)
class InstructionMix:
    """A stationary distribution over :class:`InstructionClass`.

    Fractions must be non-negative and sum to 1 (within tolerance).
    """

    fractions: Tuple[Tuple[InstructionClass, float], ...]

    def __post_init__(self):
        total = 0.0
        seen = set()
        for cls, frac in self.fractions:
            if cls in seen:
                raise ValueError(f"duplicate class {cls} in mix")
            seen.add(cls)
            if frac < 0:
                raise ValueError(f"negative fraction for {cls}: {frac}")
            total += frac
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"mix fractions must sum to 1, got {total}")

    @classmethod
    def from_dict(cls, fractions: Dict[InstructionClass, float]) -> "InstructionMix":
        """Build a mix from a class->fraction mapping."""
        return cls(tuple(sorted(fractions.items(), key=lambda kv: kv[0].value)))

    def fraction(self, icls: InstructionClass) -> float:
        """Fraction of instructions in the given class (0 if absent)."""
        for c, f in self.fractions:
            if c is icls:
                return f
        return 0.0

    def __iter__(self) -> Iterator[Tuple[InstructionClass, float]]:
        return iter(self.fractions)

    @property
    def load_store_fraction(self) -> float:
        """Memory-instruction share."""
        return self.fraction(InstructionClass.LOAD) + self.fraction(
            InstructionClass.STORE
        )

    @property
    def fp_fraction(self) -> float:
        """Floating-point-instruction share."""
        return self.fraction(InstructionClass.FP_ALU) + self.fraction(
            InstructionClass.FP_MUL
        )

    @property
    def branch_fraction(self) -> float:
        """Branch-instruction share."""
        return self.fraction(InstructionClass.BRANCH)

    def int_rf_accesses_per_instruction(self) -> float:
        """Expected integer register-file accesses per instruction."""
        return sum(f * INT_RF_ACCESSES[c] for c, f in self.fractions)

    def fp_rf_accesses_per_instruction(self) -> float:
        """Expected FP register-file accesses per instruction."""
        return sum(f * FP_RF_ACCESSES[c] for c, f in self.fractions)


def integer_mix(
    load: float = 0.22,
    store: float = 0.10,
    branch: float = 0.16,
    int_mul: float = 0.02,
) -> InstructionMix:
    """A typical SPECint mix: the remainder is single-cycle integer ALU."""
    int_alu = 1.0 - load - store - branch - int_mul
    return InstructionMix.from_dict(
        {
            InstructionClass.INT_ALU: int_alu,
            InstructionClass.INT_MUL: int_mul,
            InstructionClass.LOAD: load,
            InstructionClass.STORE: store,
            InstructionClass.BRANCH: branch,
        }
    )


def floating_point_mix(
    fp: float = 0.38,
    fp_mul_share: float = 0.4,
    load: float = 0.24,
    store: float = 0.09,
    branch: float = 0.05,
    int_mul: float = 0.01,
) -> InstructionMix:
    """A typical SPECfp mix: ``fp`` split between FP add and FP multiply."""
    fp_mul = fp * fp_mul_share
    fp_alu = fp - fp_mul
    int_alu = 1.0 - fp - load - store - branch - int_mul
    if int_alu < 0:
        raise ValueError("mix fractions exceed 1")
    return InstructionMix.from_dict(
        {
            InstructionClass.INT_ALU: int_alu,
            InstructionClass.INT_MUL: int_mul,
            InstructionClass.FP_ALU: fp_alu,
            InstructionClass.FP_MUL: fp_mul,
            InstructionClass.LOAD: load,
            InstructionClass.STORE: store,
            InstructionClass.BRANCH: branch,
        }
    )
