"""Power-trace persistence.

The paper's flow generates traces once (hours of Turandot time) and
replays them across every policy experiment. Our traces are cheap to
regenerate, but persisting them still matters for larger studies, for
sharing exact inputs alongside results, and for inspecting traces with
external tools. Format: a single ``.npz`` with the arrays plus a small
metadata record; round-trips are exact (bit-for-bit arrays).
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from repro.uarch.interval_model import UNIT_ORDER
from repro.uarch.trace import PowerTrace

#: Format version written into every file; bump on layout changes.
FORMAT_VERSION = 1

_PathLike = Union[str, pathlib.Path]


def save_trace(trace: PowerTrace, path: _PathLike) -> pathlib.Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing).

    Returns the path actually written.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "format_version": FORMAT_VERSION,
        "benchmark": trace.benchmark,
        "sample_period_s": trace.sample_period_s,
        "sample_cycles": trace.sample_cycles,
        "unit_order": list(UNIT_ORDER),
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        unit_power=trace.unit_power,
        l2_activity=trace.l2_activity,
        instructions=trace.instructions,
        int_rf_accesses=trace.int_rf_accesses,
        fp_rf_accesses=trace.fp_rf_accesses,
    )
    return path


def load_trace(path: _PathLike) -> PowerTrace:
    """Read a trace written by :func:`save_trace`.

    Raises ``ValueError`` on version or unit-order mismatch — a trace
    written under a different unit layout must not be silently
    misinterpreted.
    """
    path = pathlib.Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('format_version')} "
                f"(expected {FORMAT_VERSION})"
            )
        if tuple(meta.get("unit_order", ())) != UNIT_ORDER:
            raise ValueError(
                "trace was written with a different floorplan unit order; "
                "regenerate it with this version of the library"
            )
        return PowerTrace(
            benchmark=meta["benchmark"],
            sample_period_s=float(meta["sample_period_s"]),
            sample_cycles=int(meta["sample_cycles"]),
            unit_power=data["unit_power"].copy(),
            l2_activity=data["l2_activity"].copy(),
            instructions=data["instructions"].copy(),
            int_rf_accesses=data["int_rf_accesses"].copy(),
            fp_rf_accesses=data["fp_rf_accesses"].copy(),
        )
