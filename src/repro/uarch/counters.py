"""Per-thread performance counters.

Counter-based migration (Section 6.1) reads "cycle counts, the number of
integer register file accesses, the number of floating point register
accesses, and instructions executed" and works with accesses per
*adjusted* cycle when frequency scaling is active: a thread observed at a
low frequency looks artificially cool, so its access rates are normalised
by the effective cycles actually delivered.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PerformanceCounters:
    """Hardware counters attributed to a single thread.

    ``cycles`` counts wall-clock nominal cycles the thread was scheduled;
    ``adjusted_cycles`` weights each period by the frequency scale then in
    effect — the denominator the paper's migration policy needs.
    """

    instructions: float = 0.0
    int_rf_accesses: float = 0.0
    fp_rf_accesses: float = 0.0
    cycles: float = 0.0
    adjusted_cycles: float = 0.0

    def update(
        self,
        instructions: float,
        int_rf_accesses: float,
        fp_rf_accesses: float,
        nominal_cycles: float,
        frequency_scale: float,
    ) -> None:
        """Accumulate one observation window.

        Parameters
        ----------
        instructions, int_rf_accesses, fp_rf_accesses:
            Event counts in the window.
        nominal_cycles:
            Wall-clock duration of the window expressed in nominal cycles.
        frequency_scale:
            Frequency scale in effect during the window (0 while stalled).
        """
        if nominal_cycles < 0:
            raise ValueError(f"nominal_cycles must be >= 0: {nominal_cycles}")
        if not 0.0 <= frequency_scale <= 1.0:
            raise ValueError(f"frequency_scale must be in [0,1]: {frequency_scale}")
        self.instructions += instructions
        self.int_rf_accesses += int_rf_accesses
        self.fp_rf_accesses += fp_rf_accesses
        self.cycles += nominal_cycles
        self.adjusted_cycles += nominal_cycles * frequency_scale

    @property
    def int_rf_per_adjusted_cycle(self) -> float:
        """Integer RF accesses per adjusted cycle (0 before any activity)."""
        if self.adjusted_cycles == 0:
            return 0.0
        return self.int_rf_accesses / self.adjusted_cycles

    @property
    def fp_rf_per_adjusted_cycle(self) -> float:
        """FP RF accesses per adjusted cycle (0 before any activity)."""
        if self.adjusted_cycles == 0:
            return 0.0
        return self.fp_rf_accesses / self.adjusted_cycles

    @property
    def ipc(self) -> float:
        """Instructions per adjusted cycle."""
        if self.adjusted_cycles == 0:
            return 0.0
        return self.instructions / self.adjusted_cycles

    def intensity_for(self, hotspot_unit: str) -> float:
        """Access intensity relevant to a hotspot unit.

        The migration matcher asks "which thread would heat this core's
        critical hotspot least?"; intensity for the integer register file
        is integer-RF accesses per adjusted cycle, and likewise for FP.
        Unknown units fall back to total instruction rate.
        """
        if hotspot_unit == "intreg":
            return self.int_rf_per_adjusted_cycle
        if hotspot_unit == "fpreg":
            return self.fp_rf_per_adjusted_cycle
        return self.ipc

    def reset(self) -> None:
        """Zero all counters (thread teardown)."""
        self.instructions = 0.0
        self.int_rf_accesses = 0.0
        self.fp_rf_accesses = 0.0
        self.cycles = 0.0
        self.adjusted_cycles = 0.0

    def copy(self) -> "PerformanceCounters":
        """An independent snapshot of the current values."""
        return PerformanceCounters(
            instructions=self.instructions,
            int_rf_accesses=self.int_rf_accesses,
            fp_rf_accesses=self.fp_rf_accesses,
            cycles=self.cycles,
            adjusted_cycles=self.adjusted_cycles,
        )
