"""Simultaneous multithreading (SMT) as a workload transformation.

The paper names SMT as the other natural extension of its taxonomy
(Section 9), and the surrounding literature — the authors' own
CMP-vs-SMT thermal study [9], Li et al. HPCA'05, Powell et al.
Heat-and-Run — frames the question our extension study asks: at equal
silicon area, does running two threads per (bigger) SMT core behave
better or worse thermally than one thread per (smaller) core?

We model a 2-way SMT core at the fidelity the thermal study needs: two
co-scheduled threads merge into one *combined profile* whose trace drives
a single core. The merge rules follow published SMT behaviour:

* **throughput** — combined IPC is ``min(cap, (ipc_a + ipc_b) *
  SMT_EFFICIENCY)``: two threads share fetch/issue bandwidth, so each
  runs slower than alone but the pair outruns either (typical published
  SMT speedups are 1.2–1.4x over single-thread; efficiency 0.75 puts a
  1.9+1.9 IPC pair at ~2.85);
* **mix and register-file pressure** — instruction-weighted blends: an
  int+fp pair exercises *both* register files at once, which is exactly
  the thermal hazard SMT introduces (no cool unit left to balance
  against);
* **memory system** — miss rates blend instruction-weighted and gain a
  contention bump (threads share the L1/L2);
* **phases** — the pair's activity modulation keeps the stronger
  oscillator's waveform; uncorrelated thread phases partially cancel, so
  the amplitude is damped.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.uarch.benchmarks import BenchmarkProfile
from repro.uarch.isa import InstructionMix

#: Fraction of the threads' summed solo IPC an SMT pair achieves.
SMT_EFFICIENCY = 0.75

#: Combined-IPC cap (shared fetch/decode path, not the full issue width).
SMT_IPC_CAP = 3.2

#: Multiplier on blended miss rates from cache sharing.
CACHE_CONTENTION_FACTOR = 1.25

#: Damping applied to the dominant thread's phase amplitude (uncorrelated
#: phases partially cancel when two activity streams superpose).
PHASE_DAMPING = 0.6


def _blend_mixes(
    mix_a: InstructionMix, mix_b: InstructionMix, weight_a: float
) -> InstructionMix:
    """Instruction-count-weighted blend of two mixes."""
    classes = {cls for cls, _f in mix_a} | {cls for cls, _f in mix_b}
    blended = {
        cls: weight_a * mix_a.fraction(cls) + (1.0 - weight_a) * mix_b.fraction(cls)
        for cls in classes
    }
    # Guard against floating-point drift away from a unit sum.
    total = sum(blended.values())
    blended = {cls: f / total for cls, f in blended.items()}
    return InstructionMix.from_dict(blended)


def merge_profiles(
    a: BenchmarkProfile,
    b: BenchmarkProfile,
    name: Optional[str] = None,
    efficiency: float = SMT_EFFICIENCY,
) -> BenchmarkProfile:
    """The combined profile of threads ``a`` and ``b`` co-running on one
    2-way SMT core.

    The result is an ordinary :class:`BenchmarkProfile`, so the whole
    trace/power/thermal pipeline applies unchanged — an SMT chip is "a
    CMP whose per-core workloads are merged pairs".
    """
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1]: {efficiency}")
    combined_ipc = min(SMT_IPC_CAP, (a.base_ipc + b.base_ipc) * efficiency)
    # Instruction share of thread a within the pair (throughput-weighted).
    weight_a = a.base_ipc / (a.base_ipc + b.base_ipc)

    def blend(x: float, y: float) -> float:
        return weight_a * x + (1.0 - weight_a) * y

    mix = _blend_mixes(a.mix, b.mix, weight_a)
    # Per-instruction RF rates blend; intensities must be re-derived
    # against the *blended* mix so the product (mix rate x intensity)
    # equals the blended per-instruction access rate.
    target_int = blend(
        a.int_rf_accesses_per_instruction, b.int_rf_accesses_per_instruction
    )
    target_fp = blend(
        a.fp_rf_accesses_per_instruction, b.fp_rf_accesses_per_instruction
    )
    mix_int = mix.int_rf_accesses_per_instruction()
    mix_fp = mix.fp_rf_accesses_per_instruction()
    int_intensity = target_int / mix_int if mix_int > 0 else 0.0
    fp_intensity = target_fp / mix_fp if mix_fp > 0 else 0.0

    dominant = a if a.phase.amplitude >= b.phase.amplitude else b
    phase = replace(
        dominant.phase, amplitude=dominant.phase.amplitude * PHASE_DAMPING
    )

    suite = a.suite if a.suite == b.suite else "fp"  # mixed pairs tagged fp
    return BenchmarkProfile(
        name=name or f"{a.name}+{b.name}",
        suite=suite,
        base_ipc=combined_ipc,
        mix=mix,
        int_rf_intensity=int_intensity,
        fp_rf_intensity=fp_intensity,
        l1d_mpki=blend(a.l1d_mpki, b.l1d_mpki) * CACHE_CONTENTION_FACTOR,
        l2_mpki=blend(a.l2_mpki, b.l2_mpki) * CACHE_CONTENTION_FACTOR,
        mispredicts_per_kinst=blend(
            a.mispredicts_per_kinst, b.mispredicts_per_kinst
        ),
        phase=phase,
    )


def smt_speedup(a: BenchmarkProfile, b: BenchmarkProfile) -> float:
    """Throughput of the SMT pair relative to time-slicing the two threads
    on one core (each then effectively runs at half rate)."""
    merged = merge_profiles(a, b)
    time_sliced = 0.5 * (a.base_ipc + b.base_ipc)
    return merged.base_ipc / time_sliced
