"""Formal control-theory substrate.

The paper designs its DVFS controller with classical tools (MATLAB's
``c2d``, root-locus stability checks). This package provides the same
capabilities in Python:

* :mod:`repro.control.transfer` — rational transfer functions in the
  Laplace (``s``) or z domain;
* :mod:`repro.control.c2d` — continuous-to-discrete conversion (forward
  Euler, Tustin, zero-order hold);
* :mod:`repro.control.stability` — pole extraction, stability criteria,
  and root-locus sampling;
* :mod:`repro.control.pi` — the PI design used in the paper
  (``Kp = 0.0107``, ``Ki = 248.5``) and the discrete runtime controller
  with output clipping and inherent anti-windup;
* :mod:`repro.control.analysis` — step-response simulation against a
  first-order thermal plant, settling time and overshoot metrics.
"""

from repro.control.analysis import (
    FirstOrderThermalPlant,
    StepResponse,
    closed_loop_step_response,
    settling_time,
)
from repro.control.c2d import c2d, discretize_pi_increments
from repro.control.pi import (
    PAPER_KI,
    PAPER_KP,
    DiscretePIController,
    PIDesign,
    design_paper_controller,
)
from repro.control.stability import is_stable, poles, root_locus
from repro.control.transfer import TransferFunction

__all__ = [
    "PAPER_KI",
    "PAPER_KP",
    "DiscretePIController",
    "FirstOrderThermalPlant",
    "PIDesign",
    "StepResponse",
    "TransferFunction",
    "c2d",
    "closed_loop_step_response",
    "design_paper_controller",
    "discretize_pi_increments",
    "is_stable",
    "poles",
    "root_locus",
    "settling_time",
]
