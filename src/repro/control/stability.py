"""Pole extraction, stability criteria, and root-locus sampling.

The paper verifies its PI design with "a root locus plot with the
stability criterion that all the poles ... must lie to the left of the
y-axis in the Laplace space". These functions reproduce that check.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.control.transfer import CONTINUOUS, DISCRETE, TransferFunction


def poles(tf: TransferFunction) -> np.ndarray:
    """The poles of a transfer function (roots of its denominator)."""
    return tf.poles()


def is_stable(tf: TransferFunction, tolerance: float = 0.0) -> bool:
    """Whether all poles satisfy the domain's stability criterion.

    Continuous systems require every pole strictly in the left half plane
    (``Re < -tolerance``); discrete systems require every pole strictly
    inside the unit circle (``|z| < 1 - tolerance``). Systems with no
    poles (pure gains) are trivially stable.
    """
    p = tf.poles()
    if p.size == 0:
        return True
    if tf.domain == CONTINUOUS:
        return bool(np.all(p.real < -tolerance))
    if tf.domain == DISCRETE:
        return bool(np.all(np.abs(p) < 1.0 - tolerance))
    raise ValueError(f"unknown domain {tf.domain!r}")


def is_marginally_stable(tf: TransferFunction, atol: float = 1e-9) -> bool:
    """Whether the system is stable apart from simple poles on the boundary.

    A PI controller in open loop has a pole at the origin (continuous) or
    at ``z = 1`` (discrete); such systems are marginally stable rather
    than unstable.
    """
    p = tf.poles()
    if p.size == 0:
        return True
    if tf.domain == CONTINUOUS:
        boundary = np.isclose(p.real, 0.0, atol=atol)
        interior = p.real < 0
    else:
        mag = np.abs(p)
        boundary = np.isclose(mag, 1.0, atol=atol)
        interior = mag < 1.0
    if not np.all(boundary | interior):
        return False
    # Boundary poles must be simple (no repeats).
    boundary_poles = p[boundary]
    for i, bp in enumerate(boundary_poles):
        for other in boundary_poles[i + 1:]:
            if abs(bp - other) < atol:
                return False
    return True


def root_locus(
    open_loop: TransferFunction, gains: Sequence[float]
) -> np.ndarray:
    """Sample the root locus of ``1 + k * G(x) = 0`` over ``gains``.

    Returns an array of shape ``(len(gains), n_poles)`` holding the
    closed-loop pole locations for each gain, sorted by real part so that
    branches are roughly contiguous.
    """
    gains = np.asarray(list(gains), dtype=float)
    if gains.size == 0:
        raise ValueError("at least one gain is required")
    n = max(open_loop.den.size, open_loop.num.size) - 1
    out = np.full((gains.size, n), np.nan, dtype=complex)
    num = np.concatenate([np.zeros(open_loop.den.size - open_loop.num.size),
                          open_loop.num])
    for i, k in enumerate(gains):
        char = np.polyadd(open_loop.den, k * num)
        roots = np.roots(char)
        roots = np.sort_complex(roots)
        out[i, :roots.size] = roots
    return out


def stability_margin_gain(
    open_loop: TransferFunction,
    gains: Sequence[float],
) -> float:
    """The largest sampled gain for which the closed loop remains stable.

    Scans ``gains`` in increasing order and returns the last value whose
    closed-loop poles all satisfy the stability criterion; returns 0.0 if
    even the smallest sampled gain is unstable.
    """
    stable_up_to = 0.0
    for k in sorted(gains):
        closed = (open_loop * float(k)).feedback()
        if is_stable(closed, tolerance=0.0) or is_marginally_stable(closed):
            stable_up_to = float(k)
        else:
            break
    return stable_up_to
