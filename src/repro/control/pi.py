"""The paper's PI controller: continuous design and discrete runtime.

Design side
-----------
The paper uses ``G(s) = Kp + Ki/s`` with ``Kp = 0.0107`` and
``Ki = 248.5``, chosen (via MATLAB experiments in the style of Skadron et
al., HPCA'02) for smooth transitions — the proportional constant is two
orders of magnitude below that earlier work.

Runtime side
------------
Discretized at the trace sample period (100,000 cycles at 3.6 GHz =
27.78 us, quoted as "28 us" in the paper) with forward Euler, the law is::

    u[n] = u[n-1] - 0.0107 * e[n] + 0.003797 * e[n-1]

where ``e[n] = measured_temperature - target`` and ``u`` is the frequency
scale factor, clipped to ``[0.2, 1.0]``. Because ``u[n]`` depends only on
the *clipped* previous output, clipping doubles as anti-windup: no hidden
integral state can accumulate while the actuator is saturated (Section 4.2
of the paper makes exactly this observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.control.c2d import discretize_pi_increments
from repro.control.transfer import TransferFunction, pi_transfer_function

#: Proportional gain used in all of the paper's experiments.
PAPER_KP = 0.0107

#: Integral gain used in all of the paper's experiments.
PAPER_KI = 248.5

#: Lower clip of the frequency scale factor (20% of nominal = 720 MHz).
MIN_FREQUENCY_SCALE = 0.2

#: Upper clip of the frequency scale factor (nominal frequency).
MAX_FREQUENCY_SCALE = 1.0


@dataclass(frozen=True)
class PIDesign:
    """A continuous PI design plus its discretization.

    Attributes
    ----------
    kp, ki:
        Continuous-time proportional and integral gains.
    dt:
        Sample period of the discrete implementation.
    b0, b1:
        Incremental-form coefficients: ``u[n] = u[n-1] + b0*e[n] + b1*e[n-1]``
        for the standard sign convention (``e = target - measured``).
    """

    kp: float
    ki: float
    dt: float
    b0: float
    b1: float

    def transfer_function(self) -> TransferFunction:
        """The continuous ``Kp + Ki/s`` transfer function."""
        return pi_transfer_function(self.kp, self.ki)


@lru_cache(maxsize=64)
def _design_pi_cached(kp: float, ki: float, dt: float, method: str) -> PIDesign:
    b0, b1 = discretize_pi_increments(kp, ki, dt, method)
    return PIDesign(kp=kp, ki=ki, dt=dt, b0=b0, b1=b1)


def design_pi(kp: float, ki: float, dt: float, method: str = "euler") -> PIDesign:
    """Build a :class:`PIDesign` by discretizing ``Kp + Ki/s`` at ``dt``.

    Designs are memoized on ``(kp, ki, dt, method)``: the ``c2d``
    polynomial algebra costs ~1 ms, which dominated simulator
    construction when a fleet builds hundreds of identically-designed
    controllers. :class:`PIDesign` is frozen, so sharing one instance
    across controllers is safe.
    """
    if not dt > 0:
        raise ValueError(f"dt must be positive, got {dt}")
    return _design_pi_cached(float(kp), float(ki), float(dt), str(method))


def design_paper_controller(dt: float) -> PIDesign:
    """The paper's controller (``Kp = 0.0107``, ``Ki = 248.5``) at ``dt``."""
    return design_pi(PAPER_KP, PAPER_KI, dt)


def pi_raw_update(output, error, previous_error, design: "PIDesign"):
    """One unclipped step of the paper's incremental PI law.

    ``u_raw[n] = u[n-1] - b0*e[n] - b1*e[n-1]`` with the paper's negated
    sign convention (``e = measured - target``). Works elementwise on
    floats and on numpy arrays alike; :class:`DiscretePIController` and
    :class:`PIBank` both step through this one expression, which is what
    makes a bank lane bit-identical to a scalar controller.
    """
    return output - design.b0 * error - design.b1 * previous_error


@dataclass
class ControllerTrace:
    """Optional per-step history recorded by a controller.

    The outer migration loop consumes this feedback: the average output
    (frequency scale) over an observation window is used to time-scale
    measured thermal trends (Section 6.3).
    """

    times: List[float] = field(default_factory=list)
    errors: List[float] = field(default_factory=list)
    outputs: List[float] = field(default_factory=list)


class DiscretePIController:
    """Discrete incremental-form PI controller with output clipping.

    The controller follows the paper's sign convention: the *error* passed
    to :meth:`step` is ``measured - target`` (positive when too hot), and
    the output is a frequency scale factor that decreases as the error
    grows. Output clipping to ``[output_min, output_max]`` provides
    anti-windup for free because the recurrence stores only the clipped
    output.
    """

    def __init__(
        self,
        design: PIDesign,
        setpoint: float,
        output_min: float = MIN_FREQUENCY_SCALE,
        output_max: float = MAX_FREQUENCY_SCALE,
        initial_output: Optional[float] = None,
        record: bool = False,
    ):
        """Validate the output band and initialise the recurrence state."""
        if not output_min < output_max:
            raise ValueError(
                f"output_min ({output_min}) must be < output_max ({output_max})"
            )
        self.design = design
        self.setpoint = float(setpoint)
        self.output_min = float(output_min)
        self.output_max = float(output_max)
        self.output = float(output_max if initial_output is None else initial_output)
        self._previous_error = 0.0
        self._steps = 0
        self._output_sum = 0.0
        self.trace: Optional[ControllerTrace] = ControllerTrace() if record else None

    def step(self, measured: float, time: float = 0.0) -> float:
        """Advance one sample period and return the new (clipped) output.

        Parameters
        ----------
        measured:
            The temperature seen by this controller (for a per-core
            controller, the hotter of the core's two sensors; for a global
            controller, the hottest sensor on the chip).
        time:
            Simulation time, recorded in the optional trace.
        """
        error = measured - self.setpoint
        # Incremental form with the paper's negated sign convention:
        # u[n] = u[n-1] - b0*e[n] - b1*e[n-1].
        raw = pi_raw_update(self.output, error, self._previous_error, self.design)
        self.output = min(self.output_max, max(self.output_min, raw))
        self._previous_error = error
        self._steps += 1
        self._output_sum += self.output
        if self.trace is not None:
            self.trace.times.append(time)
            self.trace.errors.append(error)
            self.trace.outputs.append(self.output)
        return self.output

    def reset(self, initial_output: Optional[float] = None) -> None:
        """Reset controller state (used when a core's thread is swapped)."""
        self.output = float(
            self.output_max if initial_output is None else initial_output
        )
        self._previous_error = 0.0
        self._steps = 0
        self._output_sum = 0.0

    @property
    def last_error(self) -> float:
        """Most recent error ``e[n] = measured - setpoint`` (0.0 pre-step).

        Telemetry reads this at sample instants; it is exactly the
        ``e[n-1]`` the next :meth:`step` will use.
        """
        return self._previous_error

    @property
    def average_output(self) -> float:
        """Mean output since construction or the last window reset.

        This is the quantity the OS reads back when time-scaling thermal
        trends for sensor-based migration.
        """
        if self._steps == 0:
            return self.output
        return self._output_sum / self._steps

    def reset_window(self) -> None:
        """Clear the averaging window without disturbing control state."""
        self._steps = 0
        self._output_sum = 0.0


#: A lane address in a :class:`PIBank`: an index, or a tuple of indices
#: for banks with multi-dimensional lane layouts (e.g. ``(chip, core)``).
LaneIndex = Union[int, Tuple[int, ...]]


class PIBank:
    """A vectorized bank of independent PI controllers.

    Lanes share one :class:`PIDesign` and clip range but carry
    independent state (output, previous error, averaging window) and
    per-lane setpoints; :meth:`step_prefix` advances the first ``m``
    rows of every lane array in one shot using the same
    :func:`pi_raw_update` law and a clamp written to match the scalar
    ``min(max_, max(min_, raw))`` composition *including its NaN
    behaviour* (a NaN raw command clamps to ``output_min``), so each
    lane's trajectory is bit-identical to a scalar controller fed the
    same measurements — even measurements poisoned by NaN sensor
    dropouts. The fleet engine uses one bank per chip
    batch, with lane layout ``(chips, cores)`` for distributed control
    and ``(chips,)`` for global control.

    :meth:`read_lane` / :meth:`write_lane` move one lane's state between
    the bank and a scalar controller — the bridge the fleet uses to hand
    control decisions to real policy objects at OS ticks.
    """

    def __init__(
        self,
        design: PIDesign,
        setpoints: np.ndarray,
        output_min=MIN_FREQUENCY_SCALE,
        output_max: float = MAX_FREQUENCY_SCALE,
    ):
        """One lane per element of ``setpoints``, all at ``output_max``.

        ``output_min`` may be a scalar or an array broadcastable against
        the trailing lane axes (a ``(cores,)`` vector of per-class DVFS
        floors under a heterogeneous scenario broadcasts against
        ``(chips, cores)`` lanes elementwise, exactly matching a scalar
        controller per lane with its own floor).
        """
        out_min = np.asarray(output_min, dtype=float)
        if not np.all(out_min < output_max):
            raise ValueError(
                f"output_min ({output_min}) must be < output_max ({output_max})"
            )
        self.design = design
        self.setpoints = np.asarray(setpoints, dtype=float)
        self.output_min = float(out_min) if out_min.ndim == 0 else out_min
        self.output_max = float(output_max)
        shape = self.setpoints.shape
        self.output = np.full(shape, self.output_max)
        self.previous_error = np.zeros(shape)
        self.window_steps = np.zeros(shape, dtype=np.int64)
        self.output_sum = np.zeros(shape)

    @property
    def n_lanes(self) -> int:
        """Total number of controller lanes in the bank."""
        return int(self.setpoints.size)

    def step_prefix(self, m: int, measured: np.ndarray) -> np.ndarray:
        """Advance lanes ``[:m]`` one sample period; returns their outputs.

        ``measured`` must match the shape of ``self.output[:m]``. The
        returned array is the live output slice — callers must treat it
        as read-only.
        """
        out = self.output[:m]
        prev = self.previous_error[:m]
        error = measured - self.setpoints[:m]
        raw = pi_raw_update(out, error, prev, self.design)
        # Clamp via explicit selections, not np.minimum/np.maximum: the
        # scalar controller's ``min(max_, max(min_, raw))`` maps a NaN
        # raw command to ``output_min`` (Python's max/min keep the first
        # argument unless the second compares greater/less), whereas
        # numpy's minimum/maximum propagate NaN. A NaN command happens
        # under NaN-mode sensor dropouts, and the scalar engine *acts*
        # on the clamped 0.2 — so the bank must clamp identically. For
        # finite inputs the two compositions are bitwise equal.
        floored = np.where(raw > self.output_min, raw, self.output_min)
        out[...] = np.where(floored < self.output_max, floored, self.output_max)
        prev[...] = error
        self.window_steps[:m] += 1
        self.output_sum[:m] += out
        return out

    def step(self, measured: np.ndarray) -> np.ndarray:
        """Advance every lane one sample period; returns all outputs."""
        return self.step_prefix(self.output.shape[0], measured)

    def average_output(self) -> np.ndarray:
        """Per-lane mean output over the window (current output pre-step)."""
        return np.where(
            self.window_steps == 0,
            self.output,
            self.output_sum / np.maximum(self.window_steps, 1),
        )

    def reset_window_prefix(self, m: int) -> None:
        """Clear the averaging window of lanes ``[:m]``."""
        self.window_steps[:m] = 0
        self.output_sum[:m] = 0.0

    def write_lane(self, lane: LaneIndex, controller: DiscretePIController) -> None:
        """Copy one lane's state into a scalar controller."""
        controller.output = float(self.output[lane])
        controller._previous_error = float(self.previous_error[lane])
        controller._steps = int(self.window_steps[lane])
        controller._output_sum = float(self.output_sum[lane])

    def read_lane(self, lane: LaneIndex, controller: DiscretePIController) -> None:
        """Copy a scalar controller's state into one lane."""
        self.output[lane] = controller.output
        self.previous_error[lane] = controller._previous_error
        self.window_steps[lane] = controller._steps
        self.output_sum[lane] = controller._output_sum
