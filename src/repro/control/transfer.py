"""Rational transfer functions in the continuous (s) or discrete (z) domain.

A :class:`TransferFunction` is a ratio of two polynomials with real
coefficients, stored in descending powers (numpy's polynomial convention).
It supports the algebra needed for loop analysis — series/parallel
composition and the standard negative-feedback closure — plus pole/zero
extraction and pointwise evaluation.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

Number = Union[int, float, complex]

#: Valid domains for a transfer function.
CONTINUOUS = "s"
DISCRETE = "z"


def _trim(coeffs: np.ndarray) -> np.ndarray:
    """Strip leading zero coefficients, keeping at least one coefficient."""
    nz = np.flatnonzero(np.abs(coeffs) > 0)
    if nz.size == 0:
        return coeffs[-1:]
    return coeffs[nz[0]:]


class TransferFunction:
    """A rational transfer function ``num / den``.

    Parameters
    ----------
    num, den:
        Polynomial coefficients in descending powers of the domain
        variable.
    domain:
        ``"s"`` for continuous time, ``"z"`` for discrete time.
    dt:
        Sample period; required when ``domain == "z"``.
    """

    def __init__(
        self,
        num: Sequence[float],
        den: Sequence[float],
        domain: str = CONTINUOUS,
        dt: float = 0.0,
    ):
        """Validate, trim and normalise the coefficient arrays."""
        if domain not in (CONTINUOUS, DISCRETE):
            raise ValueError(f"domain must be 's' or 'z', got {domain!r}")
        if domain == DISCRETE and not dt > 0:
            raise ValueError("discrete transfer functions require dt > 0")
        self.num = _trim(np.asarray(num, dtype=float))
        self.den = _trim(np.asarray(den, dtype=float))
        if not np.any(self.den):
            raise ValueError("denominator must not be identically zero")
        self.domain = domain
        self.dt = float(dt) if domain == DISCRETE else 0.0
        # Normalize so the leading denominator coefficient is 1 (monic),
        # which makes comparisons and pole extraction well conditioned.
        lead = self.den[0]
        self.num = self.num / lead
        self.den = self.den / lead

    # -- algebra ----------------------------------------------------------

    def _check_compatible(self, other: "TransferFunction") -> None:
        if self.domain != other.domain:
            raise ValueError("cannot combine s-domain and z-domain systems")
        if self.domain == DISCRETE and not np.isclose(self.dt, other.dt):
            raise ValueError("cannot combine systems with different sample periods")

    def __mul__(self, other: Union["TransferFunction", Number]) -> "TransferFunction":
        """Series composition (or scalar gain when ``other`` is a number)."""
        if isinstance(other, (int, float)):
            return TransferFunction(self.num * other, self.den, self.domain, self.dt)
        self._check_compatible(other)
        return TransferFunction(
            np.polymul(self.num, other.num),
            np.polymul(self.den, other.den),
            self.domain,
            self.dt,
        )

    __rmul__ = __mul__

    def __add__(self, other: Union["TransferFunction", Number]) -> "TransferFunction":
        """Parallel composition over a common denominator."""
        if isinstance(other, (int, float)):
            other = TransferFunction([float(other)], [1.0], self.domain, self.dt)
        self._check_compatible(other)
        num = np.polyadd(
            np.polymul(self.num, other.den), np.polymul(other.num, self.den)
        )
        den = np.polymul(self.den, other.den)
        return TransferFunction(num, den, self.domain, self.dt)

    __radd__ = __add__

    def feedback(self, other: "TransferFunction" = None) -> "TransferFunction":
        """Close a negative-feedback loop around this system.

        With unity feedback (``other is None``) the result is
        ``G / (1 + G)``; otherwise ``G / (1 + G*H)``.
        """
        if other is None:
            other = TransferFunction([1.0], [1.0], self.domain, self.dt)
        self._check_compatible(other)
        num = np.polymul(self.num, other.den)
        den = np.polyadd(
            np.polymul(self.den, other.den), np.polymul(self.num, other.num)
        )
        return TransferFunction(num, den, self.domain, self.dt)

    # -- analysis ----------------------------------------------------------

    def poles(self) -> np.ndarray:
        """Roots of the denominator polynomial."""
        if self.den.size < 2:
            return np.array([], dtype=complex)
        return np.roots(self.den)

    def zeros(self) -> np.ndarray:
        """Roots of the numerator polynomial."""
        if self.num.size < 2:
            return np.array([], dtype=complex)
        return np.roots(self.num)

    def __call__(self, point: Number) -> complex:
        """Evaluate the transfer function at a complex point."""
        return complex(np.polyval(self.num, point) / np.polyval(self.den, point))

    def dc_gain(self) -> float:
        """Gain at zero frequency (``s = 0`` or ``z = 1``)."""
        at = 0.0 if self.domain == CONTINUOUS else 1.0
        return float(np.real(self(at)))

    def __repr__(self) -> str:
        """Round-trippable constructor-style representation."""
        return (
            f"TransferFunction(num={self.num.tolist()}, den={self.den.tolist()}, "
            f"domain={self.domain!r}"
            + (f", dt={self.dt}" if self.domain == DISCRETE else "")
            + ")"
        )


def pi_transfer_function(kp: float, ki: float) -> TransferFunction:
    """The continuous PI controller ``G(s) = Kp + Ki / s`` from the paper."""
    return TransferFunction([kp, ki], [1.0, 0.0], CONTINUOUS)


def first_order_plant(gain: float, tau: float) -> TransferFunction:
    """A first-order lag ``K / (tau*s + 1)`` (thermal-plant approximation)."""
    if not tau > 0:
        raise ValueError(f"tau must be positive, got {tau}")
    return TransferFunction([gain], [tau, 1.0], CONTINUOUS)
