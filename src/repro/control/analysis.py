"""Closed-loop step-response analysis against a first-order thermal plant.

The paper reports MATLAB tests "similar to [Skadron et al. HPCA'02]" to
determine settling time and stability for typical thermal fluctuations.
This module provides the equivalent: a lumped first-order thermal plant
(power step -> exponential temperature rise) simulated in closed loop with
the discrete PI controller, plus settling-time and overshoot metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.pi import DiscretePIController, PIDesign


@dataclass(frozen=True)
class FirstOrderThermalPlant:
    """Lumped thermal plant: one RC pole from actuator input to hotspot.

    ``gain`` is the steady-state temperature rise above ambient at full
    power (frequency scale 1.0 with cubic power scaling), ``tau`` the
    thermal time constant in seconds, and ``ambient`` the baseline
    temperature. The plant maps a frequency scale factor ``u`` to an
    equilibrium temperature ``ambient + gain * u**3`` and relaxes toward
    it exponentially.
    """

    gain: float
    tau: float
    ambient: float = 45.0
    power_exponent: float = 3.0

    def equilibrium(self, scale: float) -> float:
        """Steady-state temperature at a constant frequency scale."""
        return self.ambient + self.gain * scale ** self.power_exponent

    def advance(self, temperature: float, scale: float, dt: float) -> float:
        """One explicit step of the first-order relaxation."""
        target = self.equilibrium(scale)
        alpha = 1.0 - np.exp(-dt / self.tau)
        return temperature + (target - temperature) * alpha


@dataclass
class StepResponse:
    """Time series produced by :func:`closed_loop_step_response`."""

    times: np.ndarray
    temperatures: np.ndarray
    outputs: np.ndarray
    setpoint: float

    @property
    def final_temperature(self) -> float:
        """Temperature at the end of the simulated horizon."""
        return float(self.temperatures[-1])

    @property
    def max_temperature(self) -> float:
        """Peak temperature over the horizon."""
        return float(self.temperatures.max())

    @property
    def overshoot(self) -> float:
        """Degrees by which the response exceeded the setpoint (>= 0)."""
        return max(0.0, self.max_temperature - self.setpoint)


def closed_loop_step_response(
    design: PIDesign,
    plant: FirstOrderThermalPlant,
    setpoint: float,
    horizon: float,
    initial_temperature: float = None,
) -> StepResponse:
    """Simulate the PI controller regulating the plant from a cold start.

    The scenario mirrors a thermal step: the plant starts at ambient (or
    ``initial_temperature``), the controller starts at full output, and a
    hot workload (equilibrium above the setpoint at full speed) begins
    executing at t = 0.
    """
    if initial_temperature is None:
        initial_temperature = plant.ambient
    n = max(2, int(round(horizon / design.dt)))
    controller = DiscretePIController(design, setpoint=setpoint)
    times = np.arange(n) * design.dt
    temperatures = np.empty(n)
    outputs = np.empty(n)
    temperature = float(initial_temperature)
    for i in range(n):
        scale = controller.step(temperature, time=float(times[i]))
        temperature = plant.advance(temperature, scale, design.dt)
        temperatures[i] = temperature
        outputs[i] = scale
    return StepResponse(
        times=times, temperatures=temperatures, outputs=outputs, setpoint=setpoint
    )


def settling_time(
    response: StepResponse, band: float = 0.5
) -> float:
    """Time after which the temperature stays within ``band`` of target.

    The target is the setpoint, or the final value if the setpoint is
    unreachable. Returns ``inf`` if the response never settles within
    the horizon.
    """
    reference = response.setpoint
    if abs(response.final_temperature - response.setpoint) > band:
        reference = response.final_temperature
    inside = np.abs(response.temperatures - reference) <= band
    if not inside[-1]:
        return float("inf")
    # Index of the last sample outside the band.
    outside = np.flatnonzero(~inside)
    if outside.size == 0:
        return 0.0
    return float(response.times[outside[-1] + 1])
