"""Continuous-to-discrete conversion (MATLAB's ``c2d`` in the paper).

Three methods are provided:

* ``"euler"`` — forward Euler, the substitution ``s -> (z - 1) / Ts``.
  Applied to the paper's PI controller at the trace sample period this
  reproduces the published discrete control law exactly (coefficients
  0.0107 and 0.003796/0.003797 — the paper quotes "28 us" but the actual
  interval is 100,000 cycles at 3.6 GHz = 27.78 us).
* ``"tustin"`` — the bilinear transform ``s -> (2/Ts) * (z-1)/(z+1)``.
* ``"zoh"`` — exact zero-order-hold equivalence via the matrix
  exponential of the controllable-canonical state-space realization.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.linalg import expm

from repro.control.transfer import CONTINUOUS, DISCRETE, TransferFunction


def _substitute(tf: TransferFunction, sub_num: np.ndarray, sub_den: np.ndarray,
                dt: float) -> TransferFunction:
    """Substitute ``s = sub_num(z)/sub_den(z)`` into a rational function.

    For ``G(s) = sum(a_i s^i) / sum(b_i s^i)`` of degree ``n`` in the
    denominator, multiply through by ``sub_den**n`` to clear fractions.
    """
    n = max(tf.num.size, tf.den.size) - 1

    def transform(coeffs: np.ndarray) -> np.ndarray:
        # coeffs are descending in s: coeffs[0] * s^(m) + ...
        m = coeffs.size - 1
        result = np.zeros(1)
        for i, c in enumerate(coeffs):
            power = m - i  # exponent of s for this coefficient
            term = np.array([c])
            for _ in range(power):
                term = np.polymul(term, sub_num)
            for _ in range(n - power):
                term = np.polymul(term, sub_den)
            result = np.polyadd(result, term)
        return result

    return TransferFunction(transform(tf.num), transform(tf.den), DISCRETE, dt)


def _state_space(tf: TransferFunction) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Controllable-canonical state-space realization of a proper TF.

    Returns ``(A, B, C, D)`` with ``G(s) = C (sI - A)^-1 B + D``.
    """
    num = tf.num
    den = tf.den  # monic by construction
    n = den.size - 1
    if num.size > den.size:
        raise ValueError("transfer function must be proper for ZOH conversion")
    # Pad numerator to the same length as the denominator.
    num_padded = np.concatenate([np.zeros(den.size - num.size), num])
    d = num_padded[0]
    # Residual numerator after removing the direct-feedthrough term.
    num_res = num_padded[1:] - d * den[1:]
    # Companion form: top row carries -den coefficients.
    a = np.zeros((n, n))
    a[0, :] = -den[1:]
    if n > 1:
        a[1:, :-1] = np.eye(n - 1)
    b = np.zeros((n, 1))
    b[0, 0] = 1.0
    c = num_res.reshape(1, n)
    return a, b, c, float(d)


def c2d(tf: TransferFunction, dt: float, method: str = "euler") -> TransferFunction:
    """Convert a continuous transfer function to discrete time.

    Parameters
    ----------
    tf:
        A continuous-domain :class:`TransferFunction`.
    dt:
        Sample period in seconds.
    method:
        ``"euler"``, ``"tustin"``, or ``"zoh"``.
    """
    if tf.domain != CONTINUOUS:
        raise ValueError("c2d expects a continuous-domain transfer function")
    if not dt > 0:
        raise ValueError(f"dt must be positive, got {dt}")

    if method == "euler":
        return _substitute(tf, np.array([1.0, -1.0]) / dt, np.array([1.0]), dt)
    if method == "tustin":
        return _substitute(
            tf, np.array([2.0, -2.0]) / dt, np.array([1.0, 1.0]), dt
        )
    if method == "zoh":
        return _zoh(tf, dt)
    raise ValueError(f"unknown c2d method {method!r}")


def _zoh(tf: TransferFunction, dt: float) -> TransferFunction:
    """Exact ZOH discretization via the augmented matrix exponential."""
    a, b, c, d = _state_space(tf)
    n = a.shape[0]
    if n == 0:
        return TransferFunction(tf.num.copy(), tf.den.copy(), DISCRETE, dt)
    # Van Loan's method: exp([[A, B], [0, 0]] * dt) packs Ad and Bd.
    block = np.zeros((n + 1, n + 1))
    block[:n, :n] = a * dt
    block[:n, n:] = b * dt
    exp_block = expm(block)
    ad = exp_block[:n, :n]
    bd = exp_block[:n, n:]
    # Convert (Ad, Bd, C, D) back to a transfer function:
    # G(z) = C adj(zI - Ad) Bd / det(zI - Ad) + D
    den = np.poly(ad)
    # Numerator via the identity num(z) = det(zI - Ad + Bd C) - det(zI - Ad)
    # (valid for single-input single-output systems), plus D * den.
    num = np.poly(ad - bd @ c) - den
    num = np.polyadd(num, d * den)
    return TransferFunction(num, den, DISCRETE, dt)


def discretize_pi_increments(
    kp: float, ki: float, dt: float, method: str = "euler"
) -> Tuple[float, float]:
    """Discrete incremental-form coefficients of the PI controller.

    Returns ``(b0, b1)`` such that the update law is::

        u[n] = u[n-1] + b0 * e[n] + b1 * e[n-1]

    For forward Euler: ``b0 = Kp`` and ``b1 = Ki*dt - Kp``. With the
    paper's sign convention (error = measured - target, output = frequency
    scale), the applied law negates both terms; see
    :class:`repro.control.pi.DiscretePIController`.
    """
    tf = c2d(
        TransferFunction([kp, ki], [1.0, 0.0]),
        dt,
        method,
    )
    num = tf.num
    den = tf.den
    # Expect a first-order system with den = [1, -1] (the integrator pole
    # maps to z = 1 under all three methods).
    if den.size != 2 or not np.isclose(den[1], -1.0, atol=1e-9):
        raise ValueError(f"unexpected discrete PI denominator: {den}")
    if num.size == 1:
        return float(num[0]), 0.0
    return float(num[0]), float(num[1])
