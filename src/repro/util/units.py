"""Physical units and conversions used throughout the simulator.

The simulator works internally in SI units: seconds, watts, joules, and
degrees Celsius for temperatures (thermal RC arithmetic only ever uses
temperature *differences*, so Celsius and Kelvin are interchangeable there;
the explicit conversion helpers exist for the few absolute-temperature
formulas, e.g. the leakage model).
"""

from __future__ import annotations

#: Offset between the Celsius and Kelvin scales.
CELSIUS_TO_KELVIN = 273.15

#: One microsecond, in seconds.
MICROSECOND = 1e-6

#: One millisecond, in seconds.
MILLISECOND = 1e-3

#: One nanosecond, in seconds.
NANOSECOND = 1e-9

#: Meters per millimeter (floorplans are specified in mm for readability).
MILLIMETER = 1e-3


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return temp_c + CELSIUS_TO_KELVIN


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return temp_k - CELSIUS_TO_KELVIN


def mm2_to_m2(area_mm2: float) -> float:
    """Convert an area from square millimeters to square meters."""
    return area_mm2 * MILLIMETER * MILLIMETER


def mm_to_m(length_mm: float) -> float:
    """Convert a length from millimeters to meters."""
    return length_mm * MILLIMETER
