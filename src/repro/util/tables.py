"""Plain-text table rendering for the experiment harness.

Each experiment module (``repro.experiments.tableN`` / ``figureN``) returns
structured rows and uses :func:`render_table` to print them in the same
layout as the corresponding table in the paper, so a benchmark run's output
can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _format_cell(value) -> str:
    """Format a single table cell."""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    formatted: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in formatted)
    return "\n".join(lines)


def render_grid(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Sequence[Sequence],
    corner: str = "",
    title: str = "",
) -> str:
    """Render a labelled 2-D grid (used for the Table 8 policy summary)."""
    headers = [corner] + list(col_labels)
    rows = [[label] + list(row) for label, row in zip(row_labels, cells)]
    return render_table(headers, rows, title=title)
