"""Terminal-friendly charts.

The paper's figures are bar charts and time series; the experiment
modules render their *data* as tables, and these helpers add a visual
layer that works anywhere a monospace font does: horizontal bar charts
for Figure 3/7-style comparisons and multi-series line sketches for
Figure 5-style traces.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

#: Eighth-block characters used for sub-character bar resolution.
_BLOCKS = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")

#: Characters used by sparklines, coarsest to finest.
_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line sketch of a series using block characters.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot sparkline an empty series")
    if width is not None and width > 0 and data.size > width:
        # Downsample by averaging bins.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array(
            [data[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(data.min()), float(data.max())
    if hi - lo < 1e-12:
        return _SPARKS[0] * data.size
    scaled = (data - lo) / (hi - lo) * (len(_SPARKS) - 1)
    return "".join(_SPARKS[int(round(v))] for v in scaled)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    reference: Optional[float] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart with aligned labels and value annotations.

    ``reference`` draws a marker column at that value (e.g. the baseline
    1.0 in a normalised-throughput chart).
    """
    labels = [str(label) for label in labels]
    data = [float(v) for v in values]
    if len(labels) != len(data):
        raise ValueError("labels and values must have the same length")
    if not data:
        raise ValueError("nothing to chart")
    if width < 8:
        raise ValueError(f"width too small: {width}")
    top = max(max(data), reference or 0.0, 1e-12)
    label_width = max(len(label) for label in labels)
    ref_col = int(round((reference / top) * width)) if reference else None

    lines = []
    for label, value in zip(labels, data):
        filled = value / top * width
        whole = int(filled)
        frac = int(round((filled - whole) * 8))
        if frac == 8:
            whole, frac = whole + 1, 0
        bar = "█" * whole + _BLOCKS[frac]
        bar = bar.ljust(width)
        if ref_col is not None and 0 <= ref_col < width and bar[ref_col] == " ":
            bar = bar[:ref_col] + "│" + bar[ref_col + 1:]
        lines.append(
            f"{label.rjust(label_width)} ┤{bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def multi_series(
    times: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    time_unit: str = "",
) -> str:
    """Several aligned sparklines sharing a time axis, with ranges.

    Used for Figure 5-style views: one row per signal, a common time
    ruler underneath.
    """
    times = np.asarray(list(times), dtype=float)
    if times.size == 0:
        raise ValueError("empty time axis")
    name_width = max(len(n) for n in series) if series else 0
    if not series:
        raise ValueError("no series given")
    lines = []
    for name, values in series.items():
        data = np.asarray(list(values), dtype=float)
        if data.shape != times.shape:
            raise ValueError(
                f"series {name!r} length {data.size} != time axis {times.size}"
            )
        spark = sparkline(data, width=width)
        lines.append(
            f"{name.rjust(name_width)} {spark} "
            f"[{data.min():.2f}, {data.max():.2f}]"
        )
    ruler = (
        f"{' ' * name_width} {str(round(times[0], 2)).ljust(width // 2)}"
        f"{str(round(times[-1], 2)).rjust(width - width // 2)} {time_unit}"
    )
    lines.append(ruler)
    return "\n".join(lines)


def span_bar(
    t0: float,
    t1: float,
    start: float,
    end: float,
    width: int = 48,
) -> str:
    """One waterfall row: a bar for ``[start, end]`` on the ``[t0, t1]`` axis.

    Returns exactly ``width`` characters. Zero-duration (or sub-column)
    intervals still render one ``▏`` tick so every span stays visible in
    a trace waterfall; intervals are clamped to the axis.
    """
    if width < 1:
        raise ValueError(f"width too small: {width}")
    if not t1 > t0:
        # Degenerate axis (single instant): a full-width tick row.
        return "▏".ljust(width)
    span = t1 - t0
    a = max(0.0, min(1.0, (start - t0) / span))
    b = max(0.0, min(1.0, (end - t0) / span))
    col_a = min(width - 1, int(a * width))
    col_b = min(width - 1, int(b * width))
    if col_b <= col_a:
        return (" " * col_a + "▏").ljust(width)
    return (" " * col_a + "█" * (col_b - col_a)).ljust(width)


def timeline_markers(
    t0: float,
    t1: float,
    mark_times: Sequence[float],
    width: int = 60,
    mark: str = "┆",
) -> str:
    """A one-line annotation track: ``mark`` at each event time.

    Aligns with the sparkline columns of :func:`multi_series` (same
    ``width``), so run events — migrations, trips, injected faults — can
    be overlaid under the temperature traces. Times outside ``[t0, t1]``
    are ignored; coincident events share one column.
    """
    if width < 1:
        raise ValueError(f"width too small: {width}")
    if not t1 > t0:
        raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
    row = [" "] * width
    for t in mark_times:
        if t0 <= t <= t1:
            col = min(width - 1, int((t - t0) / (t1 - t0) * width))
            row[col] = mark
    return "".join(row)
