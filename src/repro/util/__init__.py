"""Shared utilities: physical units, deterministic RNG streams, validation,
and plain-text table rendering used by the experiment harness.

These helpers are deliberately small and dependency-free so that every
other subpackage (``thermal``, ``uarch``, ``core``, ``sim``) can rely on
them without import cycles.
"""

from repro.util.rng import RngStream, derive_seed
from repro.util.tables import render_table
from repro.util.units import (
    CELSIUS_TO_KELVIN,
    MICROSECOND,
    MILLISECOND,
    celsius_to_kelvin,
    kelvin_to_celsius,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_probability,
)

__all__ = [
    "CELSIUS_TO_KELVIN",
    "MICROSECOND",
    "MILLISECOND",
    "RngStream",
    "celsius_to_kelvin",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_probability",
    "derive_seed",
    "kelvin_to_celsius",
    "render_table",
]
