"""Argument-validation helpers.

The simulator's public entry points validate their inputs eagerly so that
configuration mistakes fail at construction time with a clear message
rather than surfacing later as a cryptic numerical error.
"""

from __future__ import annotations

import math
from typing import Optional


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_finite(value: float, name: str) -> float:
    """Require ``value`` to be a finite number; return it for chaining."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    inclusive: bool = True,
) -> float:
    """Require ``value`` to lie within ``[low, high]`` (or the open interval).

    Either bound may be ``None`` to leave that side unconstrained.
    """
    if low is not None:
        ok = value >= low if inclusive else value > low
        if not ok:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
    if high is not None:
        ok = value <= high if inclusive else value < high
        if not ok:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``value`` to be a probability in ``[0, 1]``."""
    return check_in_range(value, name, 0.0, 1.0)
