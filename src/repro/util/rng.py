"""Deterministic, named random-number streams.

Every stochastic element in the simulator (benchmark phase noise, sensor
noise, interval-model variation) draws from a stream derived from a root
seed plus a stable string label. Two properties follow:

* re-running any experiment with the same seed reproduces it bit-for-bit;
* adding a new consumer of randomness does not perturb existing streams,
  because each stream is independently derived rather than shared.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed used by all experiments unless explicitly overridden.
DEFAULT_ROOT_SEED = 20060617  # ISCA'06 conference date


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive a child seed from ``root_seed`` and a sequence of labels.

    The derivation hashes the root seed together with the labels so that
    distinct label paths give statistically independent streams.

    >>> derive_seed(1, "a") != derive_seed(1, "b")
    True
    >>> derive_seed(1, "a") == derive_seed(1, "a")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for label in labels:
        digest.update(b"/")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


class RngStream:
    """A named deterministic random stream.

    Thin wrapper over :class:`numpy.random.Generator` that records its
    provenance (root seed and label path) for debuggability and supports
    deriving child streams.
    """

    def __init__(self, root_seed: int = DEFAULT_ROOT_SEED, *labels: str):
        self.root_seed = int(root_seed)
        self.labels = tuple(labels)
        self._generator = np.random.default_rng(derive_seed(root_seed, *labels))

    def child(self, *labels: str) -> "RngStream":
        """Return an independent stream extending this stream's label path."""
        return RngStream(self.root_seed, *(self.labels + labels))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        """Draw uniform samples in ``[low, high)``."""
        return self._generator.uniform(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Draw normal samples."""
        return self._generator.normal(loc, scale, size)

    def integers(self, low: int, high: int, size=None):
        """Draw integer samples in ``[low, high)``."""
        return self._generator.integers(low, high, size)

    def choice(self, items, size=None, replace: bool = True):
        """Draw from ``items`` with or without replacement."""
        return self._generator.choice(items, size=size, replace=replace)

    def __repr__(self) -> str:
        path = "/".join(self.labels) or "<root>"
        return f"RngStream(seed={self.root_seed}, path={path!r})"
