"""Load generator and latency benchmark for the serve subsystem.

Fires hundreds-to-thousands of concurrent ``POST /run`` requests at one
server process — by default an in-thread server started just for the
measurement, or an already-running one via ``--url`` — in two phases:

* **cold**: every request is a *unique* sweep point (distinct
  ``threshold_c``), so each one simulates and populates the shared
  result cache;
* **warm**: many more requests drawn round-robin from the same point
  set, so every one is served from the cache. Warm latency is the
  service overhead proper — HTTP parse, queueing, cache lookup,
  serialisation — which is what the regression gate bounds.
* **warm-traced** (honesty contrast, reported but never gated): a third
  pass over the same cache-hot points with client tracing on — every
  request carries a ``traceparent`` header, so the server records the
  full span set per job. The artifact's ``warm_traced`` stats and
  ``tracing_overhead_p50_ms`` delta track what tracing costs without
  tightening the warm-p50 gate.

The artifact (``BENCH_serve.json``, schema :data:`SCHEMA`) records
per-phase latency percentiles and throughput; ``repro serve-bench
--check BENCH_serve.json`` re-measures and fails on regression, and
always enforces the absolute bar ``warm p50 <``
:data:`WARM_P50_LIMIT_MS` milliseconds (on the *untraced* warm phase
only).
"""

from __future__ import annotations

import concurrent.futures
import json
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.obs.exporters import parse_prometheus_text

#: Current ``BENCH_serve.json`` schema identifier.
SCHEMA = "repro-bench-serve/1"

#: Absolute acceptance bar: warm-cache p50 must stay under this (ms).
WARM_P50_LIMIT_MS = 20.0

#: Regression gate: warm p50 may grow at most this factor over the
#: committed baseline before ``--check`` fails. Latency on shared CI
#: runners is far noisier than throughput, hence the generous factor.
DEFAULT_LATENCY_FACTOR = 3.0

#: Default number of unique sweep points (= cold-phase requests).
DEFAULT_UNIQUE = 48

#: Default warm-phase request count.
DEFAULT_WARM_REQUESTS = 1024

#: Default concurrent client threads (each with its own connection).
#: Eight keeps the single event loop queue-light, so warm p50 measures
#: service overhead rather than client-side queueing.
DEFAULT_CONCURRENCY = 8

#: Silicon time per simulated point: 72 engine steps, the short
#: screening-run shape characterization sweeps are made of.
DEFAULT_DURATION_S = 0.002


def request_body(index: int, duration_s: float = DEFAULT_DURATION_S) -> Dict:
    """The ``index``-th unique load-generator request.

    Distinct ``threshold_c`` per index makes every request a distinct
    cache key while keeping the simulation cost identical.
    """
    return {
        "workload": "workload7",
        "config": {
            "duration_s": duration_s,
            "threshold_c": 80.0 + 0.125 * (index % 160),
            "warm_start_fraction": 0.5,
        },
    }


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    rank = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[rank]


def _phase_stats(latencies_s: List[float], wall_s: float) -> Dict:
    """Summary statistics for one phase's request latencies."""
    ordered = sorted(latencies_s)
    to_ms = 1e3
    return {
        "requests": len(ordered),
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(ordered) / wall_s, 1) if wall_s else None,
        "p50_ms": round(percentile(ordered, 0.50) * to_ms, 3),
        "p90_ms": round(percentile(ordered, 0.90) * to_ms, 3),
        "p99_ms": round(percentile(ordered, 0.99) * to_ms, 3),
        "max_ms": round(ordered[-1] * to_ms, 3),
        "mean_ms": round(sum(ordered) / len(ordered) * to_ms, 3),
    }


def _fire(url: str, bodies: Sequence[Dict], concurrency: int,
          timeout_s: float, trace: bool = False) -> List[float]:
    """Send every body as ``POST /run``; returns per-request latencies.

    ``concurrency`` worker threads each hold a private keep-alive
    :class:`~repro.serve.client.ServeClient` — the thread pool *is* the
    simulated caller population. With ``trace=True`` every request
    carries a ``traceparent`` header (one fresh trace per request),
    which is the traced-contrast phase's whole difference.
    """
    from repro.serve.client import ServeClient

    import threading

    local = threading.local()
    attr = "client_traced" if trace else "client"

    def one(body: Dict) -> float:
        client = getattr(local, attr, None)
        if client is None:
            client = ServeClient(url, timeout_s=timeout_s, trace=trace)
            setattr(local, attr, client)
        start = time.perf_counter()
        payload = client.run(body)
        elapsed = time.perf_counter() - start
        if payload.get("state") != "done":
            raise RuntimeError(f"request failed: {payload}")
        return elapsed

    with concurrent.futures.ThreadPoolExecutor(
        max_workers=concurrency, thread_name_prefix="loadgen"
    ) as pool:
        return list(pool.map(one, bodies))


def run_load(
    url: Optional[str] = None,
    unique: int = DEFAULT_UNIQUE,
    warm_requests: int = DEFAULT_WARM_REQUESTS,
    concurrency: int = DEFAULT_CONCURRENCY,
    duration_s: float = DEFAULT_DURATION_S,
    serve_workers: int = 4,
    request_timeout_s: float = 300.0,
    traced_requests: Optional[int] = None,
) -> Dict:
    """Run the cold/warm load campaign; returns the artifact payload.

    With ``url`` ``None`` a private server (ephemeral port, fresh
    in-memory registry, the ambient cache directory) is started on a
    background thread and drained afterwards — the whole campaign then
    measures exactly one server process end to end.

    ``traced_requests`` sizes the traced-contrast phase (default: a
    quarter of ``warm_requests``, at least 1; ``0`` disables it). It
    runs *after* the metrics scrape, so the artifact's
    ``server_metrics``, ``total_requests`` and every gated statistic
    describe exactly the untraced campaign the baselines were built on.
    """
    if unique < 1 or warm_requests < 1 or concurrency < 1:
        raise ValueError("unique, warm_requests and concurrency must be >= 1")
    if traced_requests is None:
        traced_requests = max(1, warm_requests // 4)
    if traced_requests < 0:
        raise ValueError(f"traced_requests must be >= 0: {traced_requests}")
    handle = None
    if url is None:
        from repro.serve.server import ServeConfig, start_in_thread

        handle = start_in_thread(
            ServeConfig(port=0, workers=serve_workers,
                        queue_size=max(256, unique + warm_requests))
        )
        url = handle.url
    try:
        cold_bodies = [request_body(i, duration_s) for i in range(unique)]
        warm_bodies = [
            request_body(i % unique, duration_s)
            for i in range(warm_requests)
        ]

        start = time.perf_counter()
        cold = _fire(url, cold_bodies, concurrency, request_timeout_s)
        cold_wall = time.perf_counter() - start

        start = time.perf_counter()
        warm = _fire(url, warm_bodies, concurrency, request_timeout_s)
        warm_wall = time.perf_counter() - start

        from repro.serve.client import ServeClient

        with ServeClient(url) as client:
            census = client.healthz()
            metrics = parse_prometheus_text(client.metrics_text())

        traced = []
        traced_wall = 0.0
        if traced_requests:
            traced_bodies = [
                request_body(i % unique, duration_s)
                for i in range(traced_requests)
            ]
            start = time.perf_counter()
            traced = _fire(url, traced_bodies, concurrency,
                           request_timeout_s, trace=True)
            traced_wall = time.perf_counter() - start
    finally:
        if handle is not None:
            handle.stop()

    served = {
        series: value
        for series, value in sorted(metrics.items())
        if series.startswith(("serve_", "cache_"))
        and "_bucket" not in series
        and "_seconds" not in series
    }
    payload = {
        "schema": SCHEMA,
        "suite": "serve-load",
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "load": {
            "unique_points": unique,
            "warm_requests": warm_requests,
            "concurrency": concurrency,
            "duration_s": duration_s,
            "serve_workers": census.get("workers"),
            "traced_requests": traced_requests,
        },
        "total_requests": len(cold) + len(warm),
        "cold": _phase_stats(cold, cold_wall),
        "warm": _phase_stats(warm, warm_wall),
        "server_metrics": served,
    }
    if traced:
        warm_traced = _phase_stats(traced, traced_wall)
        payload["warm_traced"] = warm_traced
        payload["tracing_overhead_p50_ms"] = round(
            warm_traced["p50_ms"] - payload["warm"]["p50_ms"], 3
        )
    return payload


def load_bench_json(path: str) -> Dict:
    """Load and schema-check a ``BENCH_serve.json`` payload."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got "
            f"{payload.get('schema')!r}"
        )
    return payload


def write_bench_json(payload: Dict, path: str) -> str:
    """Write an artifact payload as pretty-printed JSON; returns ``path``."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def compare_to_baseline(
    current: Dict,
    baseline: Optional[Dict],
    latency_factor: float = DEFAULT_LATENCY_FACTOR,
) -> List[str]:
    """Gate ``current`` against the absolute bar and a baseline.

    Always enforces ``warm p50 <`` :data:`WARM_P50_LIMIT_MS`; with a
    ``baseline`` additionally fails when warm p50 grew by more than
    ``latency_factor`` over it.

    Returns:
        Human-readable problem messages; empty means the gate passes.
    """
    if latency_factor <= 1.0:
        raise ValueError(f"latency_factor must be > 1: {latency_factor}")
    problems: List[str] = []
    warm_p50 = current["warm"]["p50_ms"]
    if warm_p50 >= WARM_P50_LIMIT_MS:
        problems.append(
            f"warm p50 {warm_p50:.3f} ms breaches the absolute "
            f"{WARM_P50_LIMIT_MS:g} ms bar"
        )
    if baseline is not None:
        base_p50 = baseline["warm"]["p50_ms"]
        ceiling = base_p50 * latency_factor
        if warm_p50 > ceiling:
            problems.append(
                f"warm p50 {warm_p50:.3f} ms is more than "
                f"{latency_factor:g}x the baseline {base_p50:.3f} ms "
                f"(ceiling {ceiling:.3f} ms)"
            )
    return problems


def render(payload: Dict) -> str:
    """Multi-line human summary of a load-campaign artifact."""
    lines = [
        f"serve load: {payload['total_requests']} requests "
        f"({payload['load']['unique_points']} unique points, "
        f"{payload['load']['concurrency']} concurrent clients)"
    ]
    phases = ["cold", "warm"]
    if "warm_traced" in payload:
        phases.append("warm_traced")
    for phase in phases:
        s = payload[phase]
        lines.append(
            f"  {phase:11s} {s['requests']:>5d} req  "
            f"p50 {s['p50_ms']:>9.3f} ms  p90 {s['p90_ms']:>9.3f} ms  "
            f"p99 {s['p99_ms']:>9.3f} ms  "
            f"{s['throughput_rps']:>8.1f} req/s"
        )
    if "tracing_overhead_p50_ms" in payload:
        lines.append(
            f"  tracing overhead (p50, reported only): "
            f"{payload['tracing_overhead_p50_ms']:+.3f} ms"
        )
    return "\n".join(lines)


def add_serve_bench_arguments(parser) -> None:
    """Install the ``serve-bench`` flags on an argparse (sub)parser."""
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the JSON artifact (default: BENCH_serve.json unless "
             "--check is given)",
    )
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="target an already-running server instead of starting one "
             "in-process",
    )
    parser.add_argument(
        "--unique", type=int, default=DEFAULT_UNIQUE, metavar="N",
        help=f"unique sweep points = cold-phase requests "
             f"(default: {DEFAULT_UNIQUE})",
    )
    parser.add_argument(
        "--warm-requests", type=int, default=DEFAULT_WARM_REQUESTS,
        metavar="N",
        help=f"warm-phase (cache-hit) requests "
             f"(default: {DEFAULT_WARM_REQUESTS})",
    )
    parser.add_argument(
        "--concurrency", type=int, default=DEFAULT_CONCURRENCY, metavar="N",
        help=f"concurrent client threads (default: {DEFAULT_CONCURRENCY})",
    )
    parser.add_argument(
        "--duration-s", type=float, default=DEFAULT_DURATION_S,
        metavar="SECONDS",
        help="silicon time per simulated point "
             f"(default: {DEFAULT_DURATION_S:g})",
    )
    parser.add_argument(
        "--serve-workers", type=int, default=4, metavar="N",
        help="worker count of the in-process server (ignored with --url; "
             "default: 4)",
    )
    parser.add_argument(
        "--traced-requests", type=int, default=None, metavar="N",
        help="traced-contrast phase size (reported, never gated; "
             "default: warm-requests // 4, 0 disables)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="gate against a committed BENCH_serve.json (and the "
             f"absolute warm-p50 < {WARM_P50_LIMIT_MS:g} ms bar) instead "
             "of writing a new artifact",
    )
    parser.add_argument(
        "--latency-factor", type=float, default=DEFAULT_LATENCY_FACTOR,
        help="allowed warm-p50 growth factor over the baseline before "
             f"--check fails (default: {DEFAULT_LATENCY_FACTOR})",
    )


def run_from_args(args) -> int:
    """Execute a parsed ``serve-bench`` invocation; returns the exit code."""
    payload = run_load(
        url=args.url,
        unique=args.unique,
        warm_requests=args.warm_requests,
        concurrency=args.concurrency,
        duration_s=args.duration_s,
        serve_workers=args.serve_workers,
        traced_requests=args.traced_requests,
    )
    print(render(payload))

    if args.check:
        baseline = load_bench_json(args.check)
        problems = compare_to_baseline(
            payload, baseline, latency_factor=args.latency_factor
        )
        if problems:
            print(f"\nREGRESSION vs {args.check}:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(
            f"\nok: warm p50 {payload['warm']['p50_ms']:.3f} ms within "
            f"{args.latency_factor:g}x of {args.check} and under the "
            f"{WARM_P50_LIMIT_MS:g} ms bar"
        )
        if args.output:
            print(
                f"baseline updated -> "
                f"{write_bench_json(payload, args.output)}"
            )
        return 0

    path = write_bench_json(payload, args.output or "BENCH_serve.json")
    print(f"\nartifact written -> {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``benchmarks/serve_load.py``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve-bench",
        description="load-test a serve process and write BENCH_serve.json",
    )
    add_serve_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))
