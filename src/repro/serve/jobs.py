"""Job lifecycle and the bounded priority queue of the serve subsystem.

A :class:`Job` tracks one submitted :class:`~repro.serve.protocol.JobRequest`
through ``queued -> running -> {done, failed, cancelled, timeout}``.
The :class:`JobQueue` is a bounded max-priority heap (higher ``priority``
runs sooner; FIFO within a priority level) with asyncio-native blocking
``get`` for the worker pool and non-blocking ``put`` for the request
handler — a full queue is backpressure the HTTP layer surfaces as 503,
never an unbounded buffer.

Cancellation is cooperative and race-free by construction: a queued job
is *lazily* removed (it stays in the heap but is skipped at pop time),
a running job has its ``cancel_requested`` flag set and the worker
discards the result when the executor returns.
"""

from __future__ import annotations

import asyncio
import enum
import heapq
import itertools
import time
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.obs.tracing import (
    KIND_REQUEST,
    Span,
    TraceContext,
    finished_span,
)
from repro.serve.protocol import JobRequest


class JobState(enum.Enum):
    """Lifecycle states of a served job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT}
)


class Job:
    """One submitted request and everything observed about it since."""

    __slots__ = (
        "id", "request", "state", "submitted_at", "started_at",
        "finished_at", "payload", "error", "attempts", "cache_hits",
        "cancel_requested", "finished", "trace", "spans",
        "queue_depth_at_submit",
    )

    def __init__(self, job_id: str, request: JobRequest):
        """A freshly submitted job in the ``queued`` state."""
        self.id = job_id
        self.request = request
        self.state = JobState.QUEUED
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.payload: Optional[Dict] = None
        self.error: Optional[str] = None
        self.attempts = 0
        self.cache_hits = 0
        self.cancel_requested = False
        #: Request-span context (a child of the caller's ``traceparent``
        #: context); ``None`` for untraced submissions.
        self.trace: Optional[TraceContext] = None
        #: Finished spans accumulated by server/worker/runner stages;
        #: :meth:`finish` caps them with the root request span.
        self.spans: List[Span] = []
        #: Live queue depth observed when the job was enqueued.
        self.queue_depth_at_submit = 0
        #: Set once the job reaches a terminal state; ``/run`` and the
        #: drain path await it.
        self.finished = asyncio.Event()

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def finish(self, state: JobState, *, payload: Optional[Dict] = None,
               error: Optional[str] = None) -> None:
        """Transition to a terminal state exactly once.

        Traced jobs get their root ``request`` span appended here: it
        covers submission to terminal state, and its parent is the
        caller's client span (absent from the server-side span set, so
        parentage checkers see exactly one root).
        """
        if self.done:  # pragma: no cover - defensive; workers finish once
            return
        self.state = state
        self.payload = payload
        self.error = error
        self.finished_at = time.time()
        if self.trace is not None:
            self.spans.append(
                finished_span(
                    self.trace, self.id, KIND_REQUEST,
                    self.submitted_at, self.finished_at - self.submitted_at,
                    state=state.value,
                    priority=self.request.priority,
                )
            )
        self.finished.set()

    def status(self) -> Dict:
        """JSON-safe status document for the ``GET /jobs/<id>`` endpoint."""
        out = {
            "id": self.id,
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cache_hits": self.cache_hits,
            "cancel_requested": self.cancel_requested,
            "request": self.request.describe(),
        }
        if self.trace is not None:
            out["trace_id"] = self.trace.trace_id
        if self.error is not None:
            out["error"] = self.error
        return out


class QueueFullError(Exception):
    """The bounded queue rejected a submission; maps to HTTP 503."""


class QueueClosedError(Exception):
    """The queue is draining; new submissions are rejected (503)."""


class JobQueue:
    """Bounded max-priority queue feeding the worker pool.

    ``put`` never blocks (full -> :class:`QueueFullError`); ``get``
    awaits work and returns ``None`` once the queue is closed *and*
    empty, which is each worker's signal to exit. Higher
    ``request.priority`` pops first; equal priorities pop in submission
    order. Cancelled jobs left in the heap are skipped (and do not count
    toward the bound once cancelled).
    """

    def __init__(self, maxsize: int = 256):
        """An empty open queue holding at most ``maxsize`` live entries."""
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._heap: List = []
        self._seq = itertools.count()
        self._live = 0  # queued, non-cancelled entries
        self._closed = False
        self._waiters: List[asyncio.Future] = []

    def __len__(self) -> int:
        """Number of live (queued, non-cancelled) entries."""
        return self._live

    @property
    def closed(self) -> bool:
        """Whether the queue has stopped accepting submissions."""
        return self._closed

    def put(self, job: Job) -> None:
        """Enqueue ``job`` or raise (full / closed)."""
        if self._closed:
            raise QueueClosedError("server is draining")
        if self._live >= self.maxsize:
            raise QueueFullError(
                f"job queue is full ({self.maxsize} queued)"
            )
        heapq.heappush(
            self._heap, (-job.request.priority, next(self._seq), job)
        )
        self._live += 1
        self._wake()

    def discard(self, job: Job) -> None:
        """Account a queued job's cancellation (lazy heap removal)."""
        if self._live > 0:
            self._live -= 1
        self._wake()  # drain may be waiting on the queue to empty

    async def get(self) -> Optional[Job]:
        """The next runnable job, or ``None`` when closed and drained."""
        while True:
            while self._heap:
                _prio, _seq, job = heapq.heappop(self._heap)
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while queued; already discounted
                self._live -= 1
                return job
            if self._closed:
                return None
            future = asyncio.get_running_loop().create_future()
            self._waiters.append(future)
            try:
                await future
            finally:
                if not future.done():  # pragma: no cover - cancellation
                    future.cancel()
                if future in self._waiters:
                    self._waiters.remove(future)

    def close(self) -> None:
        """Stop accepting submissions; wake every waiting worker."""
        self._closed = True
        self._wake(everyone=True)

    def _wake(self, everyone: bool = False) -> None:
        if everyone:
            for future in self._waiters:
                if not future.done():
                    future.set_result(None)
            self._waiters.clear()
            return
        while self._waiters:
            future = self._waiters.pop(0)
            if not future.done():
                future.set_result(None)
                return


class JobStore:
    """Id-addressed registry of every job the server has seen.

    Bounded: once more than ``max_finished`` jobs have reached a
    terminal state, the oldest finished jobs are forgotten (their ids
    404 afterwards) so a long-lived server's memory stays flat. Live
    jobs are never evicted.
    """

    def __init__(self, max_finished: int = 4096):
        """An empty store retaining at most ``max_finished`` results."""
        if max_finished < 1:
            raise ValueError(f"max_finished must be >= 1: {max_finished}")
        self.max_finished = max_finished
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        """Number of retained jobs (live and finished)."""
        return len(self._jobs)

    def create(self, request: JobRequest) -> Job:
        """Mint a new job with a fresh id."""
        job = Job(f"job-{next(self._counter):06d}", request)
        self._jobs[job.id] = job
        self._prune()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job for ``job_id``, or ``None`` if unknown/forgotten."""
        return self._jobs.get(job_id)

    def states(self) -> Dict[str, int]:
        """Live census: ``{state value: count}`` over retained jobs."""
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state.value] = counts.get(job.state.value, 0) + 1
        return counts

    def _prune(self) -> None:
        finished = sum(1 for j in self._jobs.values() if j.done)
        if finished <= self.max_finished:
            return
        for job_id in [jid for jid, j in self._jobs.items() if j.done]:
            if finished <= self.max_finished:
                break
            del self._jobs[job_id]
            finished -= 1
