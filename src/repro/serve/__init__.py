"""Thermal-simulation-as-a-service: async HTTP job server and client.

``repro serve`` exposes the simulation substrate over HTTP/JSON: submit
a (sweep x workloads) job, poll it, fetch results bit-identical to a
local :class:`~repro.sim.runner.ParallelRunner` run of the same points.
See ``docs/SERVING.md`` for the endpoint reference and operational
semantics.

Modules:

* :mod:`repro.serve.protocol` — wire schema: request validation and
  result payload serialisation (transport-free pure data).
* :mod:`repro.serve.jobs` — job lifecycle, the bounded priority queue
  and the id-addressed job store.
* :mod:`repro.serve.server` — the asyncio HTTP server, worker pool,
  timeout/retry/drain machinery and CLI entry points.
* :mod:`repro.serve.client` — stdlib keep-alive HTTP client.
* :mod:`repro.serve.bench` — the cold/warm load generator behind
  ``repro serve-bench`` and ``BENCH_serve.json``.
"""

from repro.serve.protocol import PROTOCOL_VERSION, JobRequest, ProtocolError

__all__ = ["PROTOCOL_VERSION", "JobRequest", "ProtocolError"]
