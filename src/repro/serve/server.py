"""The asyncio HTTP/JSON job server: thermal simulation as a service.

``repro serve`` turns the simulation substrate into a long-running
process: an :mod:`asyncio` event loop accepts HTTP/1.1 requests
(keep-alive supported, stdlib only), a bounded priority
:class:`~repro.serve.jobs.JobQueue` buffers submitted jobs, and a small
worker pool executes each job through an ordinary
:class:`~repro.sim.runner.ParallelRunner` — pool or fleet backend, per
request — against one shared sharded/evicting
:class:`~repro.sim.runner.ResultCache`. Results are therefore
bit-identical to local runs of the same points, and a re-submitted job
is served from the cache without simulating.

Endpoints::

    GET  /healthz                 liveness + queue/worker census
    GET  /metrics                 Prometheus text exposition
    POST /jobs                    submit a job        -> 202 {"id": ...}
    GET  /jobs/<id>               job status
    GET  /jobs/<id>/result        result payload (409 until done)
    GET  /jobs/<id>/trace         merged distributed-trace spans (404
                                  unless the submission carried a
                                  ``traceparent`` header)
    POST /jobs/<id>/cancel        cancel (queued: immediate; running:
                                  cooperative — result is discarded)
    POST /run                     submit and wait: the result payload in
                                  one round trip (the load generator's
                                  endpoint)

Distributed tracing: a submission with a W3C ``traceparent`` header is
traced end to end — the server parents a request span on the caller's
context and records queue-wait, execute, runner point and engine
section spans beneath it (see :mod:`repro.obs.tracing`). Untraced
requests skip every span allocation, and tracing never changes results
or cache keys. Stage-latency histograms (``queue_wait_seconds``,
``execute_seconds``, ``ttfb_seconds``) are always recorded.

Operational semantics:

* **Per-job timeout** (``--job-timeout`` or per-request ``timeout_s``):
  a job still executing when its budget expires is marked ``timeout``
  and its eventual result discarded. The worker *slot* is freed only
  when the underlying execution returns (simulations cannot be
  preempted mid-step), so timeouts protect callers, not capacity.
* **Retry on worker death**: executions that die with a broken process
  pool / pipe (a pool worker OOM-killed mid-job) are retried on a fresh
  runner up to ``--retries`` times before the job fails.
* **Graceful drain**: SIGTERM/SIGINT closes the listener and the queue
  (new submissions 503), lets running jobs finish (bounded by
  ``--drain-timeout``), then exits 0.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs.exporters import prometheus_text
from repro.obs.logconfig import get_logger
from repro.obs.telemetry import MetricsRegistry
from repro.obs.tracing import (
    KIND_EXECUTE,
    KIND_QUEUE,
    SpanRecorder,
    TraceContext,
    finished_span,
    spans_payload,
)
from repro.serve.jobs import (
    Job,
    JobQueue,
    JobState,
    JobStore,
    QueueClosedError,
    QueueFullError,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobRequest,
    ProtocolError,
    job_payload,
)
from repro.sim.runner import ParallelRunner, ResultCache

logger = get_logger(__name__)

#: Request-latency histogram bucket bounds (seconds).
LATENCY_BUCKETS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0, 30.0,
)

#: Largest accepted request body (1 MiB of JSON is a very large sweep).
MAX_BODY_BYTES = 1 << 20


class WorkerDiedError(Exception):
    """An execution died with its worker; the job is retryable."""


#: Exception types classified as worker death (retryable) rather than
#: a job failure: the pool process vanished, not the simulation erred.
_WORKER_DEATH_TYPES = (
    WorkerDiedError,
    concurrent.futures.BrokenExecutor,
    BrokenPipeError,
    EOFError,
)


@dataclass
class ServeConfig:
    """Everything configurable about one server process."""

    host: str = "127.0.0.1"
    port: int = 8023
    #: Concurrent job executions (worker tasks + executor threads).
    workers: int = 4
    queue_size: int = 256
    #: Default per-job budget (seconds); requests may override.
    job_timeout_s: float = 300.0
    #: Extra executions after a worker death before the job fails.
    retries: int = 1
    #: Default execution backend for jobs that do not name one.
    backend: str = "pool"
    #: ``ParallelRunner`` worker processes per job (1 = inline).
    jobs: int = 1
    fleet_chunk: Optional[int] = None
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    no_cache: bool = False
    drain_timeout_s: float = 30.0

    def __post_init__(self):
        """Reject non-sensical sizes before any socket is opened."""
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1: {self.queue_size}")
        if self.job_timeout_s <= 0:
            raise ValueError(
                f"job_timeout_s must be positive: {self.job_timeout_s}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0: {self.retries}")
        if self.backend not in ("pool", "fleet"):
            raise ValueError(f"unknown backend {self.backend!r}")


class ServeExecutor:
    """Executes one job request through a :class:`ParallelRunner`.

    A fresh runner per execution keeps retry semantics clean (a broken
    process pool never leaks into the next attempt) while the shared
    ``cache`` and memoised engine substrates carry all the expensive
    state worth keeping warm. Runs on executor threads — everything
    here must be thread-safe, which the sharded cache and the locked
    metrics registry are.
    """

    def __init__(
        self,
        cache: Optional[ResultCache],
        registry: Optional[MetricsRegistry] = None,
        backend: str = "pool",
        jobs: int = 1,
        fleet_chunk: Optional[int] = None,
    ):
        """Bind the shared cache/registry and default backend."""
        self.cache = cache
        self.registry = registry
        self.backend = backend
        self.jobs = jobs
        self.fleet_chunk = fleet_chunk

    def execute(
        self, request: JobRequest, trace: Optional[TraceContext] = None,
    ) -> Tuple[Dict, int, int, list]:
        """Run the request's grid.

        Returns ``(payload, cache_hits, simulated, spans)``; ``spans``
        holds the runner's distributed spans (point/section/fleet-group)
        parented under ``trace``, empty when untraced — a fresh recorder
        per execution, so concurrent jobs never mix spans.
        """
        tracer = SpanRecorder() if trace is not None else None
        runner = ParallelRunner(
            jobs=self.jobs,
            cache=self.cache,
            backend=request.backend or self.backend,
            fleet_chunk=self.fleet_chunk,
            registry=self.registry,
            tracer=tracer,
        )
        results = runner.run_points(request.run_points(), trace=trace)
        return (
            job_payload(request, results),
            runner.stats.cache_hits,
            runner.stats.simulated,
            tracer.spans() if tracer is not None else [],
        )


class ThermalServeServer:
    """One serving process: HTTP front end, job queue, worker pool."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        executor: Optional[ServeExecutor] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        """Wire the queue, store, metrics and executor (no I/O yet)."""
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        cache = None
        if not self.config.no_cache:
            cache = ResultCache(
                self.config.cache_dir,
                registry=self.registry,
                max_bytes=self.config.cache_max_bytes,
            )
        self.cache = cache
        self.executor = executor or ServeExecutor(
            cache,
            registry=self.registry,
            backend=self.config.backend,
            jobs=self.config.jobs,
            fleet_chunk=self.config.fleet_chunk,
        )
        self.queue = JobQueue(self.config.queue_size)
        self.store = JobStore()
        self.started_at = time.time()
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: list = []
        self._thread_pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._running_jobs = 0
        self._connections: set = set()

        reg = self.registry
        self._g_queue_depth = reg.gauge(
            "serve_queue_depth", help="jobs waiting in the priority queue"
        )
        self._g_running = reg.gauge(
            "serve_jobs_running", help="jobs currently executing"
        )
        self._ctr_submitted = reg.counter(
            "serve_jobs_submitted_total", help="jobs accepted into the queue"
        )
        self._ctr_jobs = {
            state: reg.counter(
                "serve_jobs_total",
                help="jobs finished, by terminal state",
                state=state.value,
            )
            for state in (
                JobState.DONE, JobState.FAILED, JobState.CANCELLED,
                JobState.TIMEOUT,
            )
        }
        self._ctr_retries = reg.counter(
            "serve_job_retries_total",
            help="job executions retried after a worker death",
        )
        self._h_queue_wait = reg.histogram(
            "queue_wait_seconds", LATENCY_BUCKETS_S,
            help="time jobs spend queued before a worker picks them up",
        )
        self._h_execute = reg.histogram(
            "execute_seconds", LATENCY_BUCKETS_S,
            help="worker execution time per job, across all attempts",
        )
        self._h_ttfb = reg.histogram(
            "ttfb_seconds", LATENCY_BUCKETS_S,
            help="submission to terminal state per job",
        )
        self._ctr_requests: Dict[str, object] = {}
        self._h_latency: Dict[str, object] = {}

    # -- metrics helpers ----------------------------------------------------

    def _observe_request(self, route: str, elapsed_s: float) -> None:
        ctr = self._ctr_requests.get(route)
        if ctr is None:
            ctr = self._ctr_requests[route] = self.registry.counter(
                "serve_requests_total",
                help="HTTP requests handled, by route",
                route=route,
            )
            self._h_latency[route] = self.registry.histogram(
                "serve_request_seconds",
                LATENCY_BUCKETS_S,
                help="request handling latency by route",
                route=route,
            )
        ctr.inc()
        self._h_latency[route].observe(elapsed_s)

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the worker pool."""
        self._thread_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="serve-exec",
        )
        self._workers = [
            asyncio.create_task(self._worker(i))
            for i in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._tracked_connection,
            host=self.config.host,
            port=self.config.port,
            family=socket.AF_INET,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("serving on %s:%d", self.config.host, self.port)

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.config.host}:{self.port}"

    async def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop accepting work, wait for in-flight jobs, stop workers.

        Returns True when everything finished inside the timeout.
        """
        if self._draining:
            await self._drained.wait()
            return True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.queue.close()
        timeout = timeout_s if timeout_s is not None else self.config.drain_timeout_s
        clean = True
        if self._workers:
            done, pending = await asyncio.wait(self._workers, timeout=timeout)
            for task in pending:
                task.cancel()
            clean = not pending
            with contextlib.suppress(asyncio.CancelledError):
                await asyncio.gather(*pending, return_exceptions=True)
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=clean, cancel_futures=True)
        # Idle keep-alive connections never see another request; close
        # them (in-flight /run responses were written above, since every
        # job is terminal once the workers exit).
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._drained.set()
        return clean

    # -- worker pool --------------------------------------------------------

    async def _worker(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.get()
            self._g_queue_depth.set(float(len(self.queue)))
            if job is None:
                return
            if job.cancel_requested:
                job.finish(JobState.CANCELLED)
                self._ctr_jobs[JobState.CANCELLED].inc()
                continue
            job.state = JobState.RUNNING
            job.started_at = time.time()
            queue_wait = job.started_at - job.submitted_at
            self._h_queue_wait.observe(queue_wait)
            if job.trace is not None:
                # The wait was measured between two job timestamps, so
                # the span is backdated rather than context-managed.
                job.spans.append(
                    finished_span(
                        job.trace.child(), "queue-wait", KIND_QUEUE,
                        job.submitted_at, queue_wait,
                        queue_depth=job.queue_depth_at_submit,
                        priority=job.request.priority,
                    )
                )
            self._running_jobs += 1
            self._g_running.set(float(self._running_jobs))
            timeout = job.request.timeout_s or self.config.job_timeout_s
            try:
                await self._execute_with_retry(loop, job, timeout)
            finally:
                self._running_jobs -= 1
                self._g_running.set(float(self._running_jobs))
                self._ctr_jobs[job.state].inc()
                finished = job.finished_at or time.time()
                self._h_execute.observe(finished - job.started_at)
                self._h_ttfb.observe(finished - job.submitted_at)

    async def _execute_with_retry(self, loop, job: Job, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        # One execute-span context covers every attempt, so runner spans
        # from the successful attempt parent consistently even after a
        # worker-death retry.
        exec_ctx = job.trace.child() if job.trace is not None else None
        exec_started = time.time()
        exec_t0 = time.perf_counter()
        while True:
            job.attempts += 1
            budget = deadline - time.monotonic()
            if budget <= 0:
                job.finish(JobState.TIMEOUT,
                           error=f"timed out after {timeout:g} s")
                return
            try:
                payload, cache_hits, _simulated, spans = await asyncio.wait_for(
                    loop.run_in_executor(
                        self._thread_pool, self.executor.execute,
                        job.request, exec_ctx,
                    ),
                    timeout=budget,
                )
            except asyncio.TimeoutError:
                job.finish(JobState.TIMEOUT,
                           error=f"timed out after {timeout:g} s")
                return
            except _WORKER_DEATH_TYPES as exc:
                if job.attempts <= self.config.retries:
                    logger.warning(
                        "job %s: worker died (%s), retrying (%d/%d)",
                        job.id, exc, job.attempts, self.config.retries,
                    )
                    self._ctr_retries.inc()
                    continue
                job.finish(
                    JobState.FAILED,
                    error=f"worker died after {job.attempts} attempts: {exc}",
                )
                return
            except ProtocolError as exc:
                job.finish(JobState.FAILED, error=str(exc))
                return
            except Exception as exc:  # simulation raised: a job failure
                logger.exception("job %s failed", job.id)
                job.finish(
                    JobState.FAILED, error=f"{type(exc).__name__}: {exc}"
                )
                return
            if job.cancel_requested:
                job.finish(JobState.CANCELLED)
                return
            job.cache_hits = cache_hits
            if exec_ctx is not None:
                job.spans.extend(spans)
                job.spans.append(
                    finished_span(
                        exec_ctx, "execute", KIND_EXECUTE,
                        exec_started, time.perf_counter() - exec_t0,
                        attempts=job.attempts,
                        backend=job.request.backend or self.config.backend,
                        n_points=job.request.n_points,
                        cache_hits=cache_hits,
                    )
                )
            job.finish(JobState.DONE, payload=payload)
            return

    # -- HTTP front end -----------------------------------------------------

    async def _tracked_connection(self, reader, writer) -> None:
        """Connection callback wrapper: register the handler for drain."""
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._handle_connection(reader, writer)
        except asyncio.CancelledError:
            with contextlib.suppress(Exception):
                writer.close()
        finally:
            self._connections.discard(task)

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, path, headers, body = request
                started = time.perf_counter()
                try:
                    status, payload, content_type, route = await self._route(
                        method, path, headers, body
                    )
                except ProtocolError as exc:
                    status, content_type, route = 400, "application/json", "error"
                    payload = {"error": str(exc)}
                except Exception as exc:  # pragma: no cover - defensive
                    logger.exception("internal error handling %s %s",
                                     method, path)
                    status, content_type, route = 500, "application/json", "error"
                    payload = {"error": f"internal error: {exc}"}
                self._observe_request(route, time.perf_counter() - started)
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._draining
                )
                await self._write_response(
                    writer, status, payload, content_type, keep_alive
                )
                if not keep_alive:
                    return
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split()
        except ValueError:
            raise ProtocolError(f"malformed request line: {line!r}") from None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _write_response(
        self, writer, status: int, payload, content_type: str,
        keep_alive: bool,
    ) -> None:
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            500: "Internal Server Error", 503: "Service Unavailable",
        }.get(status, "OK")
        if content_type == "application/json":
            data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        else:
            data = payload.encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        writer.write(data)
        await writer.drain()

    def _parse_body(self, body: bytes) -> Dict:
        if not body:
            raise ProtocolError("request body must be a JSON object")
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from None

    def _submit(self, data: Dict,
                headers: Optional[Dict[str, str]] = None) -> Job:
        request = JobRequest.parse(data)
        if self.queue.closed:
            raise QueueClosedError("server is draining")
        job = self.store.create(request)
        client_ctx = TraceContext.from_traceparent(
            (headers or {}).get("traceparent")
        )
        if client_ctx is not None:
            # The request span's context: its parent is the caller's
            # client span, stitching both sides into one trace.
            job.trace = client_ctx.child()
        job.queue_depth_at_submit = len(self.queue)
        try:
            self.queue.put(job)
        except (QueueFullError, QueueClosedError):
            job.finish(JobState.CANCELLED, error="rejected at submission")
            raise
        self._ctr_submitted.inc()
        self._g_queue_depth.set(float(len(self.queue)))
        return job

    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes):
        """Dispatch one request; returns (status, payload, type, route)."""
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "draining" if self._draining else "ok",
                "version": PROTOCOL_VERSION,
                "uptime_s": time.time() - self.started_at,
                "queue_depth": len(self.queue),
                "running": self._running_jobs,
                "workers": self.config.workers,
                "jobs": self.store.states(),
            }, "application/json", "healthz"
        if path == "/metrics" and method == "GET":
            return 200, prometheus_text(self.registry), "text/plain", "metrics"
        if path == "/jobs" and method == "POST":
            try:
                job = self._submit(self._parse_body(body), headers)
            except (QueueFullError, QueueClosedError) as exc:
                return 503, {"error": str(exc)}, "application/json", "submit"
            out = {
                "id": job.id,
                "state": job.state.value,
                "n_points": job.request.n_points,
            }
            if job.trace is not None:
                out["trace_id"] = job.trace.trace_id
            return 202, out, "application/json", "submit"
        if path == "/run" and method == "POST":
            try:
                job = self._submit(self._parse_body(body), headers)
            except (QueueFullError, QueueClosedError) as exc:
                return 503, {"error": str(exc)}, "application/json", "run"
            await job.finished.wait()
            return self._result_response(job, route="run")
        if path.startswith("/jobs/"):
            parts = path.split("/")
            job = self.store.get(parts[2])
            if job is None:
                return 404, {
                    "error": f"unknown job {parts[2]!r}"
                }, "application/json", "status"
            if len(parts) == 3 and method == "GET":
                return 200, job.status(), "application/json", "status"
            if len(parts) == 4 and parts[3] == "result" and method == "GET":
                return self._result_response(job, route="result")
            if len(parts) == 4 and parts[3] == "trace" and method == "GET":
                return self._trace_response(job)
            if len(parts) == 4 and parts[3] == "cancel" and method == "POST":
                return self._cancel(job)
        return 404, {
            "error": f"no route for {method} {path}"
        }, "application/json", "error"

    def _trace_response(self, job: Job):
        """The merged span document for a traced job (404 untraced)."""
        if job.trace is None:
            return 404, {
                "id": job.id,
                "error": "job was not traced "
                         "(no traceparent header at submission)",
            }, "application/json", "trace"
        payload = spans_payload(job.spans, trace_id=job.trace.trace_id)
        payload.update({"id": job.id, "state": job.state.value})
        return 200, payload, "application/json", "trace"

    def _result_response(self, job: Job, route: str):
        if job.state is JobState.DONE:
            payload = dict(job.payload)
            payload.update({
                "id": job.id,
                "state": job.state.value,
                "cache_hits": job.cache_hits,
                "elapsed_s": job.finished_at - job.submitted_at,
            })
            if job.trace is not None:
                payload["trace_id"] = job.trace.trace_id
            return 200, payload, "application/json", route
        if job.done:
            return 409, {
                "id": job.id,
                "state": job.state.value,
                "error": job.error or f"job is {job.state.value}",
            }, "application/json", route
        return 409, {
            "id": job.id,
            "state": job.state.value,
            "error": "job has not finished",
        }, "application/json", route

    def _cancel(self, job: Job):
        if job.done:
            return 200, {
                "id": job.id, "state": job.state.value, "cancelled": False,
            }, "application/json", "cancel"
        job.cancel_requested = True
        if job.state is JobState.QUEUED:
            # Lazy heap removal: mark terminal now; the heap entry is
            # skipped at pop time.
            job.finish(JobState.CANCELLED)
            self.queue.discard(job)
            self._ctr_jobs[JobState.CANCELLED].inc()
            self._g_queue_depth.set(float(len(self.queue)))
        return 200, {
            "id": job.id, "state": job.state.value, "cancelled": True,
        }, "application/json", "cancel"


# ---------------------------------------------------------------------------
# Entry points: blocking CLI server and the in-thread harness
# ---------------------------------------------------------------------------


async def _serve_until_signalled(server: ThermalServeServer) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await server.start()
    print(f"serving on {server.url}", flush=True)
    print(
        f"  workers={server.config.workers} "
        f"queue={server.config.queue_size} "
        f"backend={server.config.backend} "
        f"cache={'off' if server.cache is None else server.cache.root}",
        flush=True,
    )
    await stop.wait()
    running = server._running_jobs + len(server.queue)
    print(f"draining: {running} job(s) in flight...", flush=True)
    clean = await server.drain()
    print(f"drained {'cleanly' if clean else 'with stragglers'}; bye",
          flush=True)


def run_server(config: ServeConfig) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    server = ThermalServeServer(config)
    try:
        asyncio.run(_serve_until_signalled(server))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0


class ServerHandle:
    """A server running on a dedicated thread, for tests and benchmarks.

    The embedding process stays "one server process" — the load
    generator's requests all land in this thread's event loop.
    """

    def __init__(self, server: ThermalServeServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        """Internal: built by :func:`start_in_thread`."""
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return self.server.url

    def stop(self, timeout_s: float = 30.0) -> None:
        """Drain the server and join its thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout_s), self._loop
        )
        try:
            future.result(timeout=timeout_s + 5.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)


def start_in_thread(
    config: Optional[ServeConfig] = None,
    executor: Optional[ServeExecutor] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ServerHandle:
    """Start a server on a background thread; returns once it is bound."""
    config = config or ServeConfig(port=0)
    server = ThermalServeServer(config, executor=executor, registry=registry)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    failure: list = []

    def _main():
        asyncio.set_event_loop(loop)

        async def _start():
            try:
                await server.start()
            except Exception as exc:
                failure.append(exc)
            finally:
                ready.set()

        loop.create_task(_start())
        loop.run_forever()
        # Drain callbacks scheduled during shutdown, then close.
        loop.run_until_complete(asyncio.sleep(0))
        loop.close()

    thread = threading.Thread(target=_main, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=30.0):  # pragma: no cover - startup hang
        raise RuntimeError("serve thread failed to start in time")
    if failure:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        raise failure[0]
    return ServerHandle(server, thread, loop)


def add_serve_arguments(parser) -> None:
    """Install the ``repro serve`` flags on an argparse (sub)parser."""
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8023,
        help="TCP port (0 = ephemeral, printed at startup; default: 8023)",
    )
    parser.add_argument(
        "--serve-workers", type=int, default=4, metavar="N",
        help="concurrent job executions (default: 4)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=256, metavar="N",
        help="bounded job-queue capacity; full -> HTTP 503 (default: 256)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=300.0, metavar="SECONDS",
        help="default per-job budget; requests may override (default: 300)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-executions after a worker death before the job fails "
             "(default: 1)",
    )
    parser.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="BYTES",
        help="LRU-evict the result cache above this size "
             "(default: unbounded)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long SIGTERM waits for in-flight jobs (default: 30)",
    )


def serve_config_from_args(args) -> ServeConfig:
    """Build a :class:`ServeConfig` from parsed CLI args."""
    return ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.serve_workers,
        queue_size=args.queue_size,
        job_timeout_s=args.job_timeout,
        retries=args.retries,
        backend=args.backend,
        jobs=args.jobs if args.jobs else (os.cpu_count() or 1),
        fleet_chunk=args.fleet_chunk,
        cache_max_bytes=args.cache_max_bytes,
        no_cache=args.no_cache,
        drain_timeout_s=args.drain_timeout,
    )
