"""Stdlib HTTP client for the serve subsystem.

A thin, dependency-free wrapper over :mod:`http.client` speaking the
JSON protocol of :mod:`repro.serve.server`. One :class:`ServeClient`
holds one keep-alive connection; it is *not* thread-safe — the load
generator gives each of its threads a private client, which is exactly
how a real pool of callers behaves.

Tracing: constructed with ``trace=True``, the client mints a fresh
:class:`~repro.obs.tracing.TraceContext` per request, sends it as a W3C
``traceparent`` header and records a client-side span (kind ``client``)
into its recorder. The server continues the same trace through queue,
worker and engine; ``client.trace(job_id)`` fetches the merged span set
from ``GET /jobs/<id>/trace``.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlparse

from repro.obs.tracing import (
    KIND_CLIENT,
    NULL_TRACER,
    SpanRecorder,
    TraceContext,
    finished_span,
)


class ServeError(Exception):
    """A non-2xx response from the server."""

    def __init__(self, status: int, payload):
        """Capture the HTTP status and decoded body."""
        self.status = status
        self.payload = payload
        message = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {message}")


class ServeClient:
    """One keep-alive connection to a running serve process."""

    def __init__(
        self,
        url: str,
        timeout_s: float = 60.0,
        trace: bool = False,
        recorder: Optional[SpanRecorder] = None,
    ):
        """Connect lazily to ``url`` (e.g. ``http://127.0.0.1:8023``).

        ``trace=True`` sends a ``traceparent`` header with every request
        (a fresh trace per request) and records client-side spans into
        ``recorder`` (one is created when not given; read it back via
        ``self.recorder``). The last request's context is kept in
        ``self.last_trace``.
        """
        parsed = urlparse(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported: {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout_s = timeout_s
        self.tracing = bool(trace)
        if self.tracing:
            self.recorder = recorder if recorder is not None else SpanRecorder()
        else:
            self.recorder = recorder if recorder is not None else NULL_TRACER
        #: Trace context of the most recent traced request (None untraced).
        self.last_trace: Optional[TraceContext] = None
        #: How many transport attempts the last request took (1 normally,
        #: 2 after a stale keep-alive retry).
        self.last_attempts = 0
        #: Wall-clock seconds of each transport attempt of the last
        #: request, in order — the retried attempt keeps its own timing.
        self.last_attempt_latencies_s: List[float] = []
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        """Close the underlying connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        """Context-manager entry; returns self."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit closes the connection."""
        self.close()

    # -- transport ----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Tuple[int, object, str]:
        data = (
            json.dumps(body, separators=(",", ":")).encode("utf-8")
            if body is not None else None
        )
        headers = {"Content-Type": "application/json"} if data else {}
        context: Optional[TraceContext] = None
        if self.tracing:
            context = TraceContext.new()
            headers["traceparent"] = context.to_traceparent()
            self.last_trace = context
        self.last_attempts = 0
        self.last_attempt_latencies_s = []
        # The client span IS the remote trace's parent: _ClientSpan
        # records at the minted context rather than childing a new one.
        with _ClientSpan(self.recorder, context, method, path) as cspan:
            # Two transport attempts at most: the first may hit a stale
            # keep-alive connection (server closed between requests);
            # the retry runs on a fresh connection. Each attempt records
            # its own wall-clock latency — the pre-fix code timed only
            # the outer call, so a retried request lost the measurement
            # of the attempt that actually succeeded.
            last_error: Optional[Exception] = None
            response = None
            raw = b""
            for attempt in range(2):
                if self._conn is None:
                    self._conn = self._connect()
                self.last_attempts = attempt + 1
                t0 = time.perf_counter()
                try:
                    self._conn.request(method, path, body=data, headers=headers)
                    response = self._conn.getresponse()
                    raw = response.read()
                    self.last_attempt_latencies_s.append(
                        time.perf_counter() - t0
                    )
                    last_error = None
                    break
                except (http.client.HTTPException, ConnectionError, OSError) as exc:
                    self.last_attempt_latencies_s.append(
                        time.perf_counter() - t0
                    )
                    last_error = exc
                    self.close()
            if last_error is not None:
                raise last_error
            cspan.annotate(attempts=self.last_attempts, status=response.status)
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            payload = json.loads(raw) if raw else None
        else:
            payload = raw.decode("utf-8")
        if response.will_close:
            self.close()
        return response.status, payload, content_type

    def _json(self, method: str, path: str, body: Optional[Dict] = None,
              ok: Tuple[int, ...] = (200,)):
        status, payload, _ = self._request(method, path, body)
        if status not in ok:
            raise ServeError(status, payload)
        return payload

    # -- API ----------------------------------------------------------------

    def healthz(self) -> Dict:
        """Server liveness/census document."""
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics``."""
        status, payload, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, payload)
        return payload

    def submit(self, request: Dict) -> str:
        """Submit a job; returns its id (raises :class:`ServeError` on 4xx/5xx)."""
        return self._json("POST", "/jobs", request, ok=(202,))["id"]

    def status(self, job_id: str) -> Dict:
        """Status document for ``job_id``."""
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict:
        """Result payload for a finished job (409 while running)."""
        return self._json("GET", f"/jobs/{job_id}/result")

    def trace(self, job_id: str) -> Dict:
        """The merged span document from ``GET /jobs/<id>/trace``.

        404s (untraced job, unknown id) raise :class:`ServeError`.
        """
        return self._json("GET", f"/jobs/{job_id}/trace")

    def cancel(self, job_id: str) -> Dict:
        """Request cancellation of ``job_id``."""
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def run(self, request: Dict) -> Dict:
        """Submit and wait: the result payload in one round trip."""
        return self._json("POST", "/run", request)

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.05) -> Dict:
        """Poll ``status`` until the job is terminal; returns the status.

        Raises ``TimeoutError`` if the job is still live after
        ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout_s:g} s"
                )
            time.sleep(poll_s)


class _ClientSpan:
    """Times one client request at its pre-minted trace context.

    The ``traceparent`` header carries the *client span's* ids, so the
    span recorded here must reuse that exact context — the server parents
    its request span on it, stitching client and server into one trace.
    With ``context=None`` (tracing off) this is a no-op.
    """

    __slots__ = ("_recorder", "_context", "_name", "_attrs", "_started_at",
                 "_t0")

    def __init__(self, recorder, context: Optional[TraceContext],
                 method: str, path: str):
        self._recorder = recorder
        self._context = context
        self._name = f"{method} {path}"
        self._attrs: Dict[str, object] = {}
        self._started_at = 0.0
        self._t0 = 0.0

    def annotate(self, **attrs) -> None:
        """Attach attributes to the eventual span (no-op untraced)."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_ClientSpan":
        self._started_at = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._context is None:
            return
        if exc_type is not None:
            self._attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._recorder.record(
            finished_span(
                self._context, self._name, KIND_CLIENT,
                self._started_at, time.perf_counter() - self._t0,
                **self._attrs,
            )
        )
