"""Stdlib HTTP client for the serve subsystem.

A thin, dependency-free wrapper over :mod:`http.client` speaking the
JSON protocol of :mod:`repro.serve.server`. One :class:`ServeClient`
holds one keep-alive connection; it is *not* thread-safe — the load
generator gives each of its threads a private client, which is exactly
how a real pool of callers behaves.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Optional, Tuple
from urllib.parse import urlparse


class ServeError(Exception):
    """A non-2xx response from the server."""

    def __init__(self, status: int, payload):
        """Capture the HTTP status and decoded body."""
        self.status = status
        self.payload = payload
        message = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {message}")


class ServeClient:
    """One keep-alive connection to a running serve process."""

    def __init__(self, url: str, timeout_s: float = 60.0):
        """Connect lazily to ``url`` (e.g. ``http://127.0.0.1:8023``)."""
        parsed = urlparse(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported: {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        """Close the underlying connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        """Context-manager entry; returns self."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit closes the connection."""
        self.close()

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Tuple[int, object, str]:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        data = (
            json.dumps(body, separators=(",", ":")).encode("utf-8")
            if body is not None else None
        )
        headers = {"Content-Type": "application/json"} if data else {}
        try:
            self._conn.request(method, path, body=data, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # Stale keep-alive (server closed between requests): retry
            # once on a fresh connection.
            self.close()
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            self._conn.request(method, path, body=data, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            payload = json.loads(raw) if raw else None
        else:
            payload = raw.decode("utf-8")
        if response.will_close:
            self.close()
        return response.status, payload, content_type

    def _json(self, method: str, path: str, body: Optional[Dict] = None,
              ok: Tuple[int, ...] = (200,)):
        status, payload, _ = self._request(method, path, body)
        if status not in ok:
            raise ServeError(status, payload)
        return payload

    # -- API ----------------------------------------------------------------

    def healthz(self) -> Dict:
        """Server liveness/census document."""
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics``."""
        status, payload, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, payload)
        return payload

    def submit(self, request: Dict) -> str:
        """Submit a job; returns its id (raises :class:`ServeError` on 4xx/5xx)."""
        return self._json("POST", "/jobs", request, ok=(202,))["id"]

    def status(self, job_id: str) -> Dict:
        """Status document for ``job_id``."""
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict:
        """Result payload for a finished job (409 while running)."""
        return self._json("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict:
        """Request cancellation of ``job_id``."""
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def run(self, request: Dict) -> Dict:
        """Submit and wait: the result payload in one round trip."""
        return self._json("POST", "/run", request)

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.05) -> Dict:
        """Poll ``status`` until the job is terminal; returns the status.

        Raises ``TimeoutError`` if the job is still live after
        ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout_s:g} s"
                )
            time.sleep(poll_s)
