"""JSON wire schema of the thermal-simulation service.

A *job request* names the same ingredients a direct
:class:`~repro.sim.runner.ParallelRunner` call takes — workloads, a
policy key, scalar configuration overrides — plus an optional sweep
axis, and expands to the identical :class:`~repro.sim.runner.RunPoint`
grid :func:`repro.sim.sweep.sweep_config_field` would build. Because
the server routes those points through an ordinary runner, a served
result is bit-identical to a local run of the same request (the tests
in ``tests/serve/test_server.py`` enforce this for both backends).

Everything here is transport-agnostic pure data: parsing/validation of
request dictionaries (:class:`JobRequest`), and serialisation of result
batches into the response payload (:func:`job_payload`), reusing
:func:`repro.sim.report.result_to_dict` so the served result schema is
the same one ``repro compare -o`` archives.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.taxonomy import spec_by_key
from repro.sim.engine import SimulationConfig
from repro.sim.report import result_to_dict
from repro.sim.runner import RunPoint
from repro.sim.workloads import get_workload

#: Wire-format identifier carried by every response envelope.
PROTOCOL_VERSION = "repro-serve/1"

#: SimulationConfig fields a request may override: JSON-safe scalars
#: only (the structured fields — machine, package, fault plans, guards —
#: stay server-side concerns; ``record_series`` is excluded because its
#: numpy payload has no JSON form).
CONFIG_FIELDS: Tuple[str, ...] = (
    "duration_s",
    "threshold_c",
    "seed",
    "trace_duration_s",
    "warm_start_fraction",
    "migration_period_s",
    "sensor_noise_std_c",
    "sensor_quantization_c",
    "sensor_offset_c",
    "hardware_trip",
    "hardware_trip_freeze_s",
    "power_scale",
    "fuse_steps",
)

#: Fields accepted as a sweep axis (numeric scalars only).
SWEEP_FIELDS: Tuple[str, ...] = (
    "duration_s",
    "threshold_c",
    "seed",
    "warm_start_fraction",
    "migration_period_s",
    "sensor_noise_std_c",
    "sensor_quantization_c",
    "sensor_offset_c",
    "power_scale",
)

_BOOL_FIELDS = frozenset(
    f.name for f in fields(SimulationConfig) if f.type in ("bool", bool)
)


class ProtocolError(ValueError):
    """A malformed or invalid request; maps to HTTP 400."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _check_scalar(field: str, value) -> object:
    """Validate one config override value against its field."""
    if field in _BOOL_FIELDS:
        _require(
            isinstance(value, bool),
            f"config field {field!r} must be a boolean, got {value!r}",
        )
        return value
    if value is None and field == "warm_start_fraction":
        return None
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"config field {field!r} must be a number, got {value!r}",
    )
    return value


@dataclass(frozen=True)
class JobRequest:
    """One validated job: a (sweep x workloads) grid of run points.

    ``sweep_values`` empty means "no sweep": the grid is just the base
    configuration across ``workloads``. ``backend`` ``None`` defers to
    the server's default execution backend.
    """

    workloads: Tuple[str, ...]
    policy: Optional[str]
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    sweep_field: Optional[str] = None
    sweep_values: Tuple[object, ...] = ()
    backend: Optional[str] = None
    priority: int = 0
    timeout_s: Optional[float] = None

    @classmethod
    def parse(cls, data: Dict) -> "JobRequest":
        """Validate a request dictionary into a :class:`JobRequest`.

        Raises :class:`ProtocolError` with a client-actionable message
        on any schema violation — unknown workload or policy, non-scalar
        override, unknown or non-numeric sweep field, bad backend.
        """
        _require(isinstance(data, dict), "request body must be a JSON object")
        unknown = set(data) - {
            "workload", "workloads", "policy", "config", "sweep",
            "backend", "priority", "timeout_s",
        }
        _require(not unknown, f"unknown request fields: {sorted(unknown)}")

        if "workloads" in data:
            _require(
                "workload" not in data,
                "give either 'workload' or 'workloads', not both",
            )
            raw_workloads = data["workloads"]
            _require(
                isinstance(raw_workloads, list) and raw_workloads,
                "'workloads' must be a non-empty list",
            )
        else:
            raw_workloads = [data.get("workload", "workload7")]
        workloads = []
        for name in raw_workloads:
            try:
                workloads.append(get_workload(name).name)
            except (KeyError, TypeError):
                raise ProtocolError(f"unknown workload {name!r}") from None

        policy = data.get("policy")
        if policy is not None and policy != "none":
            try:
                policy = spec_by_key(policy).key
            except (KeyError, AttributeError):
                raise ProtocolError(f"unknown policy key {policy!r}") from None
        else:
            policy = None

        overrides = data.get("config", {})
        _require(
            isinstance(overrides, dict),
            "'config' must be an object of SimulationConfig overrides",
        )
        checked: List[Tuple[str, object]] = []
        for field in sorted(overrides):
            _require(
                field in CONFIG_FIELDS,
                f"unknown or unsupported config field {field!r}; "
                f"supported: {list(CONFIG_FIELDS)}",
            )
            checked.append((field, _check_scalar(field, overrides[field])))

        sweep_field = None
        sweep_values: Tuple[object, ...] = ()
        sweep = data.get("sweep")
        if sweep is not None:
            _require(
                isinstance(sweep, dict)
                and set(sweep) == {"field", "values"},
                "'sweep' must be {'field': ..., 'values': [...]}",
            )
            sweep_field = sweep["field"]
            _require(
                sweep_field in SWEEP_FIELDS,
                f"unknown sweep field {sweep_field!r}; "
                f"supported: {list(SWEEP_FIELDS)}",
            )
            raw_values = sweep["values"]
            _require(
                isinstance(raw_values, list) and raw_values,
                "'sweep.values' must be a non-empty list",
            )
            sweep_values = tuple(
                _check_scalar(sweep_field, v) for v in raw_values
            )

        backend = data.get("backend")
        _require(
            backend in (None, "pool", "fleet"),
            f"backend must be 'pool' or 'fleet', got {backend!r}",
        )
        priority = data.get("priority", 0)
        _require(
            isinstance(priority, int) and not isinstance(priority, bool),
            f"priority must be an integer, got {priority!r}",
        )
        timeout_s = data.get("timeout_s")
        if timeout_s is not None:
            _require(
                isinstance(timeout_s, (int, float))
                and not isinstance(timeout_s, bool)
                and timeout_s > 0,
                f"timeout_s must be a positive number, got {timeout_s!r}",
            )
            timeout_s = float(timeout_s)
        return cls(
            workloads=tuple(workloads),
            policy=policy,
            config_overrides=tuple(checked),
            sweep_field=sweep_field,
            sweep_values=sweep_values,
            backend=backend,
            priority=priority,
            timeout_s=timeout_s,
        )

    @property
    def n_points(self) -> int:
        """Size of the request's run-point grid."""
        return max(1, len(self.sweep_values)) * len(self.workloads)

    def base_config(self) -> SimulationConfig:
        """The request's configuration before any sweep substitution."""
        try:
            return SimulationConfig(**dict(self.config_overrides))
        except (ValueError, TypeError) as exc:
            raise ProtocolError(f"invalid configuration: {exc}") from None

    def run_points(self) -> List[RunPoint]:
        """Expand to the grid a direct sweep call would build.

        Order matches :func:`repro.sim.sweep.sweep_config_field`: sweep
        value major, workload minor.
        """
        base = self.base_config()
        spec = spec_by_key(self.policy) if self.policy else None
        workloads = [get_workload(name) for name in self.workloads]
        if not self.sweep_values:
            return [RunPoint(w, spec, base) for w in workloads]
        points = []
        for value in self.sweep_values:
            try:
                config = replace(base, **{self.sweep_field: value})
            except (ValueError, TypeError) as exc:
                raise ProtocolError(
                    f"invalid sweep value {value!r} for "
                    f"{self.sweep_field!r}: {exc}"
                ) from None
            points.extend(RunPoint(w, spec, config) for w in workloads)
        return points

    def describe(self) -> Dict:
        """JSON-safe echo of the request for status responses."""
        return {
            "workloads": list(self.workloads),
            "policy": self.policy,
            "config": dict(self.config_overrides),
            "sweep": (
                {"field": self.sweep_field, "values": list(self.sweep_values)}
                if self.sweep_field is not None
                else None
            ),
            "backend": self.backend,
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "n_points": self.n_points,
        }


def job_payload(request: JobRequest, results: Sequence) -> Dict:
    """The result payload for a completed job.

    One entry per run point, in the request's grid order, each carrying
    the sweep value it was run at (``None`` without a sweep) and the
    :func:`~repro.sim.report.result_to_dict` serialisation of its
    result — floats round-trip exactly through JSON (shortest-repr), so
    payload equality is result bit-identity.
    """
    values = list(request.sweep_values) or [None]
    entries = []
    i = 0
    for value in values:
        for workload in request.workloads:
            entries.append(
                {
                    "value": value,
                    "workload": workload,
                    "policy": request.policy,
                    "result": result_to_dict(results[i]),
                }
            )
            i += 1
    assert i == len(results), (i, len(results))
    return {"n_points": len(entries), "points": entries}
