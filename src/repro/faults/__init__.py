"""Fault injection and robustness evaluation (``repro.faults``).

The paper evaluates its 12 DTM policies under *ideal dynamics*: sensors
may carry static imperfections, but nothing fails mid-run. This package
models dynamic failures — sensor channels that stick, drop out, drift,
spike or step out of calibration; DVFS transitions that are rejected or
stretched; migration requests lost in delivery — plus a guard layer that
detects distrusted sensors and degrades gracefully to blind stop-go.

Entry points:

* declare faults with the models in :mod:`repro.faults.models` and pack
  them into a :class:`FaultPlan` on
  :class:`~repro.sim.engine.SimulationConfig` (``fault_plan=...``);
* enable the watchdog with a :class:`GuardConfig` (``guard=...``);
* sweep severity x policy with :mod:`repro.experiments.robustness`
  (CLI: ``repro robustness``), or attach a JSON spec to a single run
  with ``repro run --fault-spec FILE`` (loader:
  :func:`load_fault_spec_file`).
"""

from __future__ import annotations

import json
import os
from typing import Optional, Tuple

from repro.faults.guards import GuardConfig, SensorGuardBank
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    ACTUATOR_FAULT_TYPES,
    FAULT_REGISTRY,
    SENSOR_FAULT_TYPES,
    CalibrationStepFault,
    DriftFault,
    DropoutFault,
    DVFSLatencyFault,
    DVFSRejectFault,
    FaultPlan,
    FaultSummary,
    MigrationDropFault,
    SpikeFault,
    StuckAtFault,
)


def load_fault_spec_file(
    path: os.PathLike,
) -> Tuple[FaultPlan, Optional[GuardConfig]]:
    """Load a JSON fault-spec file: the plan plus an optional guard config.

    The spec's top-level ``"guards"`` object (if present) maps directly
    onto :class:`GuardConfig` fields; ``{"guards": {}}`` enables the
    guard layer with defaults.
    """
    with open(path, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    plan = FaultPlan.from_spec(spec)
    guard: Optional[GuardConfig] = None
    if "guards" in spec:
        raw = spec["guards"]
        if not isinstance(raw, dict):
            raise ValueError(
                f"'guards' must be an object of GuardConfig fields: {raw!r}"
            )
        try:
            guard = GuardConfig(**raw)
        except TypeError as exc:
            raise ValueError(f"bad guard spec: {exc}") from exc
    return plan, guard


__all__ = [
    "ACTUATOR_FAULT_TYPES",
    "FAULT_REGISTRY",
    "SENSOR_FAULT_TYPES",
    "CalibrationStepFault",
    "DriftFault",
    "DropoutFault",
    "DVFSLatencyFault",
    "DVFSRejectFault",
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "GuardConfig",
    "MigrationDropFault",
    "SensorGuardBank",
    "SpikeFault",
    "StuckAtFault",
    "load_fault_spec_file",
]
