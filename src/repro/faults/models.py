"""Typed fault models and the :class:`FaultPlan` container.

The paper's policies act on *sensor readings* and *actuation requests*,
never on ground truth — which makes both interfaces failure surfaces.
Rotem et al. document drift, spikes and calibration error in shipping
thermal sensors; DVFS actuators occasionally reject or stretch PLL
re-locks; an OS migration request can be lost to a scheduling race.
Each such failure mode is modelled here as a small frozen dataclass with
an activation window ``[start_s, end_s)`` in silicon time.

Every model is:

* **declarative** — construction has no side effects and no randomness;
  stochastic faults only name a probability, and the runtime
  :class:`~repro.faults.injector.FaultInjector` draws from a
  deterministic per-fault :class:`~repro.util.rng.RngStream`;
* **hashable and canonicalizable** — a :class:`FaultPlan` rides inside
  :class:`~repro.sim.engine.SimulationConfig`, so the fault spec
  participates in the result-cache key exactly like any other
  configuration field;
* **JSON round-trippable** — ``repro run --fault-spec FILE`` loads the
  spec format documented in ``docs/MODELING.md`` §8.

Sensor faults target a ``(core, unit)`` channel; ``core=None`` or
``unit=None`` widens the selection to every core / every monitored unit.
Overlapping faults apply in plan order: a later fault transforms the
output of an earlier one.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Tuple, Type, Union

#: Window end meaning "until the end of the run".
UNBOUNDED = math.inf

#: Dropout replacement modes.
DROPOUT_MODES = ("last-good", "nan")


def _check_window(start_s: float, end_s: float) -> None:
    if not start_s >= 0.0:
        raise ValueError(f"start_s must be >= 0: {start_s}")
    if not end_s > start_s:
        raise ValueError(f"end_s must be > start_s: [{start_s}, {end_s})")


def _check_prob(prob: float, name: str = "prob") -> None:
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"{name} must be in [0, 1]: {prob}")


def _check_core(core: Optional[int]) -> None:
    if core is not None and core < 0:
        raise ValueError(f"core must be >= 0 or None (all cores): {core}")


class _WindowedFault:
    """Shared behaviour of every fault model (activation window + target)."""

    start_s: float
    end_s: float

    def active(self, time_s: float) -> bool:
        """Whether the fault's window covers ``time_s``."""
        return self.start_s <= time_s < self.end_s

    @property
    def stochastic(self) -> bool:
        """Whether the model draws from its RNG stream at runtime."""
        return False


# ---------------------------------------------------------------------------
# Sensor faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StuckAtFault(_WindowedFault):
    """Sensor output latches: either at ``value_c`` or at its last reading.

    With ``value_c=None`` the channel freezes at whatever it reported on
    the last read before the window opened (the classic "stuck-at last
    value" failure); a fixed ``value_c`` models a channel shorted to a
    rail — stuck *low* is the dangerous case, since it makes a hot core
    look cool.
    """

    kind: ClassVar[str] = "stuck-at"

    core: Optional[int] = None
    unit: Optional[str] = None
    start_s: float = 0.0
    end_s: float = UNBOUNDED
    value_c: Optional[float] = None

    def __post_init__(self):
        """Validate the activation window and target."""
        _check_window(self.start_s, self.end_s)
        _check_core(self.core)


@dataclass(frozen=True)
class DropoutFault(_WindowedFault):
    """A read returns no fresh sample with probability ``prob``.

    The replacement is ``mode``: ``"last-good"`` repeats the channel's
    last delivered reading (a hardware register that simply was not
    updated), ``"nan"`` models an interface that reports an invalid
    sample — the case the guard layer's plausibility check exists for.
    """

    kind: ClassVar[str] = "dropout"

    core: Optional[int] = None
    unit: Optional[str] = None
    start_s: float = 0.0
    end_s: float = UNBOUNDED
    prob: float = 1.0
    mode: str = "last-good"

    def __post_init__(self):
        """Validate the window, target, probability and mode."""
        _check_window(self.start_s, self.end_s)
        _check_core(self.core)
        _check_prob(self.prob)
        if self.mode not in DROPOUT_MODES:
            raise ValueError(
                f"mode must be one of {DROPOUT_MODES}: {self.mode!r}"
            )

    @property
    def stochastic(self) -> bool:
        """Random unless ``prob == 1`` (then every read drops)."""
        return self.prob < 1.0


@dataclass(frozen=True)
class DriftFault(_WindowedFault):
    """Calibration drifts linearly while the window is open.

    ``rate_c_per_s x (t - start_s)`` is added to the reading (Rotem et
    al. observe exactly this slow walk in shipping diodes).
    """

    kind: ClassVar[str] = "drift"

    core: Optional[int] = None
    unit: Optional[str] = None
    start_s: float = 0.0
    end_s: float = UNBOUNDED
    rate_c_per_s: float = 1.0

    def __post_init__(self):
        """Validate the activation window and target."""
        _check_window(self.start_s, self.end_s)
        _check_core(self.core)


@dataclass(frozen=True)
class SpikeFault(_WindowedFault):
    """Transient spikes displacing a reading by ``magnitude_c``.

    Each read inside the window is displaced independently with
    probability ``prob`` (negative magnitudes model cold spikes).
    """

    kind: ClassVar[str] = "spike"

    core: Optional[int] = None
    unit: Optional[str] = None
    start_s: float = 0.0
    end_s: float = UNBOUNDED
    magnitude_c: float = 10.0
    prob: float = 0.01

    def __post_init__(self):
        """Validate the window, target and probability."""
        _check_window(self.start_s, self.end_s)
        _check_core(self.core)
        _check_prob(self.prob)

    @property
    def stochastic(self) -> bool:
        """Always random: each read draws its own spike decision."""
        return True


@dataclass(frozen=True)
class CalibrationStepFault(_WindowedFault):
    """A fixed offset appearing at ``start_s``.

    Models a calibration step, e.g. after a supply-voltage change
    disturbs the diode bias.
    """

    kind: ClassVar[str] = "calibration-step"

    core: Optional[int] = None
    unit: Optional[str] = None
    start_s: float = 0.0
    end_s: float = UNBOUNDED
    offset_c: float = -3.0

    def __post_init__(self):
        """Validate the activation window and target."""
        _check_window(self.start_s, self.end_s)
        _check_core(self.core)


# ---------------------------------------------------------------------------
# Actuator faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DVFSRejectFault(_WindowedFault):
    """A requested DVFS transition is rejected with probability ``prob``.

    The PLL stays at its current operating point and no penalty is paid
    (the request was simply lost).
    """

    kind: ClassVar[str] = "dvfs-reject"

    core: Optional[int] = None
    start_s: float = 0.0
    end_s: float = UNBOUNDED
    prob: float = 1.0

    def __post_init__(self):
        """Validate the window, target and probability."""
        _check_window(self.start_s, self.end_s)
        _check_core(self.core)
        _check_prob(self.prob)

    @property
    def stochastic(self) -> bool:
        """Random unless ``prob == 1`` (then every request is lost)."""
        return self.prob < 1.0


@dataclass(frozen=True)
class DVFSLatencyFault(_WindowedFault):
    """Accepted DVFS transitions stall the core for extra time.

    ``extra_penalty_s`` is added on top of the nominal PLL re-lock
    penalty.
    """

    kind: ClassVar[str] = "dvfs-latency"

    core: Optional[int] = None
    start_s: float = 0.0
    end_s: float = UNBOUNDED
    extra_penalty_s: float = 40e-6

    def __post_init__(self):
        """Validate the window, target and penalty sign."""
        _check_window(self.start_s, self.end_s)
        _check_core(self.core)
        if not self.extra_penalty_s >= 0:
            raise ValueError(
                f"extra_penalty_s must be >= 0: {self.extra_penalty_s}"
            )


@dataclass(frozen=True)
class MigrationDropFault(_WindowedFault):
    """An OS migration request is dropped with probability ``prob``.

    The scheduler believes it migrated, but no thread moves.
    """

    kind: ClassVar[str] = "migration-drop"

    start_s: float = 0.0
    end_s: float = UNBOUNDED
    prob: float = 1.0

    def __post_init__(self):
        """Validate the window and probability."""
        _check_window(self.start_s, self.end_s)
        _check_prob(self.prob)

    @property
    def stochastic(self) -> bool:
        """Random unless ``prob == 1`` (then every request is dropped)."""
        return self.prob < 1.0


#: Sensor-channel fault models (consulted at the sensor-read hook).
SENSOR_FAULT_TYPES: Tuple[type, ...] = (
    StuckAtFault,
    DropoutFault,
    DriftFault,
    SpikeFault,
    CalibrationStepFault,
)

#: Actuation fault models (consulted at the DVFS / migration hooks).
ACTUATOR_FAULT_TYPES: Tuple[type, ...] = (
    DVFSRejectFault,
    DVFSLatencyFault,
    MigrationDropFault,
)

#: ``kind`` string -> model class, the registry the JSON spec loader uses.
FAULT_REGISTRY: Dict[str, Type] = {
    cls.kind: cls for cls in SENSOR_FAULT_TYPES + ACTUATOR_FAULT_TYPES
}

AnyFault = Union[
    StuckAtFault,
    DropoutFault,
    DriftFault,
    SpikeFault,
    CalibrationStepFault,
    DVFSRejectFault,
    DVFSLatencyFault,
    MigrationDropFault,
]


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault models for one run.

    A plan is pure configuration: frozen, hashable, and canonicalizable,
    so it can live on :class:`~repro.sim.engine.SimulationConfig` and
    flow into the result-cache key. An *empty* plan is guaranteed to
    leave the simulation bit-identical to a run with no plan at all (the
    engine skips constructing an injector entirely).
    """

    faults: Tuple[AnyFault, ...] = ()
    name: str = ""

    def __post_init__(self):
        """Reject plans containing unregistered fault models."""
        for fault in self.faults:
            if type(fault) not in FAULT_REGISTRY.values():
                raise TypeError(
                    f"unknown fault model {type(fault).__name__!r}; known "
                    f"kinds: {sorted(FAULT_REGISTRY)}"
                )

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing."""
        return not self.faults

    @property
    def sensor_faults(self) -> Tuple[AnyFault, ...]:
        """The plan's sensor-channel faults, in plan order."""
        return tuple(
            f for f in self.faults if isinstance(f, SENSOR_FAULT_TYPES)
        )

    @property
    def actuator_faults(self) -> Tuple[AnyFault, ...]:
        """The plan's actuation faults, in plan order."""
        return tuple(
            f for f in self.faults if isinstance(f, ACTUATOR_FAULT_TYPES)
        )

    def validate_targets(self, n_cores: int, units: Tuple[str, ...]) -> None:
        """Raise if any fault names a core or unit the machine lacks."""
        for fault in self.faults:
            core = getattr(fault, "core", None)
            if core is not None and core >= n_cores:
                raise ValueError(
                    f"{type(fault).__name__} targets core {core}, but the "
                    f"machine has {n_cores} cores"
                )
            unit = getattr(fault, "unit", None)
            if unit is not None and unit not in units:
                raise ValueError(
                    f"{type(fault).__name__} targets unit {unit!r}; "
                    f"monitored units: {units}"
                )

    # -- JSON spec ---------------------------------------------------------

    def to_spec(self) -> Dict[str, object]:
        """The plan as a JSON-safe spec dictionary.

        Unbounded window ends serialise as the string ``"inf"`` so spec
        files stay strict JSON.
        """
        faults: List[Dict[str, object]] = []
        for fault in self.faults:
            entry: Dict[str, object] = {"kind": fault.kind}
            for f in dataclasses.fields(fault):
                value = getattr(fault, f.name)
                if f.name == "end_s" and value == UNBOUNDED:
                    value = "inf"
                entry[f.name] = value
            faults.append(entry)
        return {"name": self.name, "faults": faults}

    @staticmethod
    def from_spec(spec: Dict[str, object]) -> "FaultPlan":
        """Build a plan from a spec dictionary (inverse of :meth:`to_spec`)."""
        if not isinstance(spec, dict):
            raise ValueError(f"fault spec must be an object, got {type(spec)}")
        faults = []
        for entry in spec.get("faults", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            cls = FAULT_REGISTRY.get(kind)
            if cls is None:
                raise ValueError(
                    f"unknown fault kind {kind!r}; known: {sorted(FAULT_REGISTRY)}"
                )
            if entry.get("end_s") in ("inf", "Infinity"):
                entry["end_s"] = UNBOUNDED
            try:
                faults.append(cls(**entry))
            except TypeError as exc:
                raise ValueError(f"bad {kind!r} fault spec: {exc}") from exc
        return FaultPlan(
            faults=tuple(faults), name=str(spec.get("name", ""))
        )

    def to_json(self) -> str:
        """The spec as pretty-printed JSON text."""
        return json.dumps(self.to_spec(), indent=2)

    @staticmethod
    def from_json_file(path: os.PathLike) -> "FaultPlan":
        """Load a plan from a JSON spec file.

        Any ``guards`` section is ignored here; see
        :func:`~repro.faults.plan_from_file` for the combined loader.
        """
        with open(path, "r", encoding="utf-8") as fh:
            return FaultPlan.from_spec(json.load(fh))


# ---------------------------------------------------------------------------
# Per-run roll-up
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSummary:
    """Fault-injection and guard accounting on a run result.

    Attached to :class:`~repro.sim.results.RunResult`;
    ``None`` on the result when the run had neither a fault plan nor a
    guard configuration, keeping un-faulted results identical to the
    pre-fault engine's.
    """

    #: Sensor channel-readings altered by any sensor fault.
    sensor_faulted_samples: int = 0
    #: DVFS transitions rejected by a fault (requests lost at the PLL).
    dvfs_rejected: int = 0
    #: DVFS transitions whose penalty a latency fault extended.
    dvfs_delayed: int = 0
    #: OS migration requests dropped in delivery.
    migrations_dropped: int = 0
    #: Guard watchdog trips (cores entering sensor-distrust fallback).
    guard_trips: int = 0
    #: Total core-seconds spent in guard fallback throttling.
    guard_fallback_s: float = 0.0

    @property
    def total_injected(self) -> int:
        """All injected fault occurrences (sensor + actuation)."""
        return (
            self.sensor_faulted_samples
            + self.dvfs_rejected
            + self.dvfs_delayed
            + self.migrations_dropped
        )
