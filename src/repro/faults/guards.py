"""Sensor-sanity watchdog and graceful-degradation fallback.

A DTM policy fed a stuck or implausible sensor is worse than no policy:
a channel stuck *low* silently disables throttling while the silicon
cooks, and a NaN or physically impossible reading can drive a PI
controller to garbage. The guard layer is the production-grade defense
the paper's idealized setting never needed:

* a per-channel **watchdog** flags a reading as *implausible* (NaN,
  outside a plausible temperature band, or jumping further in one sample
  period than silicon thermal mass allows) and as *stuck* (bit-identical
  for an implausibly long streak — silicon temperature under closed-loop
  control never sits perfectly still for tens of milliseconds unless the
  readings are quantized, which the default streak length accommodates);
* when any channel of a core trips, the core **falls back from its
  closed-loop throttle to blind stop-go**: a fixed, sensor-independent
  duty cycle that bounds the core's power by construction. DVFS cannot
  be trusted with garbage feedback, but periodic clock gating needs no
  feedback at all — this is the graceful-degradation path, and the
  robustness harness evaluates its cost like any other mechanism;
* a tripped core **recovers** after its readings stay sane for a
  configurable streak, returning control to the policy.

The guard observes exactly what the policy observes (post-fault
readings); it has no access to ground truth. Detection is therefore
fallible in both directions — which is the point of evaluating it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class GuardConfig:
    """Configuration of the sensor-sanity guard layer.

    Attributes
    ----------
    stuck_steps:
        Consecutive bit-identical samples on one channel before it is
        declared stuck. At the 27.78 us sample period the default
        (1440 steps = ~40 ms) is several thermal time constants — real
        controlled silicon wanders by more than one quantization grid
        over that horizon.
    min_plausible_c / max_plausible_c:
        Physical plausibility band; readings outside it (or NaN) trip
        immediately.
    max_step_c:
        Largest credible single-sample change. Thermal mass limits true
        silicon to small fractions of a degree per 27.78 us; the default
        (15 C) only catches gross transients (spikes, rail shorts).
    recovery_steps:
        Consecutive sane samples on every channel of a tripped core
        before control returns to the policy.
    fallback_period_s / fallback_duty:
        The blind stop-go law applied while tripped: each period the
        core runs for ``duty`` of the period and is clock-gated for the
        rest, phase-anchored at the trip instant.
    """

    stuck_steps: int = 1440
    min_plausible_c: float = 0.0
    max_plausible_c: float = 150.0
    max_step_c: float = 15.0
    recovery_steps: int = 360
    fallback_period_s: float = 30e-3
    fallback_duty: float = 0.5

    def __post_init__(self):
        """Validate thresholds, streak lengths and the fallback law."""
        if not self.stuck_steps >= 2:
            raise ValueError(f"stuck_steps must be >= 2: {self.stuck_steps}")
        if not self.max_plausible_c > self.min_plausible_c:
            raise ValueError(
                "plausibility band is empty: "
                f"[{self.min_plausible_c}, {self.max_plausible_c}]"
            )
        if not self.max_step_c > 0:
            raise ValueError(f"max_step_c must be positive: {self.max_step_c}")
        if not self.recovery_steps >= 1:
            raise ValueError(
                f"recovery_steps must be >= 1: {self.recovery_steps}"
            )
        if not self.fallback_period_s > 0:
            raise ValueError(
                f"fallback_period_s must be positive: {self.fallback_period_s}"
            )
        if not 0.0 < self.fallback_duty <= 1.0:
            raise ValueError(
                f"fallback_duty must be in (0, 1]: {self.fallback_duty}"
            )


class SensorGuardBank:
    """Per-core sensor watchdogs plus the blind stop-go fallback.

    The engine calls :meth:`observe` once per step with the readings the
    policies are about to see, then :meth:`override` per core to learn
    whether (and how) the guard overrides the policy's scale.
    """

    def __init__(
        self, n_cores: int, n_units: int, dt: float, config: GuardConfig
    ):
        """Size the watchdog state for ``n_cores`` x ``n_units`` channels."""
        if n_cores < 1 or n_units < 1:
            raise ValueError("need at least one core and one unit")
        if not dt > 0:
            raise ValueError(f"dt must be positive: {dt}")
        self.config = config
        self.n_cores = n_cores
        self.n_units = n_units
        self.dt = dt

        self._prev = np.full((n_cores, n_units), np.nan)
        self._have_prev = False
        self._stuck_streak = np.zeros((n_cores, n_units), dtype=int)
        self._sane_streak = np.zeros(n_cores, dtype=int)
        self._fallback = [False] * n_cores
        self._trip_time_s = [0.0] * n_cores

        #: Watchdog trips over the run (fallback entries).
        self.trips = 0
        #: Recoveries (fallback exits) over the run.
        self.clears = 0
        #: Core-steps spent under fallback control.
        self.fallback_steps = 0

    @property
    def fallback_s(self) -> float:
        """Total core-seconds spent in fallback."""
        return self.fallback_steps * self.dt

    def _suspect_cores(self, temps: np.ndarray) -> np.ndarray:
        """Per-core suspicion verdict for this step's readings."""
        cfg = self.config
        implausible = (
            np.isnan(temps)
            | (temps < cfg.min_plausible_c)
            | (temps > cfg.max_plausible_c)
        )
        if self._have_prev:
            delta = np.abs(temps - self._prev)
            # NaN deltas (NaN now or before) are already implausible.
            jumped = np.nan_to_num(delta, nan=0.0) > cfg.max_step_c
            same = (temps == self._prev) | (
                np.isnan(temps) & np.isnan(self._prev)
            )
            self._stuck_streak = np.where(same, self._stuck_streak + 1, 0)
        else:
            jumped = np.zeros_like(implausible)
        stuck = self._stuck_streak >= (cfg.stuck_steps - 1)
        return (implausible | jumped | stuck).any(axis=1)

    def observe(
        self, time_s: float, readings: List[Dict[str, float]]
    ) -> List[Tuple[int, str]]:
        """Fold one step of readings into the watchdog state.

        Returns ``(core, "trip"|"clear")`` transitions in core order
        (empty on steady states).
        """
        temps = np.array(
            [list(r.values()) for r in readings], dtype=float
        )
        if temps.shape != (self.n_cores, self.n_units):
            raise ValueError(
                f"expected readings shaped {(self.n_cores, self.n_units)}, "
                f"got {temps.shape}"
            )
        suspect = self._suspect_cores(temps)
        self._prev = temps
        self._have_prev = True

        transitions: List[Tuple[int, str]] = []
        for c in range(self.n_cores):
            if self._fallback[c]:
                self.fallback_steps += 1
                if suspect[c]:
                    self._sane_streak[c] = 0
                else:
                    self._sane_streak[c] += 1
                    if self._sane_streak[c] >= self.config.recovery_steps:
                        self._fallback[c] = False
                        self._sane_streak[c] = 0
                        self.clears += 1
                        transitions.append((c, "clear"))
            elif suspect[c]:
                self._fallback[c] = True
                self._trip_time_s[c] = time_s
                self._sane_streak[c] = 0
                self.trips += 1
                transitions.append((c, "trip"))
        return transitions

    def override(self, core: int, time_s: float) -> Optional[float]:
        """The guard's scale override for ``core`` at ``time_s``.

        ``None`` while the core's sensors are trusted; otherwise the
        blind stop-go fallback's 1.0 (run) or 0.0 (clock-gated), phased
        from the trip instant.
        """
        if not self._fallback[core]:
            return None
        cfg = self.config
        phase = (time_s - self._trip_time_s[core]) % cfg.fallback_period_s
        return 1.0 if phase < cfg.fallback_duty * cfg.fallback_period_s else 0.0

    def in_fallback(self, core: int) -> bool:
        """Whether ``core`` is currently under fallback control."""
        return self._fallback[core]
