"""Runtime fault injection for one simulation.

The engine owns one :class:`FaultInjector` per run *only when the
configured* :class:`~repro.faults.models.FaultPlan` *is non-empty*, and
consults it at exactly three points:

* **sensor read** — after the static degradation pipeline (offset,
  noise, quantization), the per-core hotspot temperature matrix passes
  through :meth:`FaultInjector.apply_sensor_faults`;
* **DVFS actuation** — :class:`~repro.core.dvfs.DVFSActuator` calls the
  injector-backed ``fault_gate`` before committing a PLL re-lock
  (:meth:`FaultInjector.dvfs_request`);
* **migration delivery** — :class:`~repro.core.migration.MigrationPolicy`
  passes accepted proposals through ``request_filter``
  (:meth:`FaultInjector.migration_request`).

Determinism: every stochastic fault draws from its own
:class:`~repro.util.rng.RngStream` derived from the run seed and the
fault's plan index, so injection is bit-reproducible, independent of
whether an event log is attached, and identical across serial and
process-pool execution. Overlapping sensor faults apply in plan order
(later faults transform earlier faults' output).

Event capture is opt-in: with a :class:`~repro.obs.events.RunEventLog`
attached, the injector emits ``fault.sensor`` on each windowed fault's
activation edge (plus one per step for spike occurrences), ``fault.dvfs``
per rejected/stretched transition, and ``fault.migration`` per dropped
request. Emission never feeds back into the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.models import (
    CalibrationStepFault,
    DriftFault,
    DropoutFault,
    DVFSLatencyFault,
    DVFSRejectFault,
    FaultPlan,
    FaultSummary,
    MigrationDropFault,
    SpikeFault,
    StuckAtFault,
)
from repro.obs.events import RunEventLog
from repro.util.rng import RngStream

_SENSOR_KINDS = (
    StuckAtFault,
    DropoutFault,
    DriftFault,
    SpikeFault,
    CalibrationStepFault,
)


class FaultInjector:
    """Applies one :class:`FaultPlan` to one run, deterministically.

    Parameters
    ----------
    plan:
        The (non-empty) fault plan.
    n_cores:
        Core count of the simulated machine.
    units:
        Monitored hotspot unit names, in sensor-matrix column order.
    seed:
        The run's root seed; per-fault streams derive from it.
    event_log:
        Optional event capture; never influences injection.
    """

    def __init__(
        self,
        plan: FaultPlan,
        n_cores: int,
        units: Sequence[str],
        seed: int,
        event_log: Optional[RunEventLog] = None,
    ):
        """Validate targets and derive one RNG stream per stochastic fault."""
        plan.validate_targets(n_cores, tuple(units))
        self.plan = plan
        self.n_cores = n_cores
        self.units = tuple(units)
        self.event_log = event_log

        # One independent stream per stochastic fault, keyed by its plan
        # index so editing one fault never perturbs another's draws.
        self._rng: Dict[int, RngStream] = {
            i: RngStream(seed, "fault", str(i), fault.kind)
            for i, fault in enumerate(plan.faults)
            if fault.stochastic
        }

        self._sensor_faults: List[Tuple[int, object]] = []
        self._dvfs_faults: List[Tuple[int, object]] = []
        self._migration_faults: List[Tuple[int, object]] = []
        for i, fault in enumerate(plan.faults):
            if isinstance(fault, _SENSOR_KINDS):
                self._sensor_faults.append((i, fault))
            elif isinstance(fault, (DVFSRejectFault, DVFSLatencyFault)):
                self._dvfs_faults.append((i, fault))
            else:
                assert isinstance(fault, MigrationDropFault)
                self._migration_faults.append((i, fault))

        # Channel-selection masks (n_cores, n_units), one per sensor fault.
        self._masks: Dict[int, np.ndarray] = {}
        for i, fault in self._sensor_faults:
            mask = np.zeros((n_cores, len(self.units)), dtype=bool)
            rows = slice(None) if fault.core is None else fault.core
            if fault.unit is None:
                mask[rows, :] = True
            else:
                mask[rows, self.units.index(fault.unit)] = True
            self._masks[i] = mask

        # Last *delivered* reading per channel (post-fault), the substrate
        # for stuck-at-last-value latching and last-good dropout.
        self._last_output: Optional[np.ndarray] = None
        self._latches: Dict[int, np.ndarray] = {}
        self._was_active: Dict[int, bool] = {
            i: False for i, _ in self._sensor_faults
        }

        # Counters folded into the run's FaultSummary.
        self.sensor_faulted_samples = 0
        self.dvfs_rejected = 0
        self.dvfs_delayed = 0
        self.migrations_dropped = 0

    # -- event helpers -----------------------------------------------------

    def _emit(self, time_s: float, event_type: str, core=None, **data) -> None:
        if self.event_log is not None:
            self.event_log.emit(time_s, event_type, core, **data)

    # -- sensor hook -------------------------------------------------------

    def apply_sensor_faults(self, time_s: float, temps: np.ndarray) -> np.ndarray:
        """Transform one step's sensor matrix; returns a new array.

        ``temps`` is the ``(n_cores, n_units)`` matrix after the static
        degradation pipeline; the input is never mutated.
        """
        out = np.array(temps, dtype=float, copy=True)
        for i, fault in self._sensor_faults:
            active = fault.active(time_s)
            if active and not self._was_active[i]:
                self._emit(
                    time_s,
                    "fault.sensor",
                    fault.core,
                    kind=fault.kind,
                    unit=fault.unit,
                    end_s=(None if fault.end_s == np.inf else fault.end_s),
                )
            self._was_active[i] = active
            if not active:
                continue
            mask = self._masks[i]
            n_sel = int(mask.sum())
            if isinstance(fault, StuckAtFault):
                if i not in self._latches:
                    # Latch the channel's last delivered reading (or the
                    # current one when the fault opens at the first read).
                    source = (
                        self._last_output
                        if self._last_output is not None
                        else out
                    )
                    self._latches[i] = np.where(mask, source, 0.0)
                if fault.value_c is not None:
                    out[mask] = fault.value_c
                else:
                    out[mask] = self._latches[i][mask]
                self.sensor_faulted_samples += n_sel
            elif isinstance(fault, DropoutFault):
                if fault.prob >= 1.0:
                    dropped = mask
                else:
                    draws = self._rng[i].uniform(size=(out.shape))
                    dropped = mask & (draws < fault.prob)
                n_drop = int(dropped.sum())
                if n_drop:
                    if fault.mode == "nan":
                        out[dropped] = np.nan
                        self.sensor_faulted_samples += n_drop
                    elif self._last_output is not None:
                        out[dropped] = self._last_output[dropped]
                        self.sensor_faulted_samples += n_drop
                    # else: no previous delivery to repeat — the very
                    # first read passes through unchanged and is *not*
                    # counted (only altered samples are faulted samples).
            elif isinstance(fault, DriftFault):
                out[mask] += fault.rate_c_per_s * (time_s - fault.start_s)
                self.sensor_faulted_samples += n_sel
            elif isinstance(fault, SpikeFault):
                draws = self._rng[i].uniform(size=(out.shape))
                spiking = mask & (draws < fault.prob)
                n_spike = int(spiking.sum())
                if n_spike:
                    out[spiking] += fault.magnitude_c
                    self.sensor_faulted_samples += n_spike
                    self._emit(
                        time_s,
                        "fault.sensor",
                        fault.core,
                        kind=fault.kind,
                        unit=fault.unit,
                        channels=n_spike,
                        magnitude_c=fault.magnitude_c,
                    )
            else:
                assert isinstance(fault, CalibrationStepFault)
                out[mask] += fault.offset_c
                self.sensor_faulted_samples += n_sel
        self._last_output = out
        return out

    # -- DVFS hook ---------------------------------------------------------

    def dvfs_request(
        self, time_s: float, core: int, requested: float, current: float
    ) -> Tuple[bool, float]:
        """Gate one would-be-committed DVFS transition.

        Returns ``(allow, extra_penalty_s)``. Called by the actuator only
        for requests that pass the 2% minimum-transition filter, so every
        stochastic draw corresponds to a real PLL re-lock attempt.
        """
        allow = True
        extra = 0.0
        for i, fault in self._dvfs_faults:
            if not fault.active(time_s):
                continue
            if fault.core is not None and fault.core != core:
                continue
            if isinstance(fault, DVFSRejectFault):
                hit = fault.prob >= 1.0 or bool(
                    self._rng[i].uniform() < fault.prob
                )
                if hit and allow:
                    allow = False
                    self.dvfs_rejected += 1
                    self._emit(
                        time_s,
                        "fault.dvfs",
                        core,
                        kind=fault.kind,
                        requested=requested,
                        current=current,
                    )
            else:
                extra += fault.extra_penalty_s
        if allow and extra > 0.0:
            self.dvfs_delayed += 1
            self._emit(
                time_s,
                "fault.dvfs",
                core,
                kind=DVFSLatencyFault.kind,
                extra_penalty_s=extra,
            )
        return allow, (extra if allow else 0.0)

    def dvfs_gate_for(self, core: int):
        """A per-core ``fault_gate`` for :class:`~repro.core.dvfs.DVFSActuator`."""

        def gate(time_s: float, requested: float, current: float):
            return self.dvfs_request(time_s, core, requested, current)

        return gate

    # -- migration hook ----------------------------------------------------

    def migration_request(
        self, time_s: float, proposal: Sequence[int]
    ) -> bool:
        """Whether an accepted migration proposal is actually delivered."""
        for i, fault in self._migration_faults:
            if not fault.active(time_s):
                continue
            hit = fault.prob >= 1.0 or bool(
                self._rng[i].uniform() < fault.prob
            )
            if hit:
                self.migrations_dropped += 1
                self._emit(
                    time_s,
                    "fault.migration",
                    None,
                    kind=fault.kind,
                    assignment=list(proposal),
                )
                return False
        return True

    # -- roll-up -----------------------------------------------------------

    def summary_counts(self) -> Dict[str, int]:
        """The injector's counters as a plain dict (guard fields excluded)."""
        return {
            "sensor_faulted_samples": self.sensor_faulted_samples,
            "dvfs_rejected": self.dvfs_rejected,
            "dvfs_delayed": self.dvfs_delayed,
            "migrations_dropped": self.migrations_dropped,
        }


class FleetFaultInjector:
    """Batched stream-replay of one :class:`FaultPlan` over a cohort.

    The fleet engine groups the members of a lockstep batch that carry
    *equal* fault plans into cohorts and drives each cohort through one
    ``FleetFaultInjector`` wrapping the members' real scalar
    :class:`FaultInjector` objects. The bit-identity argument is stream
    replay, not re-derivation: every stochastic fault owns a per-member
    ``RngStream`` (keyed by run seed and plan index), and the scalar
    injector draws exactly one ``uniform(size=(cores, units))`` matrix
    per active stochastic fault per step. This class replays those same
    streams — per step, per member (ascending row order), per fault in
    plan order — so each member's draw *sequence* is identical to its
    scalar run by construction; the streams are mutually independent, so
    interleaving them across members cannot change any member's values.
    Only the mask/latch/drift/spike *transforms* are vectorised, over
    the ``(members, cores, units)`` stack, and each is elementwise
    (shape-invariant, hence bitwise equal to the scalar transform).

    Latch creation, activation windows and first-read handling are
    cohort-uniform because all members enter the batch at step 0 and
    only retire (shrink the alive prefix) — they never join late.

    Sensor-fault counters accumulate per member in a batched array;
    :meth:`flush` / :meth:`flush_all` write them back onto the real
    injectors, whose ``sensor_faulted_samples`` the telemetry closures
    and :class:`FaultSummary` read. DVFS and migration fault hooks are
    *not* batched here: the fleet calls each member's real
    :meth:`FaultInjector.dvfs_request` / ``migration_request`` at the
    same decision points the scalar engine would, so those counters and
    streams advance on the real objects directly.
    """

    def __init__(self, injectors: Sequence[FaultInjector]):
        """Wrap one cohort; all injectors must share an equal plan."""
        if not injectors:
            raise ValueError("fault cohort must contain at least one member")
        self.injectors = list(injectors)
        base = self.injectors[0]
        for inj in self.injectors[1:]:
            if inj.plan != base.plan:
                raise ValueError(
                    "fault cohort members must share an equal FaultPlan"
                )
        self.n = len(self.injectors)
        self.plan = base.plan
        self._sensor_faults = base._sensor_faults
        self._masks = base._masks
        shape = (self.n, base.n_cores, len(base.units))
        self._last_output = np.zeros(shape)
        self._has_last = False
        self._latches: Dict[int, np.ndarray] = {}
        #: Per-member altered-sample counters (flushed onto the real
        #: injectors, never read directly by consumers).
        self.sensor_faulted_samples = np.zeros(self.n, dtype=np.int64)

    def apply_sensor_faults(self, time_s: float, temps: np.ndarray) -> np.ndarray:
        """Transform one step's stacked sensor matrices; returns a new array.

        ``temps`` is the ``(k, n_cores, n_units)`` stack for the
        cohort's first ``k`` (still-alive) members; rows beyond ``k``
        retired and stop drawing, exactly as their finished scalar runs
        would have.
        """
        k = temps.shape[0]
        out = np.array(temps, dtype=float, copy=True)
        counts = self.sensor_faulted_samples
        for i, fault in self._sensor_faults:
            if not fault.active(time_s):
                continue
            mask = self._masks[i]
            n_sel = int(mask.sum())
            if isinstance(fault, StuckAtFault):
                if i not in self._latches:
                    latch = np.zeros(self._last_output.shape)
                    source = self._last_output[:k] if self._has_last else out
                    latch[:k] = np.where(mask[None], source, 0.0)
                    self._latches[i] = latch
                if fault.value_c is not None:
                    out[:, mask] = fault.value_c
                else:
                    out[:, mask] = self._latches[i][:k][:, mask]
                counts[:k] += n_sel
            elif isinstance(fault, DropoutFault):
                if fault.prob >= 1.0:
                    dropped = np.broadcast_to(mask[None], out.shape)
                else:
                    draws = np.stack(
                        [
                            inj._rng[i].uniform(size=mask.shape)
                            for inj in self.injectors[:k]
                        ]
                    )
                    dropped = mask[None] & (draws < fault.prob)
                if fault.mode == "nan":
                    out[dropped] = np.nan
                    counts[:k] += dropped.reshape(k, -1).sum(axis=1)
                elif self._has_last:
                    out[dropped] = self._last_output[:k][dropped]
                    counts[:k] += dropped.reshape(k, -1).sum(axis=1)
                # else: very first read — passes through, not counted.
            elif isinstance(fault, DriftFault):
                out[:, mask] += fault.rate_c_per_s * (time_s - fault.start_s)
                counts[:k] += n_sel
            elif isinstance(fault, SpikeFault):
                draws = np.stack(
                    [
                        inj._rng[i].uniform(size=mask.shape)
                        for inj in self.injectors[:k]
                    ]
                )
                spiking = mask[None] & (draws < fault.prob)
                out[spiking] += fault.magnitude_c
                counts[:k] += spiking.reshape(k, -1).sum(axis=1)
            else:
                assert isinstance(fault, CalibrationStepFault)
                out[:, mask] += fault.offset_c
                counts[:k] += n_sel
        self._last_output[:k] = out
        self._has_last = True
        return out

    def flush(self, member: int) -> None:
        """Write one member's batched sensor counter onto its injector."""
        self.injectors[member].sensor_faulted_samples = int(
            self.sensor_faulted_samples[member]
        )

    def flush_all(self) -> None:
        """Write every member's batched sensor counter back."""
        for j in range(self.n):
            self.flush(j)


__all__ = ["FaultInjector", "FleetFaultInjector", "FaultSummary"]
