"""Telemetry export formats: JSONL/CSV series, Prometheus text, Chrome trace.

Four serialisations of the observability layer's data, all dependency-free:

* :func:`write_series_jsonl` / :func:`read_series_jsonl` — a
  :class:`~repro.obs.telemetry.TelemetrySeries` as a self-describing
  JSON-lines file (header record + one row record per sample);
* :func:`write_series_csv` — the same series as one CSV table for
  spreadsheet/pandas consumption;
* :func:`prometheus_text` / :func:`parse_prometheus_text` — a
  :class:`~repro.obs.telemetry.MetricsRegistry` snapshot in the
  Prometheus text exposition format (``# HELP`` / ``# TYPE`` comments,
  cumulative histogram buckets);
* :func:`profile_trace_events` / :func:`runner_trace_events` /
  :func:`write_chrome_trace` — Chrome trace-event JSON (the format
  Perfetto and ``chrome://tracing`` load) built from
  :class:`~repro.obs.profiler.StepProfiler` sections and
  :class:`~repro.sim.runner.ParallelRunner` per-worker spans, with
  run -> section nesting and one lane per worker process.
"""

from __future__ import annotations

import csv
import json
import math
import os
from typing import Dict, List, Optional, Sequence, TextIO, Union

from repro.obs.profiler import ENGINE_SECTIONS
from repro.obs.telemetry import MetricsRegistry, TelemetrySeries

#: Schema identifier of the JSONL series export's header record.
SERIES_SCHEMA = "repro-telemetry/1"

_Dest = Union[str, os.PathLike, TextIO]


def _open_dest(dest: _Dest, mode: str = "w"):
    """``(file object, needs_close)`` for a path or open file object."""
    if hasattr(dest, "write") or hasattr(dest, "read"):
        return dest, False
    return open(dest, mode, encoding="utf-8", newline=""), True


# ---------------------------------------------------------------------------
# Time-series: JSONL and CSV
# ---------------------------------------------------------------------------


def write_series_jsonl(series: TelemetrySeries, dest: _Dest) -> None:
    """Write a series as JSONL: one header record, then one row per sample.

    Header: ``{"schema", "sample_period_s", "columns"}``; rows:
    ``{"t": <seconds>, "v": [<value per column>]}`` with values aligned
    to the header's column order. Floats round-trip exactly (JSON uses
    the shortest exact ``repr``).
    """
    fh, close = _open_dest(dest)
    try:
        header = {
            "schema": SERIES_SCHEMA,
            "sample_period_s": series.sample_period_s,
            "columns": list(series.columns),
        }
        fh.write(json.dumps(header, separators=(",", ":")) + "\n")
        for t, values in series.rows():
            fh.write(
                json.dumps({"t": t, "v": values}, separators=(",", ":")) + "\n"
            )
    finally:
        if close:
            fh.close()


def read_series_jsonl(src: _Dest) -> TelemetrySeries:
    """Load a series written by :func:`write_series_jsonl`."""
    fh, close = _open_dest(src, "r")
    try:
        lines = [line.strip() for line in fh if line.strip()]
    finally:
        if close:
            fh.close()
    if not lines:
        raise ValueError("empty telemetry series file")
    header = json.loads(lines[0])
    if header.get("schema") != SERIES_SCHEMA:
        raise ValueError(
            f"expected series schema {SERIES_SCHEMA!r}, got "
            f"{header.get('schema')!r}"
        )
    series = TelemetrySeries(header["sample_period_s"], header["columns"])
    for line in lines[1:]:
        record = json.loads(line)
        series.append(record["t"], record["v"])
    return series


def write_series_csv(series: TelemetrySeries, dest: _Dest) -> None:
    """Write a series as one CSV table: ``t`` plus one column per series."""
    fh, close = _open_dest(dest)
    try:
        writer = csv.writer(fh)
        writer.writerow(["t"] + list(series.columns))
        for t, values in series.rows():
            writer.writerow([repr(t)] + [repr(v) for v in values])
    finally:
        if close:
            fh.close()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _format_value(value: float) -> str:
    """A Prometheus-parseable number (``+Inf``/``-Inf``/``NaN`` spelled out)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _format_labels(labels, extra: Optional[Dict[str, str]] = None) -> str:
    """``{k="v",...}`` (empty string when there are no labels)."""
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """A registry snapshot in the Prometheus text exposition format.

    One ``# HELP`` / ``# TYPE`` pair per metric name (first-registered
    help wins), then every labelled sample. Histograms expand to
    cumulative ``_bucket{le=...}`` samples (including ``le="+Inf"``)
    plus ``_sum`` and ``_count``.
    """
    by_name: Dict[str, List] = {}
    for inst in registry.collect():
        by_name.setdefault(inst.name, []).append(inst)
    lines: List[str] = []
    for name, instruments in by_name.items():
        first = instruments[0]
        if first.help:
            lines.append(f"# HELP {name} {first.help}")
        lines.append(f"# TYPE {name} {first.kind}")
        for inst in instruments:
            if inst.kind == "histogram":
                cumulative = inst.cumulative_counts()
                bounds = [_format_value(b) for b in inst.buckets] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    labels = _format_labels(inst.labels, {"le": bound})
                    lines.append(f"{name}_bucket{labels} {count}")
                labels = _format_labels(inst.labels)
                lines.append(f"{name}_sum{labels} {_format_value(inst.sum)}")
                lines.append(f"{name}_count{labels} {inst.count}")
            else:
                labels = _format_labels(inst.labels)
                lines.append(f"{name}{labels} {_format_value(inst.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{series id: value}``.

    A deliberately small parser for round-trip tests and the report
    loader: comment/blank lines are skipped, every sample line must be
    ``name[{labels}] value``.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        if not series:
            raise ValueError(f"malformed exposition line: {line!r}")
        out[series] = float(value)
    return out


def write_prometheus(registry: MetricsRegistry, dest: _Dest) -> None:
    """Write :func:`prometheus_text` of ``registry`` to ``dest``."""
    fh, close = _open_dest(dest)
    try:
        fh.write(prometheus_text(registry))
    finally:
        if close:
            fh.close()


# ---------------------------------------------------------------------------
# Chrome trace events (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------


def _complete_event(
    name: str,
    cat: str,
    ts_us: float,
    dur_us: float,
    pid: int,
    tid: int,
    args: Optional[Dict] = None,
) -> Dict:
    """One ``ph: "X"`` (complete) trace event."""
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": ts_us,
        "dur": dur_us,
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


def _metadata_event(kind: str, name: str, pid: int, tid: int = 0) -> Dict:
    """A ``ph: "M"`` metadata event naming a process or thread lane."""
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def profile_trace_events(
    profile: Dict[str, Dict[str, float]],
    label: str = "engine run",
    pid: int = 0,
    tid: int = 0,
    start_ts_us: float = 0.0,
) -> List[Dict]:
    """Trace events for one profiled run's engine sections.

    ``profile`` is :meth:`repro.obs.profiler.StepProfiler.as_dict`
    output. The run becomes one enclosing span; each section becomes a
    child span nested inside it, laid out sequentially in canonical
    section order (sections are per-step aggregates, so the layout shows
    *shares*, not original interleaving — counts/mean/max ride along in
    ``args``).
    """
    ordered = [n for n in ENGINE_SECTIONS if n in profile] + [
        n for n in profile if n not in ENGINE_SECTIONS
    ]
    total_us = sum(profile[n]["total_s"] for n in ordered) * 1e6
    events = [
        _metadata_event("process_name", "repro engine", pid),
        _complete_event(
            label,
            "run",
            start_ts_us,
            total_us,
            pid,
            tid,
            {"sections": len(ordered)},
        ),
    ]
    cursor = start_ts_us
    for name in ordered:
        stats = profile[name]
        dur_us = stats["total_s"] * 1e6
        events.append(
            _complete_event(
                name,
                "section",
                cursor,
                dur_us,
                pid,
                tid,
                {
                    "count": stats["count"],
                    "mean_us": stats["mean_s"] * 1e6,
                    "max_us": stats["max_s"] * 1e6,
                },
            )
        )
        cursor += dur_us
    return events


def runner_trace_events(reports: Sequence) -> List[Dict]:
    """Trace events for a batch of :class:`~repro.sim.runner.PointReport` s.

    One lane (trace ``pid``) per worker process, one span per simulated
    point placed at its recorded wall-clock start, and — when the point
    was profiled — its engine sections nested inside the span. Cache
    hits are skipped (they have no execution span).
    """
    spans = [r for r in reports if not r.cache_hit and r.elapsed_s > 0]
    if not spans:
        return []
    t0 = min(r.started_at for r in spans)
    events: List[Dict] = []
    for pid in sorted({r.pid for r in spans}):
        events.append(_metadata_event("process_name", f"worker pid {pid}", pid))
    for report in spans:
        ts_us = (report.started_at - t0) * 1e6
        dur_us = report.elapsed_s * 1e6
        events.append(
            _complete_event(
                report.label,
                "run",
                ts_us,
                dur_us,
                report.pid,
                0,
                {"cache_key": report.key[:12]},
            )
        )
        if report.sections:
            cursor = ts_us
            ordered = [n for n in ENGINE_SECTIONS if n in report.sections] + [
                n for n in report.sections if n not in ENGINE_SECTIONS
            ]
            for name in ordered:
                section_us = report.sections[name] * 1e6
                events.append(
                    _complete_event(name, "section", cursor, section_us,
                                    report.pid, 0)
                )
                cursor += section_us
    return events


def span_trace_events(spans: Sequence) -> List[Dict]:
    """Trace events for a merged set of :class:`~repro.obs.tracing.Span` s.

    One lane per recording process (client, server, pool workers), each
    span placed at its wall-clock offset from the earliest span, with
    ids/kind/attrs in ``args`` so Perfetto's query view can reconstruct
    parentage. Works on whatever ``GET /jobs/<id>/trace`` returned.
    """
    spans = list(spans)
    if not spans:
        return []
    t0 = min(s.started_at for s in spans)
    events: List[Dict] = []
    for pid in sorted({s.pid for s in spans}):
        events.append(_metadata_event("process_name", f"pid {pid}", pid))
    for span in spans:
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id or "",
        }
        args.update(span.attrs)
        events.append(
            _complete_event(
                span.name,
                span.kind,
                (span.started_at - t0) * 1e6,
                span.elapsed_s * 1e6,
                span.pid,
                0,
                args,
            )
        )
    return events


def write_chrome_trace(events: Sequence[Dict], dest: _Dest) -> None:
    """Write trace events as a Chrome/Perfetto-loadable JSON object."""
    fh, close = _open_dest(dest)
    try:
        json.dump(
            {"traceEvents": list(events), "displayTimeUnit": "ms"},
            fh,
            separators=(",", ":"),
        )
        fh.write("\n")
    finally:
        if close:
            fh.close()
