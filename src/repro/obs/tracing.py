"""W3C-compatible distributed tracing for the serve/runner/engine stack.

The serve subsystem (PR 8) made the reproduction a long-running service,
but a served request's journey — client HTTP call, priority-queue wait,
worker execution, :class:`~repro.sim.runner.ParallelRunner` fan-out,
engine run — was invisible end to end. This module is the stdlib-only
span layer that connects it:

* :class:`TraceContext` — an immutable ``(trace_id, span_id, parent_id)``
  triple compatible with the W3C ``traceparent`` header
  (``00-<trace-id>-<span-id>-01``). Frozen dataclass of strings, so it
  pickles across process pools unchanged.
* :class:`Span` — one finished, named, timed operation. Spans carry an
  epoch start (``time.time``) so spans recorded in different processes
  align on one axis, and a monotonic-clock duration
  (``time.perf_counter``) so they never go negative under clock steps.
* :class:`SpanRecorder` — a thread-safe collector of finished spans.
  Worker processes build their own recorder and ship finished spans back
  pickled; the parent merges them with :meth:`SpanRecorder.extend`.
* :data:`NULL_TRACER` — the allocation-free no-op recorder (the
  :data:`~repro.obs.profiler.NULL_PROFILER` of tracing): with tracing
  off, the instrumented code paths cost one attribute read.

Tracing follows the observability contract of PRs 2/5: it only reads
clocks, never feeds anything back into a simulation (traced runs are
bit-identical to untraced ones), and no trace state enters the
result-cache key (``tests/sim/test_tracing.py`` enforces both).

Rendering/export: :func:`render_waterfall` draws an ASCII waterfall
(``repro trace <file>``); :func:`repro.obs.exporters.span_trace_events`
converts spans to Chrome trace-event JSON; the serve server returns
:func:`spans_payload` documents from ``GET /jobs/<id>/trace``.
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.ascii_plot import span_bar

#: ``traceparent`` version prefix this layer emits (the only one defined).
TRACEPARENT_VERSION = "00"

#: Sampled flag emitted on every minted header.
TRACEPARENT_FLAGS = "01"

#: Span taxonomy: one kind per stage of a served request's journey.
KIND_CLIENT = "client"          # client-side HTTP request span
KIND_REQUEST = "request"        # server-side root: submit -> terminal state
KIND_QUEUE = "queue"            # priority-queue wait
KIND_EXECUTE = "execute"        # worker execution incl. retries
KIND_GROUP = "fleet-group"      # one batched FleetEngine chunk
KIND_POINT = "point"            # one SweepPoint (cache-hit/pool/fleet)
KIND_SECTION = "section"        # engine StepProfiler leaf section

#: JSON wire-format identifier of a span payload document.
TRACE_SCHEMA = "repro-trace/1"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def _hex_id(n_bytes: int) -> str:
    """``n_bytes`` of OS randomness as lowercase hex."""
    return os.urandom(n_bytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One position in a trace: ids only, no timing, pickle-safe.

    ``trace_id`` is shared by every span of one request journey;
    ``span_id`` names this position; ``parent_id`` names the position it
    descends from (``None`` for a locally-minted root).
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def __post_init__(self):
        """Reject ids that could not have come from the hex minters."""
        if len(self.trace_id) != 32 or len(self.span_id) != 16:
            raise ValueError(
                f"trace_id must be 32 hex chars and span_id 16: "
                f"{self.trace_id!r}/{self.span_id!r}"
            )

    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a fresh root context (new trace id, no parent)."""
        return cls(trace_id=_hex_id(16), span_id=_hex_id(8))

    def child(self) -> "TraceContext":
        """A fresh child position under this context's span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_hex_id(8),
            parent_id=self.span_id,
        )

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this position."""
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-"
            f"{TRACEPARENT_FLAGS}"
        )

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` when absent/malformed.

        Malformed headers are *dropped*, not errors: a request with a
        bad header is simply served untraced, per the W3C guidance.
        """
        if not header:
            return None
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        _version, trace_id, span_id, _flags = match.groups()
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass(frozen=True)
class Span:
    """One finished, timed operation inside a trace.

    ``started_at`` is epoch seconds (cross-process comparable);
    ``elapsed_s`` comes from the monotonic clock of the recording
    process. ``attrs`` values must be JSON-safe scalars.
    """

    name: str
    kind: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    started_at: float
    elapsed_s: float
    pid: int
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def end_at(self) -> float:
        """Epoch seconds at which the span finished."""
        return self.started_at + self.elapsed_s

    def to_dict(self) -> Dict:
        """JSON-safe wire form (see :func:`span_from_dict`)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "elapsed_s": self.elapsed_s,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }


def span_from_dict(data: Dict) -> Span:
    """Rebuild a :class:`Span` from its :meth:`Span.to_dict` form."""
    return Span(
        name=data["name"],
        kind=data["kind"],
        trace_id=data["trace_id"],
        span_id=data["span_id"],
        parent_id=data.get("parent_id"),
        started_at=float(data["started_at"]),
        elapsed_s=float(data["elapsed_s"]),
        pid=int(data.get("pid", 0)),
        attrs=dict(data.get("attrs") or {}),
    )


def finished_span(
    context: TraceContext,
    name: str,
    kind: str,
    started_at: float,
    elapsed_s: float,
    **attrs,
) -> Span:
    """A completed span at an exact, already-known context and timing.

    For stages whose boundaries were observed *before* the span object
    could exist — e.g. the queue wait, measured between two job
    timestamps — where a context manager would re-measure the wrong
    interval.
    """
    return Span(
        name=name,
        kind=kind,
        trace_id=context.trace_id,
        span_id=context.span_id,
        parent_id=context.parent_id,
        started_at=started_at,
        elapsed_s=max(0.0, elapsed_s),
        pid=os.getpid(),
        attrs=attrs,
    )


class _ActiveSpan:
    """Context manager measuring one span; records it on exit.

    ``context`` is available from ``__enter__`` on, so child work can be
    parented before the span finishes. Extra attributes can be attached
    mid-flight with :meth:`annotate`.
    """

    __slots__ = ("_recorder", "_name", "_kind", "context", "_attrs",
                 "_started_at", "_t0")

    def __init__(self, recorder: "SpanRecorder", name: str, kind: str,
                 parent: Optional[TraceContext], attrs: Dict[str, object]):
        self._recorder = recorder
        self._name = name
        self._kind = kind
        self.context = parent.child() if parent is not None else TraceContext.new()
        self._attrs = attrs
        self._started_at = 0.0
        self._t0 = 0.0

    def annotate(self, **attrs) -> None:
        """Attach/overwrite attributes on the eventual span."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._started_at = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._recorder.record(
            Span(
                name=self._name,
                kind=self._kind,
                trace_id=self.context.trace_id,
                span_id=self.context.span_id,
                parent_id=self.context.parent_id,
                started_at=self._started_at,
                elapsed_s=time.perf_counter() - self._t0,
                pid=os.getpid(),
                attrs=self._attrs,
            )
        )


class SpanRecorder:
    """Thread-safe collector of finished spans.

    Process-safety is by value, not by sharing: each process records
    into its own recorder, spans travel back pickled with the results,
    and the parent folds them in with :meth:`extend`.
    """

    def __init__(self):
        """Start empty."""
        self._spans: List[Span] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        """Number of recorded spans."""
        return len(self._spans)

    def span(self, name: str, kind: str,
             parent: Optional[TraceContext] = None, **attrs) -> _ActiveSpan:
        """A context manager that times its body and records the span."""
        return _ActiveSpan(self, name, kind, parent, attrs)

    def record(self, span: Span) -> None:
        """Append one finished span."""
        with self._lock:
            self._spans.append(span)

    def extend(self, spans: Sequence[Span]) -> None:
        """Fold in spans recorded elsewhere (another thread or process)."""
        with self._lock:
            self._spans.extend(spans)

    def spans(self) -> List[Span]:
        """Snapshot of every recorded span, in recording order."""
        with self._lock:
            return list(self._spans)


class _NullActiveSpan:
    """Shared no-op active span: no clock reads, no context."""

    __slots__ = ()

    context: Optional[TraceContext] = None

    def annotate(self, **attrs) -> None:
        """No-op."""

    def __enter__(self) -> "_NullActiveSpan":
        """No-op."""
        return self

    def __exit__(self, *exc) -> None:
        """No-op."""


class NullRecorder:
    """Drop-in recorder that measures and stores nothing (tracing off)."""

    _SPAN = _NullActiveSpan()

    def __len__(self) -> int:
        """Always zero."""
        return 0

    def span(self, name: str, kind: str,
             parent: Optional[TraceContext] = None, **attrs) -> _NullActiveSpan:
        """The shared no-op active span, whatever the arguments."""
        return self._SPAN

    def record(self, span: Span) -> None:
        """No-op."""

    def extend(self, spans: Sequence[Span]) -> None:
        """No-op."""

    def spans(self) -> List[Span]:
        """Always empty."""
        return []


#: Shared no-op instance the instrumented layers fall back to.
NULL_TRACER = NullRecorder()


def section_spans(
    parent: TraceContext,
    started_at: float,
    sections: Dict[str, float],
    pid: Optional[int] = None,
) -> List[Span]:
    """Engine :class:`~repro.obs.profiler.StepProfiler` totals as leaf spans.

    Sections are per-step aggregates, so — exactly like the Chrome-trace
    exporter — they are laid out *sequentially* from the parent span's
    start in canonical engine order: the waterfall shows shares of the
    run, not the original per-step interleaving.
    """
    from repro.obs.profiler import ENGINE_SECTIONS

    ordered = [n for n in ENGINE_SECTIONS if n in sections] + [
        n for n in sections if n not in ENGINE_SECTIONS
    ]
    spans: List[Span] = []
    cursor = started_at
    pid = pid if pid is not None else os.getpid()
    for name in ordered:
        elapsed = sections[name]
        child = parent.child()
        spans.append(
            Span(
                name=name,
                kind=KIND_SECTION,
                trace_id=child.trace_id,
                span_id=child.span_id,
                parent_id=child.parent_id,
                started_at=cursor,
                elapsed_s=elapsed,
                pid=pid,
            )
        )
        cursor += elapsed
    return spans


# ---------------------------------------------------------------------------
# Trace documents, validation, rendering
# ---------------------------------------------------------------------------


def spans_payload(spans: Sequence[Span], trace_id: Optional[str] = None) -> Dict:
    """The JSON document served by ``GET /jobs/<id>/trace``."""
    spans = list(spans)
    if trace_id is None and spans:
        trace_id = spans[0].trace_id
    return {
        "schema": TRACE_SCHEMA,
        "trace_id": trace_id,
        "n_spans": len(spans),
        "spans": [s.to_dict() for s in spans],
    }


def spans_from_payload(payload: Dict) -> List[Span]:
    """Rebuild spans from a :func:`spans_payload` document."""
    if payload.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"expected trace schema {TRACE_SCHEMA!r}, got "
            f"{payload.get('schema')!r}"
        )
    return [span_from_dict(d) for d in payload.get("spans", [])]


def validate_trace(
    spans: Sequence[Span], root_kind: Optional[str] = None
) -> List[str]:
    """Structural problems of a span set; empty list means well-formed.

    Checks: at least one span, unique span ids, a single trace id,
    exactly one root (a span whose parent is not in the set — a remote
    parent, e.g. the client's span, is allowed), every other span's
    parent recorded, and — when ``root_kind`` is given — the root being
    of that kind. This is the same contract ``scripts/check_trace.py``
    enforces in CI without importing the package.
    """
    problems: List[str] = []
    spans = list(spans)
    if not spans:
        return ["trace has no spans"]
    ids = [s.span_id for s in spans]
    if len(set(ids)) != len(ids):
        problems.append("duplicate span ids")
    trace_ids = {s.trace_id for s in spans}
    if len(trace_ids) != 1:
        problems.append(f"multiple trace ids: {sorted(trace_ids)}")
    known = set(ids)
    roots = [s for s in spans if s.parent_id is None or s.parent_id not in known]
    if len(roots) != 1:
        problems.append(
            f"expected exactly one root span, found {len(roots)}: "
            f"{[s.name for s in roots]}"
        )
    elif root_kind is not None and roots[0].kind != root_kind:
        problems.append(
            f"root span {roots[0].name!r} has kind {roots[0].kind!r}, "
            f"expected {root_kind!r}"
        )
    return problems


def _ordered_tree(spans: Sequence[Span]) -> List[tuple]:
    """``(depth, span)`` pairs in waterfall order (DFS, starts ascending)."""
    known = {s.span_id for s in spans}
    children: Dict[Optional[str], List[Span]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in known else None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.started_at, s.name))
    out: List[tuple] = []

    def visit(span: Span, depth: int) -> None:
        out.append((depth, span))
        for child in children.get(span.span_id, []):
            visit(child, depth + 1)

    for root in children.get(None, []):
        visit(root, 0)
    return out


def render_waterfall(spans: Sequence[Span], width: int = 48) -> str:
    """An ASCII waterfall of one trace: tree on the left, bars on the right.

    One row per span in depth-first order; each bar is positioned on the
    shared wall-clock axis via :func:`repro.util.ascii_plot.span_bar`,
    annotated with the span's duration, kind and salient attributes.
    """
    spans = list(spans)
    if not spans:
        return "(empty trace)\n"
    t0 = min(s.started_at for s in spans)
    t1 = max(s.end_at for s in spans)
    rows = _ordered_tree(spans)
    labels = []
    for depth, span in rows:
        tag = span.attrs.get("mode") or span.attrs.get("cache")
        suffix = f" [{tag}]" if tag else ""
        labels.append(f"{'  ' * depth}{span.name}{suffix}")
    label_width = max(len(label) for label in labels)
    header = (
        f"trace {spans[0].trace_id[:12]}…  "
        f"{len(spans)} spans  {(t1 - t0) * 1e3:.2f} ms total"
    )
    lines = [header]
    for label, (_depth, span) in zip(labels, rows):
        bar = span_bar(t0, t1, span.started_at, span.end_at, width=width)
        lines.append(
            f"{label.ljust(label_width)} {bar} "
            f"{span.elapsed_s * 1e3:9.2f} ms  {span.kind}"
        )
    return "\n".join(lines) + "\n"
