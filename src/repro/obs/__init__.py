"""Run observability: events, profiling, logging, telemetry, dashboards.

Independent, strictly opt-in instruments:

* :class:`RunEventLog` — typed, timestamped engine events (DVFS
  transitions, stop-go trips/thaws, migrations, OS ticks, PROCHOT trips,
  emergency enter/exit) with JSONL export and per-run summaries;
* :class:`StepProfiler` — wall-time accounting of the engine step's
  named sections (sensors / throttle / power / thermal-step / os-tick);
* :class:`MetricsRegistry` / :class:`TelemetrySampler` — labelled
  counters, gauges and histograms sampled on a fixed silicon-time
  period; the sampler is fusion-aware, so sampled runs keep the engine's
  fused fast path (see :mod:`repro.obs.telemetry`);
* :mod:`repro.obs.tracing` — W3C-traceparent-compatible distributed
  spans (:class:`TraceContext` / :class:`SpanRecorder` /
  :data:`NULL_TRACER`) propagated from the serve client through queue,
  workers and engine runs;
* :mod:`repro.obs.exporters` — JSONL/CSV series, Prometheus text,
  Chrome trace-event JSON;
* :mod:`repro.obs.dashboard` — run bundles and the ``repro report``
  ASCII/HTML dashboards and run diffs;
* :func:`configure_logging` / :func:`get_logger` — the package's
  structured :mod:`logging` conventions.

None of them perturb the simulation: runs with observability off are
byte-identical to the pre-observability engine, instrumented runs report
bit-identical metrics, and nothing here enters the result-cache key.
"""

from repro.obs.dashboard import (
    RunBundle,
    diff_metrics,
    load_bundle,
    render_ascii,
    render_diff,
    render_html,
    write_bundle,
)
from repro.obs.events import (
    EVENT_TYPES,
    EventLogSummary,
    RunEvent,
    RunEventLog,
    read_jsonl,
)
from repro.obs.exporters import (
    profile_trace_events,
    prometheus_text,
    read_series_jsonl,
    runner_trace_events,
    span_trace_events,
    write_chrome_trace,
    write_prometheus,
    write_series_csv,
    write_series_jsonl,
)
from repro.obs.logconfig import (
    LOG_LEVELS,
    configure_logging,
    get_logger,
)
from repro.obs.profiler import (
    ENGINE_SECTIONS,
    NULL_PROFILER,
    NullProfiler,
    StepProfiler,
    render_engine_sections,
    render_sections,
    sorted_sections,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullRecorder,
    Span,
    SpanRecorder,
    TraceContext,
    render_waterfall,
    span_from_dict,
    spans_from_payload,
    spans_payload,
    validate_trace,
)
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetrySampler,
    TelemetrySeries,
    TelemetrySummary,
)

__all__ = [
    "EVENT_TYPES",
    "ENGINE_SECTIONS",
    "Counter",
    "EventLogSummary",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullRecorder",
    "RunBundle",
    "RunEvent",
    "RunEventLog",
    "Span",
    "SpanRecorder",
    "StepProfiler",
    "TraceContext",
    "TelemetrySampler",
    "TelemetrySeries",
    "TelemetrySummary",
    "configure_logging",
    "diff_metrics",
    "get_logger",
    "load_bundle",
    "profile_trace_events",
    "prometheus_text",
    "read_jsonl",
    "read_series_jsonl",
    "render_ascii",
    "render_diff",
    "render_engine_sections",
    "render_html",
    "render_sections",
    "render_waterfall",
    "runner_trace_events",
    "sorted_sections",
    "span_from_dict",
    "span_trace_events",
    "spans_from_payload",
    "spans_payload",
    "validate_trace",
    "write_bundle",
    "write_chrome_trace",
    "write_prometheus",
    "write_series_csv",
    "write_series_jsonl",
]
