"""Run observability: event capture, step profiling, structured logging.

Three independent, strictly opt-in instruments:

* :class:`RunEventLog` — typed, timestamped engine events (DVFS
  transitions, stop-go trips/thaws, migrations, OS ticks, PROCHOT trips,
  emergency enter/exit) with JSONL export and per-run summaries;
* :class:`StepProfiler` — wall-time accounting of the engine step's
  named sections (sensors / throttle / power / thermal-step / os-tick);
* :func:`configure_logging` / :func:`get_logger` — the package's
  structured :mod:`logging` conventions.

None of them perturb the simulation: runs with observability off are
byte-identical to the pre-observability engine, and nothing here enters
the result-cache key.
"""

from repro.obs.events import (
    EVENT_TYPES,
    EventLogSummary,
    RunEvent,
    RunEventLog,
    read_jsonl,
)
from repro.obs.logconfig import (
    LOG_LEVELS,
    configure_logging,
    get_logger,
)
from repro.obs.profiler import (
    ENGINE_SECTIONS,
    NULL_PROFILER,
    NullProfiler,
    StepProfiler,
    render_sections,
    sorted_sections,
)

__all__ = [
    "EVENT_TYPES",
    "ENGINE_SECTIONS",
    "EventLogSummary",
    "LOG_LEVELS",
    "NULL_PROFILER",
    "NullProfiler",
    "RunEvent",
    "RunEventLog",
    "StepProfiler",
    "configure_logging",
    "get_logger",
    "read_jsonl",
    "render_sections",
    "sorted_sections",
]
