"""Time-series metrics: instruments, registry, and the fusion-aware sampler.

The paper's claims are time-resolved — temperature and frequency
trajectories, emergency residency, migration cadence — but per-step
``record_series`` capture forces the engine's general stepwise loop and
stores one row per 27.78 us step. This module provides the bounded
alternative:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — minimal
  labelled instruments in the Prometheus data model;
* :class:`MetricsRegistry` — a process-local registry the engine,
  policies, fault injector, :class:`~repro.sim.runner.ParallelRunner`
  and :class:`~repro.sim.runner.ResultCache` register instruments into;
* :class:`TelemetrySampler` — samples a live simulation every
  ``sample_period_s`` of silicon time (quantized to whole engine steps)
  into gauges, counters, histograms and a :class:`TelemetrySeries`.

The sampler is **fusion-aware**: it is deliberately *not* a
``fusion_blockers`` entry. A fusion-eligible run keeps executing as
fused ``step_n`` chunks, and the sampler reads the true post-step state
only at sample instants — between samples the fused chunk assembly is
untouched. Because it reads true temperatures (never the sensor path)
and feeds nothing back, a sampled run's :class:`~repro.sim.results.RunResult`
is bit-identical to an uninstrumented run, and the sampled series is
bit-identical between the fused and stepwise paths
(``tests/sim/test_telemetry.py`` enforces both).

Export formats (JSONL/CSV series, Prometheus text, Chrome trace) live in
:mod:`repro.obs.exporters`; the run dashboard in
:mod:`repro.obs.dashboard`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Fixed histogram buckets (deg C) for PI-controller error observations:
#: error = measured - setpoint, so negative buckets are "below setpoint".
PI_ERROR_BUCKETS_C = (-8.0, -4.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 4.0, 8.0)


#: Guards instrument mutation so multi-threaded writers (the serve
#: subsystem's worker pool) never lose increments; uncontended acquire
#: cost is negligible at telemetry sampling rates.
_VALUE_LOCK = threading.Lock()


def _label_items(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical (sorted, stringified) label pairs."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def instrument_id(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Prometheus-style series identifier, e.g. ``core_temp_c{core="0"}``."""
    if not labels:
        return name
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{body}}}"


class Counter:
    """A monotonically increasing labelled counter."""

    __slots__ = ("name", "labels", "help", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...], help: str):
        """Start at zero."""
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    @property
    def id(self) -> str:
        """The instrument's series identifier."""
        return instrument_id(self.name, self.labels)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter (thread-safe)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        with _VALUE_LOCK:
            self.value += amount


class Gauge:
    """A labelled gauge holding the most recently set value."""

    __slots__ = ("name", "labels", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...], help: str):
        """Start at zero."""
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    @property
    def id(self) -> str:
        """The instrument's series identifier."""
        return instrument_id(self.name, self.labels)

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value


class Histogram:
    """A fixed-bucket labelled histogram (cumulative on export).

    ``buckets`` are upper bounds of the finite buckets; an implicit
    ``+Inf`` bucket catches the overflow. ``bucket_counts`` holds
    *per-bucket* (non-cumulative) counts, one per finite bound plus the
    overflow slot; the Prometheus exporter cumulates them.
    """

    __slots__ = ("name", "labels", "help", "buckets", "bucket_counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        help: str,
        buckets: Tuple[float, ...],
    ):
        """Validate the bucket bounds and start empty."""
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if list(buckets) != sorted(buckets):
            raise ValueError(f"bucket bounds must be sorted: {buckets}")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    @property
    def id(self) -> str:
        """The instrument's series identifier."""
        return instrument_id(self.name, self.labels)

    def observe(self, value: float) -> None:
        """Record one observation (``le`` semantics: a value equal to a
        bound counts toward that bound's bucket). Thread-safe."""
        with _VALUE_LOCK:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per bound (Prometheus ``le`` semantics)."""
        out, running = [], 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out


class MetricsRegistry:
    """Registered instruments, keyed by (name, labels), in creation order.

    Re-requesting an existing (name, labels) pair returns the same
    instrument; requesting an existing *name* with a different kind (or
    different histogram buckets) is a registration error.
    """

    def __init__(self) -> None:
        """Start empty."""
        self._instruments: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}
        self._kinds: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help: str, labels: Dict, **extra):
        kind = cls.kind
        with self._lock:
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ValueError(
                    f"instrument {name!r} already registered as a {known}, "
                    f"cannot re-register as a {kind}"
                )
            key = (name, _label_items(labels))
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], help, **extra)
                self._instruments[key] = instrument
                self._kinds[name] = kind
            return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        help: str = "",
        **labels,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        bounds = tuple(float(b) for b in buckets)
        known = self._buckets.get(name)
        if known is not None and known != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{known}, got {bounds}"
            )
        instrument = self._get(Histogram, name, help, labels, buckets=bounds)
        self._buckets[name] = bounds
        return instrument

    def collect(self) -> List[object]:
        """Every instrument, in registration order."""
        return list(self._instruments.values())

    def __len__(self) -> int:
        """Number of registered instruments."""
        return len(self._instruments)

    def as_dict(self) -> Dict[str, float]:
        """Flat ``{series id: value}`` snapshot of counters and gauges.

        Histograms contribute ``<name>_count`` and ``<name>_sum`` series
        (bucket detail is an export concern, see
        :func:`repro.obs.exporters.prometheus_text`).
        """
        out: Dict[str, float] = {}
        for inst in self._instruments.values():
            if inst.kind == "histogram":
                out[instrument_id(inst.name + "_count", inst.labels)] = float(
                    inst.count
                )
                out[instrument_id(inst.name + "_sum", inst.labels)] = inst.sum
            else:
                out[inst.id] = inst.value
        return out


class TelemetrySeries:
    """Column-oriented sample storage: one row per sample instant."""

    def __init__(self, sample_period_s: float, columns: Sequence[str]):
        """Create empty columns for the given series identifiers."""
        self.sample_period_s = float(sample_period_s)
        self.times: List[float] = []
        self.columns: Dict[str, List[float]] = {name: [] for name in columns}

    @property
    def n_samples(self) -> int:
        """Number of recorded sample rows."""
        return len(self.times)

    def column(self, name: str) -> List[float]:
        """One column's values across all samples."""
        return self.columns[name]

    def append(self, t_s: float, values: Sequence[float]) -> None:
        """Append one row (values aligned with the column order)."""
        cols = self.columns
        if len(values) != len(cols):
            raise ValueError(
                f"expected {len(cols)} values, got {len(values)}"
            )
        self.times.append(t_s)
        for col, value in zip(cols.values(), values):
            col.append(value)

    def rows(self) -> List[Tuple[float, List[float]]]:
        """All rows as ``(t, [values...])`` in time order."""
        cols = list(self.columns.values())
        return [
            (t, [col[i] for col in cols]) for i, t in enumerate(self.times)
        ]


@dataclass(frozen=True)
class TelemetrySummary:
    """Roll-up attached to :class:`~repro.sim.results.RunResult.telemetry`."""

    sample_period_s: float
    samples: int
    instruments: int


class TelemetrySampler:
    """Samples one simulation run into a metrics registry and a series.

    Pass an instance to :class:`~repro.sim.engine.ThermalTimingSimulator`
    (or :func:`~repro.sim.engine.run_workload`). The engine binds the
    sampler at construction and calls :meth:`sample` at every sample
    instant — after the step whose index satisfies
    ``(step + 1) % stride == 0``, where ``stride`` is ``sample_period_s``
    quantized to whole engine steps — plus one initial sample at t=0
    after warm start. Sampling never feeds anything back into the
    simulation and is **not** a fusion blocker: fused runs stay fused.

    A sampler instance is single-shot, like the engine: it binds to
    exactly one simulator.
    """

    def __init__(
        self,
        sample_period_s: float,
        registry: Optional[MetricsRegistry] = None,
    ):
        """Validate the period and prepare an (unbound) sampler."""
        if not sample_period_s > 0:
            raise ValueError(
                f"sample_period_s must be positive: {sample_period_s}"
            )
        self.sample_period_s = float(sample_period_s)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.series: Optional[TelemetrySeries] = None
        self._sim = None
        self._samples = 0

    # -- engine-facing lifecycle ------------------------------------------

    def stride_steps(self, dt: float) -> int:
        """The sample period quantized to whole engine steps (>= 1)."""
        return max(1, int(round(self.sample_period_s / dt)))

    def bind(self, sim) -> None:
        """Register this run's instruments against simulator ``sim``.

        Called by the engine constructor. Instruments are created based
        on what the run actually carries: per-core temperature /
        frequency / IPS gauges always; DVFS-transition, stop-go-trip,
        migration, PROCHOT, fault and guard counters only when the
        corresponding subsystem is active; per-domain PI-error
        histograms only under a DVFS policy.
        """
        if self._sim is not None:
            raise ValueError(
                "TelemetrySampler is single-shot: already bound to a run"
            )
        self._sim = sim
        reg = self.registry
        n_cores = sim.n_cores
        self._n_cores = n_cores
        self._hotspot_idx = sim._hotspot_idx

        self._g_temp = [
            reg.gauge(
                "core_temp_c",
                help="hottest monitored sensor site per core (true deg C)",
                core=c,
            )
            for c in range(n_cores)
        ]
        self._g_scale = [
            reg.gauge(
                "core_freq_scale",
                help="effective frequency scale over the last step "
                "(work / dt: freezes and stalls included)",
                core=c,
            )
            for c in range(n_cores)
        ]
        self._g_ips = [
            reg.gauge(
                "core_ips",
                help="instructions per second over the last sample interval",
                core=c,
            )
            for c in range(n_cores)
        ]
        self._g_chip = reg.gauge(
            "chip_hotspot_max_c",
            help="hottest monitored sensor site anywhere on the chip",
        )

        # Cumulative engine counters, sampled by delta from their source
        # totals so the instruments stay monotone.
        readers: List[Tuple[Counter, Callable[[], float]]] = []
        throttle = sim.throttle
        if throttle is not None and hasattr(throttle, "controllers"):
            actuators = sim.actuators
            readers.append((
                reg.counter(
                    "dvfs_transitions_total",
                    help="accepted PLL re-locks across all cores",
                ),
                lambda: float(sum(a.transitions for a in actuators)),
            ))
        if throttle is not None and hasattr(throttle, "trip_count"):
            readers.append((
                reg.counter(
                    "stopgo_trips_total",
                    help="stop-go thermal interrupts",
                ),
                lambda: float(throttle.trip_count),
            ))
        if sim.migration is not None:
            scheduler = sim.scheduler
            readers.append((
                reg.counter(
                    "migrations_total",
                    help="executed process migrations",
                ),
                lambda: float(scheduler.total_migrations),
            ))
        if sim.config.hardware_trip:
            readers.append((
                reg.counter(
                    "prochot_trips_total",
                    help="hardware overtemperature failsafe activations",
                ),
                lambda: float(sim.prochot_events),
            ))
        injector = sim._faults
        if injector is not None:
            for attr, help_text in (
                ("sensor_faulted_samples", "sensor samples rewritten by faults"),
                ("dvfs_rejected", "DVFS transitions rejected by faults"),
                ("dvfs_delayed", "DVFS transitions stretched by faults"),
                ("migrations_dropped", "migration requests dropped by faults"),
            ):
                readers.append((
                    reg.counter(f"fault_{attr}_total", help=help_text),
                    (lambda injector=injector, attr=attr: float(
                        getattr(injector, attr)
                    )),
                ))
        guards = sim._guards
        if guards is not None:
            readers.append((
                reg.counter(
                    "guard_trips_total",
                    help="sensor-sanity watchdog trips",
                ),
                lambda: float(guards.trips),
            ))
            readers.append((
                reg.counter(
                    "guard_fallback_seconds_total",
                    help="core-seconds spent in blind stop-go fallback",
                ),
                lambda: float(guards.fallback_s),
            ))
        self._counter_readers = readers
        self._counter_prev = [0.0] * len(readers)

        # PI-error histograms: one per control domain (per core when
        # distributed, one chip-wide domain when global).
        self._pi_hists: List[Tuple[object, Histogram]] = []
        if throttle is not None and hasattr(throttle, "controllers"):
            for i, ctrl in enumerate(throttle.controllers):
                self._pi_hists.append((
                    ctrl,
                    reg.histogram(
                        "pi_error_c",
                        PI_ERROR_BUCKETS_C,
                        help="PI controller error (measured - setpoint, deg C) "
                        "at sample instants",
                        domain=i,
                    ),
                ))

        # Series columns = every gauge and counter, in registration order.
        tracked = [
            inst for inst in reg.collect() if inst.kind in ("gauge", "counter")
        ]
        self._tracked = tracked
        self.series = TelemetrySeries(
            self.sample_period_s, [inst.id for inst in tracked]
        )
        self._last_t = 0.0
        self._last_instr = [0.0] * n_cores

    def begin_run(self) -> None:
        """Record the t=0 sample (warm-started state, full-speed cores)."""
        sim = self._sim
        if sim is None:
            raise ValueError("sampler not bound to a simulator")
        self._last_t = 0.0
        self._last_instr = [0.0] * self._n_cores
        self.sample(
            0.0,
            sim.thermal.temperatures,
            [1.0] * self._n_cores,
            None,
        )

    def sample(self, t_s, temps, eff_scales, metrics) -> None:
        """Fold the current simulation state into instruments and series.

        Args:
            t_s: End time of the step just completed (silicon seconds).
            temps: The full post-step temperature state vector.
            eff_scales: Per-core effective frequency scale over the last
                step (``work / dt``).
            metrics: The run's live
                :class:`~repro.sim.metrics.MetricsAccumulator`, or
                ``None`` for the initial t=0 sample.
        """
        hot = temps[self._hotspot_idx].max(axis=1).tolist()
        dt_sample = t_s - self._last_t
        instr = (
            metrics.per_core_instructions
            if metrics is not None
            else self._last_instr
        )
        g_temp = self._g_temp
        g_scale = self._g_scale
        g_ips = self._g_ips
        last_instr = self._last_instr
        for c in range(self._n_cores):
            g_temp[c].value = hot[c]
            g_scale[c].value = float(eff_scales[c])
            delta = instr[c] - last_instr[c]
            g_ips[c].value = delta / dt_sample if dt_sample > 0 else 0.0
            last_instr[c] = instr[c]
        self._g_chip.value = max(hot)

        prev = self._counter_prev
        for k, (counter, read) in enumerate(self._counter_readers):
            current = read()
            if current > prev[k]:
                counter.inc(current - prev[k])
                prev[k] = current

        for ctrl, hist in self._pi_hists:
            hist.observe(ctrl.last_error)

        self.series.append(t_s, [inst.value for inst in self._tracked])
        self._last_t = t_s
        self._samples += 1

    # -- results -----------------------------------------------------------

    @property
    def samples(self) -> int:
        """Number of samples recorded so far."""
        return self._samples

    def summary(self) -> TelemetrySummary:
        """The roll-up the engine attaches to the run's result."""
        return TelemetrySummary(
            sample_period_s=self.sample_period_s,
            samples=self._samples,
            instruments=len(self.registry),
        )
