"""Run dashboards: on-disk bundles, ASCII and HTML rendering, run diffs.

A *bundle* is the observability artefact set one instrumented run leaves
behind, sharing a filename prefix:

* ``<prefix>.result.json`` — the scalar result
  (:func:`repro.sim.report.result_to_dict`) plus telemetry/event roll-ups;
* ``<prefix>.telemetry.jsonl`` — the sampled time series
  (:func:`repro.obs.exporters.write_series_jsonl`);
* ``<prefix>.prom`` — the end-of-run metrics snapshot in Prometheus
  text exposition format;
* ``<prefix>.events.jsonl`` — optional, the full event log.

``repro report <prefix>`` loads a bundle and renders it as an ASCII
dashboard (per-core temperature/frequency sparklines over an event
annotation track) or, with ``--html``, as a single self-contained
XHTML file with inline SVG sparklines — no JavaScript, no external
assets, parseable by ``xml.etree``. ``repro report --diff A B``
compares two bundles metric-by-metric and flags deviations.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.obs.events import RunEventLog
from repro.obs.exporters import (
    parse_prometheus_text,
    read_series_jsonl,
    write_prometheus,
    write_series_jsonl,
)
from repro.obs.telemetry import TelemetrySampler, TelemetrySeries
from repro.sim.report import result_to_dict
from repro.sim.results import RunResult
from repro.util.ascii_plot import multi_series, timeline_markers
from repro.util.tables import render_table

#: Bundle filename suffixes, by artefact.
RESULT_SUFFIX = ".result.json"
SERIES_SUFFIX = ".telemetry.jsonl"
PROM_SUFFIX = ".prom"
EVENTS_SUFFIX = ".events.jsonl"

#: Scalar result fields compared by ``repro report --diff``.
DIFF_METRICS = (
    "bips",
    "duty_cycle",
    "instructions",
    "max_temp_c",
    "emergency_s",
    "migrations",
    "dvfs_transitions",
    "stopgo_trips",
    "prochot_events",
)

#: Event types drawn as annotation marks on the dashboards. High-rate
#: bookkeeping events (``os-tick``, per-step DVFS traffic) are excluded —
#: they would blanket the track without adding information.
ANNOTATION_EVENTS = (
    "migration",
    "stopgo-trip",
    "prochot-trip",
    "emergency-enter",
    "fault.sensor",
    "fault.dvfs",
    "fault.migration",
    "guard.trip",
)

_CORE_COLUMN = re.compile(r'^(?P<name>[a-z_]+)\{core="(?P<core>\d+)"\}$')

#: Serve-side request-stage histograms surfaced as dashboard tables
#: when a bundle's Prometheus snapshot carries them (engine bundles
#: don't, so their dashboards are unchanged).
STAGE_HISTOGRAMS = (
    "queue_wait_seconds",
    "execute_seconds",
    "ttfb_seconds",
)

_BUCKET_LE = re.compile(r'_bucket\{le="(?P<le>[^"]+)"\}$')


@dataclass
class RunBundle:
    """One loaded run-observability bundle."""

    prefix: str
    result: Dict
    series: Optional[TelemetrySeries] = None
    prom: Optional[str] = None
    events: Optional[RunEventLog] = None

    @property
    def label(self) -> str:
        """Short display name (the prefix's basename)."""
        return os.path.basename(self.prefix)

    def core_series(self, name: str) -> Dict[int, List[float]]:
        """Per-core columns of one instrument name, e.g. ``core_temp_c``."""
        out: Dict[int, List[float]] = {}
        if self.series is None:
            return out
        for column in self.series.columns:
            match = _CORE_COLUMN.match(column)
            if match and match.group("name") == name:
                out[int(match.group("core"))] = self.series.column(column)
        return out

    def annotation_times(self) -> List[float]:
        """Timestamps of the events drawn as dashboard annotations."""
        if self.events is None:
            return []
        return [
            e.time_s for e in self.events if e.type in ANNOTATION_EVENTS
        ]


# ---------------------------------------------------------------------------
# Bundle persistence
# ---------------------------------------------------------------------------


def write_bundle(
    prefix: str,
    result: RunResult,
    sampler: TelemetrySampler,
    event_log: Optional[RunEventLog] = None,
) -> List[str]:
    """Write a run's observability bundle; returns the paths written.

    The result document is :func:`~repro.sim.report.result_to_dict`
    output (unchanged scalar schema) extended with a ``telemetry``
    roll-up and, when an event log was captured, per-type ``events``
    counts — both additive keys the plain result loader ignores.
    """
    paths: List[str] = []
    doc = result_to_dict(result)
    summary = sampler.summary()
    doc["telemetry"] = {
        "sample_period_s": summary.sample_period_s,
        "samples": summary.samples,
        "instruments": summary.instruments,
    }
    if event_log is not None:
        doc["events"] = event_log.counts()
    result_path = prefix + RESULT_SUFFIX
    with open(result_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    paths.append(result_path)

    series_path = prefix + SERIES_SUFFIX
    write_series_jsonl(sampler.series, series_path)
    paths.append(series_path)

    prom_path = prefix + PROM_SUFFIX
    write_prometheus(sampler.registry, prom_path)
    paths.append(prom_path)

    if event_log is not None:
        events_path = prefix + EVENTS_SUFFIX
        event_log.write_jsonl(events_path)
        paths.append(events_path)
    return paths


def load_bundle(prefix: str) -> RunBundle:
    """Load the bundle written under ``prefix``.

    The result document is required; series, Prometheus snapshot and
    event log are attached when their files exist.
    """
    result_path = prefix + RESULT_SUFFIX
    if not os.path.exists(result_path):
        raise FileNotFoundError(
            f"no run bundle at {prefix!r} (missing {result_path})"
        )
    with open(result_path, "r", encoding="utf-8") as fh:
        result = json.load(fh)
    bundle = RunBundle(prefix=prefix, result=result)
    if os.path.exists(prefix + SERIES_SUFFIX):
        bundle.series = read_series_jsonl(prefix + SERIES_SUFFIX)
    if os.path.exists(prefix + PROM_SUFFIX):
        with open(prefix + PROM_SUFFIX, "r", encoding="utf-8") as fh:
            bundle.prom = fh.read()
    if os.path.exists(prefix + EVENTS_SUFFIX):
        bundle.events = RunEventLog.from_jsonl(prefix + EVENTS_SUFFIX)
    return bundle


# ---------------------------------------------------------------------------
# ASCII dashboard
# ---------------------------------------------------------------------------


def _stat_lines(result: Dict) -> List[str]:
    """Key scalar metrics as aligned ``name: value`` lines."""
    lines = [
        f"policy:    {result.get('policy', '?')}",
        f"workload:  {result.get('workload', '?')}"
        f"  ({', '.join(result.get('benchmarks', []))})",
        f"duration:  {result.get('duration_s', 0.0):g} s"
        f"   BIPS: {result.get('bips', 0.0):.3f}"
        f"   duty: {result.get('duty_cycle', 0.0):.1%}"
        f"   max T: {result.get('max_temp_c', 0.0):.2f} C",
        f"events:    migrations={result.get('migrations', 0)}"
        f" dvfs={result.get('dvfs_transitions', 0)}"
        f" trips={result.get('stopgo_trips', 0)}"
        f" prochot={result.get('prochot_events', 0)}"
        f" emergency={result.get('emergency_s', 0.0):g}s",
    ]
    telemetry = result.get("telemetry")
    if telemetry:
        lines.append(
            f"telemetry: {telemetry['samples']} samples @ "
            f"{telemetry['sample_period_s']:g} s, "
            f"{telemetry['instruments']} instruments"
        )
    return lines


def render_ascii(bundle: RunBundle, width: int = 60) -> str:
    """The run dashboard as monospace text.

    Header stats, then per-core temperature and frequency-scale
    sparklines sharing one time axis, with an event annotation track
    underneath when the bundle carries an event log.
    """
    lines = [f"run dashboard: {bundle.label}", ""]
    lines.extend(_stat_lines(bundle.result))
    if bundle.series is not None and bundle.series.n_samples:
        series: Dict[str, Sequence[float]] = {}
        temps = bundle.core_series("core_temp_c")
        for core in sorted(temps):
            series[f"T{core} (C)"] = temps[core]
        hot = "chip_hotspot_max_c"
        if hot in bundle.series.columns:
            series["Tmax (C)"] = bundle.series.column(hot)
        scales = bundle.core_series("core_freq_scale")
        for core in sorted(scales):
            series[f"f{core}"] = scales[core]
        if series:
            lines.append("")
            lines.append(
                multi_series(
                    bundle.series.times, series, width=width, time_unit="s"
                )
            )
        marks = bundle.annotation_times()
        if marks:
            t0 = bundle.series.times[0]
            t1 = bundle.series.times[-1]
            name_width = max(len(n) for n in series) if series else 6
            track = timeline_markers(t0, t1, marks, width=width)
            lines.append(f"{'events'.rjust(name_width)} {track} "
                         f"({len(marks)} marks)")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# HTML dashboard (self-contained XHTML + inline SVG)
# ---------------------------------------------------------------------------

_CSS = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.05em; margin-bottom: 0.2em; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #bbb; padding: 0.25em 0.7em; text-align: right; }
th { background: #eee; }
svg { background: #fafafa; border: 1px solid #ddd; margin: 0.2em 0.6em 0.2em 0; }
pre { background: #f4f4f4; padding: 0.8em; overflow-x: auto; }
.lane { display: flex; align-items: center; flex-wrap: wrap; }
.caption { font-size: 0.85em; color: #555; }
"""

#: SVG sparkline geometry (pixels).
_SVG_W, _SVG_H, _SVG_PAD = 360, 64, 4


def _svg_sparkline(
    times: Sequence[float],
    values: Sequence[float],
    mark_times: Sequence[float] = (),
    color: str = "#b33",
) -> str:
    """One inline-SVG sparkline with optional event marker lines."""
    n = len(times)
    if n == 0 or n != len(values):
        raise ValueError("sparkline needs equal, non-empty times/values")
    t0, t1 = times[0], times[-1]
    t_span = (t1 - t0) or 1.0
    lo, hi = min(values), max(values)
    v_span = (hi - lo) or 1.0
    inner_w = _SVG_W - 2 * _SVG_PAD
    inner_h = _SVG_H - 2 * _SVG_PAD

    def x(t: float) -> float:
        return _SVG_PAD + (t - t0) / t_span * inner_w

    def y(v: float) -> float:
        return _SVG_PAD + (hi - v) / v_span * inner_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_SVG_W}" '
        f'height="{_SVG_H}" viewBox="0 0 {_SVG_W} {_SVG_H}">'
    ]
    for t in mark_times:
        if t0 <= t <= t1:
            parts.append(
                f'<line x1="{x(t):.1f}" y1="0" x2="{x(t):.1f}" '
                f'y2="{_SVG_H}" stroke="#2a6" stroke-width="1" '
                f'opacity="0.55" />'
            )
    points = " ".join(
        f"{x(t):.1f},{y(v):.1f}" for t, v in zip(times, values)
    )
    parts.append(
        f'<polyline points="{points}" fill="none" stroke="{color}" '
        f'stroke-width="1.3" />'
    )
    parts.append(
        f'<text x="{_SVG_PAD}" y="{_SVG_H - 1}" font-size="9" '
        f'fill="#777">{lo:.2f}</text>'
    )
    parts.append(
        f'<text x="{_SVG_PAD}" y="{_SVG_PAD + 8}" font-size="9" '
        f'fill="#777">{hi:.2f}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _stats_table(result: Dict) -> str:
    """The scalar metrics as one XHTML table row set."""
    cells_h = "".join(f"<th>{escape(m)}</th>" for m in DIFF_METRICS)
    cells_v = "".join(
        f"<td>{result.get(m, 0):g}</td>" for m in DIFF_METRICS
    )
    return (
        f"<table><tr>{cells_h}</tr><tr>{cells_v}</tr></table>"
    )


def _stage_histogram_rows(prom_text: str) -> Dict[str, List[Tuple[str, float]]]:
    """Per-stage cumulative bucket rows from a Prometheus snapshot.

    Returns ``{stage name: [(le, cumulative count), ...]}`` for the
    :data:`STAGE_HISTOGRAMS` present in ``prom_text``, buckets in the
    exposition's ascending order, plus a final ``("count", n)`` /
    ``("sum (s)", total)`` pair. Stages with no samples are omitted.
    """
    metrics = parse_prometheus_text(prom_text)
    out: Dict[str, List[Tuple[str, float]]] = {}
    for stage in STAGE_HISTOGRAMS:
        count = metrics.get(f"{stage}_count")
        if not count:
            continue
        buckets: List[Tuple[float, str, float]] = []
        prefix = f"{stage}_bucket"
        for series, value in metrics.items():
            if not series.startswith(prefix):
                continue
            match = _BUCKET_LE.search(series)
            if match is None:
                continue
            le = match.group("le")
            sort_key = float("inf") if le == "+Inf" else float(le)
            buckets.append((sort_key, le, value))
        rows = [(le, value) for _key, le, value in sorted(buckets)]
        rows.append(("count", count))
        rows.append(("sum (s)", metrics.get(f"{stage}_sum", 0.0)))
        out[stage] = rows
    return out


def _stage_histogram_tables(prom_text: str) -> List[str]:
    """Request-stage latency histograms as XHTML table fragments."""
    parts: List[str] = []
    staged = _stage_histogram_rows(prom_text)
    if not staged:
        return parts
    parts.append("<h2>request-stage latency</h2>")
    for stage, rows in staged.items():
        body = "".join(
            f"<tr><td>{escape(le)}</td><td>{value:g}</td></tr>"
            for le, value in rows
        )
        parts.append(
            f"<table><tr><th colspan='2'>{escape(stage)}</th></tr>"
            "<tr><th>le (s)</th><th>cumulative</th></tr>"
            + body + "</table>"
        )
    return parts


def render_html(bundle: RunBundle) -> str:
    """The run dashboard as one self-contained XHTML document.

    Inline SVG sparklines (temperature with event-annotation marker
    lines, frequency scale) per core plus the chip hotspot, the scalar
    metrics table, and the Prometheus snapshot in a collapsible block.
    Snapshots carrying the serve request-stage histograms
    (:data:`STAGE_HISTOGRAMS`) additionally get per-stage bucket tables.
    The output is well-formed XML — ``xml.etree`` parses it — and needs
    no JavaScript or external assets.
    """
    result = bundle.result
    parts = [
        '<?xml version="1.0" encoding="utf-8"?>',
        '<html xmlns="http://www.w3.org/1999/xhtml">',
        "<head>",
        f"<title>repro run dashboard: {escape(bundle.label)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>repro run dashboard: {escape(bundle.label)}</h1>",
        "<p class='caption'>"
        f"policy {escape(str(result.get('policy', '?')))} · "
        f"workload {escape(str(result.get('workload', '?')))} · "
        f"duration {result.get('duration_s', 0.0):g} s"
        "</p>",
        _stats_table(result),
    ]
    telemetry = result.get("telemetry")
    if telemetry:
        parts.append(
            "<p class='caption'>"
            f"{telemetry['samples']} samples @ "
            f"{telemetry['sample_period_s']:g} s · "
            f"{telemetry['instruments']} instruments</p>"
        )
    if bundle.series is not None and bundle.series.n_samples:
        times = bundle.series.times
        marks = bundle.annotation_times()
        temps = bundle.core_series("core_temp_c")
        scales = bundle.core_series("core_freq_scale")
        for core in sorted(temps):
            parts.append(f"<h2>core {core}</h2><div class='lane'>")
            parts.append(
                _svg_sparkline(times, temps[core], mark_times=marks)
            )
            if core in scales:
                parts.append(
                    _svg_sparkline(times, scales[core], color="#36b")
                )
            parts.append(
                "<span class='caption'>temperature (C, red) · "
                "frequency scale (blue)"
                + (" · event marks (green)" if marks else "")
                + "</span></div>"
            )
        hot = 'chip_hotspot_max_c'
        if hot in bundle.series.columns:
            parts.append("<h2>chip hotspot</h2><div class='lane'>")
            parts.append(
                _svg_sparkline(
                    times, bundle.series.column(hot),
                    mark_times=marks, color="#a3a",
                )
            )
            parts.append("</div>")
    if bundle.events is not None:
        rows = "".join(
            f"<tr><td>{escape(kind)}</td><td>{count}</td></tr>"
            for kind, count in sorted(bundle.events.counts().items())
        )
        parts.append(
            "<h2>events</h2><table><tr><th>type</th><th>count</th></tr>"
            + rows + "</table>"
        )
    if bundle.prom:
        parts.extend(_stage_histogram_tables(bundle.prom))
        parts.append(
            "<details><summary>metrics snapshot (Prometheus text)"
            "</summary><pre>" + escape(bundle.prom) + "</pre></details>"
        )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# Run diff
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric of ``repro report --diff``."""

    metric: str
    a: float
    b: float
    flagged: bool

    @property
    def delta(self) -> float:
        """Signed difference ``b - a``."""
        return self.b - self.a


def diff_metrics(
    a: Dict, b: Dict, rel_tol: float = 1e-9
) -> List[MetricDelta]:
    """Compare two result documents over :data:`DIFF_METRICS`.

    A metric is flagged when the values differ by more than ``rel_tol``
    relative to the larger magnitude (so bit-identical reruns produce
    zero flags and a faulted rerun flags every perturbed metric).
    Event-count rows (``events.<type>``) are appended when both bundles
    carry event roll-ups.
    """
    rows: List[MetricDelta] = []
    for metric in DIFF_METRICS:
        va = float(a.get(metric, 0) or 0)
        vb = float(b.get(metric, 0) or 0)
        tol = rel_tol * max(abs(va), abs(vb))
        rows.append(MetricDelta(metric, va, vb, abs(vb - va) > tol))
    ev_a, ev_b = a.get("events"), b.get("events")
    if isinstance(ev_a, dict) and isinstance(ev_b, dict):
        for kind in sorted(set(ev_a) | set(ev_b)):
            va = float(ev_a.get(kind, 0))
            vb = float(ev_b.get(kind, 0))
            rows.append(MetricDelta(f"events.{kind}", va, vb, va != vb))
    return rows


def render_diff(
    deltas: Sequence[MetricDelta], label_a: str, label_b: str
) -> str:
    """Render a metric diff as a table; flagged rows end with ``<<``."""
    rows = [
        [
            d.metric,
            f"{d.a:g}",
            f"{d.b:g}",
            f"{d.delta:+g}",
            "<<" if d.flagged else "",
        ]
        for d in deltas
    ]
    flagged = sum(d.flagged for d in deltas)
    table = render_table(
        ["metric", label_a, label_b, "delta", "flag"],
        rows,
        title=f"run diff: {label_a} vs {label_b}",
    )
    tail = (
        f"{flagged} metric(s) differ"
        if flagged
        else "no metric deviations"
    )
    return f"{table}\n{tail}\n"
