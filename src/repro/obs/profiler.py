"""Lightweight named-section wall-time profiler for the engine step loop.

The engine's step has five well-defined phases — sensor reads, throttle
policy evaluation, power assembly, the thermal solve, and the 10 ms OS
tick — and performance work needs to know which of them dominates for
which policy class (stop-go runs are thermal-solve bound; sensor-based
migration adds OS-tick cost).  :class:`StepProfiler` accumulates
wall-clock time per named section with one ``perf_counter`` pair per
entry and no allocation on the hot path.

Profiling reads the clock but never feeds anything back into the
simulation, so profiled runs produce byte-identical results to
unprofiled ones; when no profiler is supplied the engine uses
:data:`NULL_PROFILER`, whose sections are reusable no-ops.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

#: The engine's canonical section names, in step order.
ENGINE_SECTIONS = ("sensors", "throttle", "power", "thermal-step", "os-tick")


class _Section:
    """Context manager timing one named section (reused across entries)."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "StepProfiler", name: str):
        """Bind the section to its profiler and charge name."""
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Section":
        """Start the clock."""
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        """Charge the elapsed time to the section's name."""
        self._profiler._record(self._name, time.perf_counter() - self._t0)


class StepProfiler:
    """Accumulates wall time and entry counts per named section."""

    def __init__(self) -> None:
        """Start with no sections and zero accumulated time."""
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._maxes: Dict[str, float] = {}
        self._sections: Dict[str, _Section] = {}

    def _record(self, name: str, elapsed: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + elapsed
        self._counts[name] = self._counts.get(name, 0) + 1
        if elapsed > self._maxes.get(name, 0.0):
            self._maxes[name] = elapsed

    def section(self, name: str) -> _Section:
        """A context manager charging its body's wall time to ``name``."""
        section = self._sections.get(name)
        if section is None:
            section = self._sections[name] = _Section(self, name)
        return section

    # -- results -----------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Accumulated seconds per section."""
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        """Number of entries per section."""
        return dict(self._counts)

    def maxes(self) -> Dict[str, float]:
        """Longest single entry (seconds) per section."""
        return dict(self._maxes)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-section statistics: total, count, and derived mean/max.

        Merged-in totals (:meth:`merge`) carry no entry counts, so their
        sections report ``count`` 0 and ``mean_s``/``max_s`` 0.0.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name, total in self._totals.items():
            count = self._counts.get(name, 0)
            out[name] = {
                "total_s": total,
                "count": count,
                "mean_s": total / count if count else 0.0,
                "max_s": self._maxes.get(name, 0.0),
            }
        return out

    @property
    def total_s(self) -> float:
        """Total profiled wall time across all sections."""
        return sum(self._totals.values())

    def merge(self, totals: Dict[str, float]) -> None:
        """Fold another run's section totals into this profiler."""
        for name, elapsed in totals.items():
            self._totals[name] = self._totals.get(name, 0.0) + elapsed

    def render(self, title: Optional[str] = None) -> str:
        """A small fixed-width table of sections, hottest first."""
        return render_sections(self._totals, title=title)


class _NullSection:
    """No-op section used when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        """No-op."""
        return self

    def __exit__(self, *exc) -> None:
        """No-op."""
        pass


class NullProfiler:
    """Drop-in profiler that measures nothing (observability off)."""

    _SECTION = _NullSection()

    def section(self, name: str) -> _NullSection:
        """The shared no-op section, whatever the ``name``."""
        return self._SECTION

    def totals(self) -> Dict[str, float]:
        """Always empty — nothing is measured."""
        return {}


#: Shared no-op instance the engine falls back to.
NULL_PROFILER = NullProfiler()


def sorted_sections(totals: Dict[str, float]) -> List[Tuple[str, float]]:
    """Sections sorted hottest-first."""
    return sorted(totals.items(), key=lambda kv: kv[1], reverse=True)


def render_sections(totals: Dict[str, float], title: Optional[str] = None) -> str:
    """Render section totals as an aligned text table, hottest first."""
    lines = []
    if title:
        lines.append(title)
    grand = sum(totals.values())
    if not totals:
        lines.append("  (no profiled sections)")
        return "\n".join(lines)
    width = max(len(name) for name in totals)
    for name, elapsed in sorted_sections(totals):
        share = elapsed / grand if grand > 0 else 0.0
        lines.append(f"  {name:{width}s}  {elapsed * 1000:9.2f} ms  {share:6.1%}")
    lines.append(f"  {'total':{width}s}  {grand * 1000:9.2f} ms")
    return "\n".join(lines)


def render_engine_sections(
    totals: Dict[str, float], title: Optional[str] = None
) -> str:
    """Render engine step sections in canonical :data:`ENGINE_SECTIONS` order.

    Every canonical section appears — with a 0.00 ms row when it never
    ran (an unthrottled run has no throttle entries, a short horizon may
    never reach an OS tick) — so tables from different policies line up
    row-for-row. Percent-of-total accompanies every section; sections
    outside the canonical set (if any) follow in hottest-first order.
    """
    lines = []
    if title:
        lines.append(title)
    extras = sorted_sections(
        {n: v for n, v in totals.items() if n not in ENGINE_SECTIONS}
    )
    ordered = list(ENGINE_SECTIONS) + [name for name, _ in extras]
    grand = sum(totals.values())
    width = max(len(name) for name in ordered)
    for name in ordered:
        elapsed = totals.get(name, 0.0)
        share = elapsed / grand if grand > 0 else 0.0
        lines.append(f"  {name:{width}s}  {elapsed * 1000:9.2f} ms  {share:6.1%}")
    lines.append(f"  {'total':{width}s}  {grand * 1000:9.2f} ms")
    return "\n".join(lines)
