"""Typed run-event capture.

The paper's headline claims are really claims about *events* — DVFS
transitions accepted by the PLL, stop-go trips and thaws, migration
rounds, hardware-failsafe activations, thermal emergencies.  The engine
only reports end-of-run scalar counts; :class:`RunEventLog` records the
events themselves, timestamped in silicon time, so a run can be replayed,
plotted, or diffed after the fact.

Capture is strictly opt-in and side-effect free: the engine holds an
``Optional[RunEventLog]`` and emits only when one was supplied, so runs
without a log are byte-identical to the pre-observability engine and the
result-cache key (which covers only :class:`~repro.sim.engine.SimulationConfig`,
the policy and the workload) is untouched.

Event schema (one JSON object per line in the JSONL export)::

    {"t": <silicon seconds>, "type": <event type>, "core": <int|null>, ...data}

Event types and their extra data fields:

===================  ========================================================
``dvfs-transition``  Accepted PLL re-lock: ``from``, ``to``, ``penalty_s``.
``dvfs-rejected``    Requested change below the 2% minimum: ``requested``,
                     ``current``.
``stopgo-trip``      Thermal interrupt fired (one event per trip counted by
                     the policy): ``cores`` newly frozen by the trip.
``stopgo-thaw``      A core left its freeze interval and resumed.
``os-tick``          The 10 ms OS timer fired.
``migration-decision``  The migration policy proposed a reassignment:
                     ``assignment`` (core -> pid).
``migration``        One executed process move: ``pid`` moved onto ``core``.
``prochot-trip``     The independent hardware overtemperature circuit
                     fired: ``temp_c``.
``emergency-enter``  True silicon temperature crossed above the emergency
                     envelope: ``temp_c``.
``emergency-exit``   Temperature fell back inside the envelope: ``temp_c``.
``fault.sensor``     An injected sensor fault opened its window (``kind``,
                     ``unit``, ``end_s``), or a spike landed (``kind``,
                     ``channels``, ``magnitude_c``).
``fault.dvfs``       An injected actuator fault rejected (``requested``,
                     ``current``) or stretched (``extra_penalty_s``) a
                     DVFS transition: ``kind``.
``fault.migration``  An injected fault dropped a delivered migration
                     request: ``assignment``.
``guard.trip``       The sensor-sanity watchdog stopped trusting a core's
                     sensors; the core fell back to blind stop-go.
``guard.clear``      A tripped core's readings stayed sane long enough;
                     control returned to the policy.
===================  ========================================================
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, TextIO, Union

#: Every event type the engine can emit, in rough lifecycle order.
EVENT_TYPES = (
    "dvfs-transition",
    "dvfs-rejected",
    "stopgo-trip",
    "stopgo-thaw",
    "os-tick",
    "migration-decision",
    "migration",
    "prochot-trip",
    "emergency-enter",
    "emergency-exit",
    "fault.sensor",
    "fault.dvfs",
    "fault.migration",
    "guard.trip",
    "guard.clear",
)


@dataclass(frozen=True)
class RunEvent:
    """One timestamped engine event."""

    time_s: float
    type: str
    core: Optional[int] = None
    data: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """The event as one compact JSON line (the JSONL record)."""
        record = {"t": self.time_s, "type": self.type, "core": self.core}
        record.update(self.data)
        return json.dumps(record, sort_keys=False, separators=(",", ":"))


@dataclass(frozen=True)
class EventLogSummary:
    """Per-run roll-up attached to :class:`~repro.sim.results.RunResult`."""

    total: int
    counts: Dict[str, int]

    def count(self, event_type: str) -> int:
        """How many events of ``event_type`` the run emitted."""
        return self.counts.get(event_type, 0)


class RunEventLog:
    """An append-only, in-order log of engine events for one run.

    Pass an instance to :class:`~repro.sim.engine.ThermalTimingSimulator`
    (or :func:`~repro.sim.engine.run_workload`) to capture; afterwards
    iterate, filter by type, summarise, or export as JSONL.
    """

    def __init__(self) -> None:
        """Start with an empty capture buffer."""
        self.events: List[RunEvent] = []
        self._counts: Dict[str, int] = {}

    # -- capture -----------------------------------------------------------

    def emit(
        self,
        time_s: float,
        event_type: str,
        core: Optional[int] = None,
        **data: object,
    ) -> None:
        """Append one event (engine-facing entry point)."""
        if event_type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event_type!r}; known: {EVENT_TYPES}"
            )
        self.events.append(RunEvent(time_s, event_type, core, data))
        self._counts[event_type] = self._counts.get(event_type, 0) + 1

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        """Number of captured events."""
        return len(self.events)

    def __iter__(self) -> Iterator[RunEvent]:
        """Iterate events in emission (time) order."""
        return iter(self.events)

    def count(self, event_type: str) -> int:
        """Number of events of one type."""
        return self._counts.get(event_type, 0)

    def of_type(self, event_type: str) -> List[RunEvent]:
        """All events of one type, in emission order."""
        return [e for e in self.events if e.type == event_type]

    def counts(self) -> Dict[str, int]:
        """Per-type counts for every type seen."""
        return dict(self._counts)

    def summary(self) -> EventLogSummary:
        """The roll-up the engine attaches to the run's result."""
        return EventLogSummary(total=len(self.events), counts=self.counts())

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The whole log as JSON-lines text (one event per line)."""
        return "".join(e.to_json() + "\n" for e in self.events)

    def dump_jsonl(self, fh: TextIO) -> int:
        """Stream the log to an open text file object, one line per event.

        Never materialises the full serialisation in memory — a long
        run's log (one event per DVFS transition) streams in constant
        space. Returns the number of events written.
        """
        for event in self.events:
            fh.write(event.to_json() + "\n")
        return len(self.events)

    def write_jsonl(self, dest: Union[os.PathLike, TextIO]) -> Optional[str]:
        """Write the log as JSONL to a path or an open file object.

        Returns the path written for a path-like ``dest``, ``None`` when
        streaming to a file object (the caller owns that handle).
        """
        if hasattr(dest, "write"):
            self.dump_jsonl(dest)
            return None
        with open(dest, "w", encoding="utf-8") as fh:
            self.dump_jsonl(fh)
        return os.fspath(dest)

    @classmethod
    def from_jsonl(cls, src: Union[os.PathLike, TextIO]) -> "RunEventLog":
        """Rebuild a log from its JSONL export (path or open file object).

        The inverse of :meth:`write_jsonl`: every documented event type
        round-trips through ``log.write_jsonl(f)`` /
        ``RunEventLog.from_jsonl(f)`` with identical re-serialisation
        (``repro report`` loads event annotations through this).
        """
        log = cls()
        if hasattr(src, "read"):
            lines = iter(src)
        else:
            with open(src, "r", encoding="utf-8") as fh:
                lines = iter(fh.readlines())
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            time_s = record.pop("t")
            event_type = record.pop("type")
            core = record.pop("core", None)
            log.emit(time_s, event_type, core, **record)
        return log


def read_jsonl(path: os.PathLike) -> List[Dict[str, object]]:
    """Parse an exported event log back into a list of records."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
