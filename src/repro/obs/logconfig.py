"""Structured logging conventions for the ``repro`` package.

Every module logs through a child of the ``repro`` root logger
(``get_logger(__name__)``), so one call to :func:`configure_logging`
controls the whole package without touching other libraries' handlers.

Conventions:

* ``DEBUG`` — per-point / per-event detail (cache hits, migration rounds,
  warm-start calibration);
* ``INFO`` — one line per user-visible unit of work (a batch of
  simulation points, an experiment table);
* ``WARNING`` and above — something the user should act on.

The default level is ``WARNING`` so library users and the golden-file
tests see no output unless they ask for it (CLI flag ``--log-level``).
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

#: One line per record: time, level, dotted module, message.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s :: %(message)s"
LOG_DATEFMT = "%H:%M:%S"

#: Accepted ``--log-level`` choices, least to most verbose.
LOG_LEVELS = ("error", "warning", "info", "debug")


def get_logger(name: str) -> logging.Logger:
    """The package logger for a module (``repro.*`` dotted name).

    ``name`` is normally ``__name__``; names outside the ``repro``
    namespace are parented under it so one configuration call governs
    everything.
    """
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: str = "warning", stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install a stream handler on the ``repro`` root logger.

    Idempotent: reconfiguring replaces the previously installed handler
    rather than stacking a second one. Returns the configured root
    logger. Logs go to ``stderr`` by default so they never corrupt
    machine-readable stdout (tables, JSON, JSONL exports).
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"log level must be one of {LOG_LEVELS}: {level!r}")
    root = logging.getLogger("repro")
    for handler in [h for h in root.handlers if getattr(h, "_repro_handler", False)]:
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, datefmt=LOG_DATEFMT))
    handler._repro_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    return root
