"""The 12 four-process workloads of Table 4.

Workloads span the mix spectrum from all-integer (IIII) to all-floating-
point (FFFF); the suite label string (e.g. ``"IIFF"``) records each
member's SPEC category in order, matching the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.uarch.benchmarks import ALL_BENCHMARKS, get_benchmark
from repro.util.rng import RngStream


@dataclass(frozen=True)
class Workload:
    """A named program mix — one benchmark per core.

    Table 4's workloads are four-program mixes for the paper's 4-core
    chip; :func:`tile_workload` replicates a mix across larger scenario
    chips (mesh16, mesh64, ...).
    """

    name: str
    benchmarks: Tuple[str, ...]

    def __post_init__(self):
        """Reject workloads naming unknown benchmarks."""
        for b in self.benchmarks:
            if b not in ALL_BENCHMARKS:
                raise ValueError(f"workload {self.name}: unknown benchmark {b!r}")

    @property
    def mix_label(self) -> str:
        """Suite labels in order, e.g. ``"IIFF"``."""
        return "".join(
            "I" if get_benchmark(b).suite == "int" else "F" for b in self.benchmarks
        )

    @property
    def label(self) -> str:
        """Axis label in the paper's figure style."""
        return "-".join(self.benchmarks) + f" ({self.mix_label})"


#: Table 4, verbatim.
ALL_WORKLOADS: Tuple[Workload, ...] = (
    Workload("workload1", ("gcc", "gzip", "mcf", "vpr")),
    Workload("workload2", ("crafty", "eon", "parser", "perlbmk")),
    Workload("workload3", ("bzip2", "gzip", "twolf", "swim")),
    Workload("workload4", ("crafty", "perlbmk", "vpr", "mgrid")),
    Workload("workload5", ("gcc", "parser", "applu", "mesa")),
    Workload("workload6", ("bzip2", "eon", "art", "facerec")),
    Workload("workload7", ("gzip", "twolf", "ammp", "lucas")),
    Workload("workload8", ("parser", "vpr", "fma3d", "sixtrack")),
    Workload("workload9", ("gcc", "applu", "mgrid", "swim")),
    Workload("workload10", ("mcf", "ammp", "art", "mesa")),
    Workload("workload11", ("ammp", "facerec", "fma3d", "swim")),
    Workload("workload12", ("art", "lucas", "mgrid", "sixtrack")),
)

_BY_NAME: Dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}

#: Expected mix labels, asserted in tests against Table 4's last column.
EXPECTED_MIX_LABELS: Dict[str, str] = {
    "workload1": "IIII",
    "workload2": "IIII",
    "workload3": "IIIF",
    "workload4": "IIIF",
    "workload5": "IIFF",
    "workload6": "IIFF",
    "workload7": "IIFF",
    "workload8": "IIFF",
    "workload9": "IFFF",
    "workload10": "IFFF",
    "workload11": "FFFF",
    "workload12": "FFFF",
}


def get_workload(name: str) -> Workload:
    """Look up a Table 4 workload by name (``"workload1"`` .. ``"workload12"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def workload_names() -> List[str]:
    """All workload names in Table 4 order."""
    return [w.name for w in ALL_WORKLOADS]


def tile_workload(workload: Workload, n_cores: int) -> Workload:
    """Replicate a mix across ``n_cores`` cores by cycling its programs.

    A Table 4 four-program mix tiles onto a 16-core mesh as four copies
    of itself, core ``i`` running program ``i mod 4`` — so the mix ratio
    (e.g. IIFF) is preserved at every scale. Returns the input unchanged
    when it already has ``n_cores`` programs; the tiled name is
    ``"{name}x{n_cores}"``.
    """
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    if len(workload.benchmarks) == n_cores:
        return workload
    picks = tuple(
        workload.benchmarks[i % len(workload.benchmarks)]
        for i in range(n_cores)
    )
    return Workload(f"{workload.name}x{n_cores}", picks)


def random_workload(seed: int, name: Optional[str] = None) -> Workload:
    """A random four-program mix drawn from the 22 benchmarks.

    Table 4 is the paper's fixed selection; random mixes let tests and
    studies check that the policy conclusions generalise beyond it.
    Draws without replacement, deterministically in ``seed``.
    """
    rng = RngStream(seed, "random-workload")
    names = sorted(ALL_BENCHMARKS)
    picks = tuple(rng.choice(names, size=4, replace=False).tolist())
    return Workload(name or f"random{seed}", picks)
