"""The 12 four-process workloads of Table 4.

Workloads span the mix spectrum from all-integer (IIII) to all-floating-
point (FFFF); the suite label string (e.g. ``"IIFF"``) records each
member's SPEC category in order, matching the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.uarch.benchmarks import ALL_BENCHMARKS, get_benchmark
from repro.util.rng import RngStream


@dataclass(frozen=True)
class Workload:
    """A named four-program mix."""

    name: str
    benchmarks: Tuple[str, str, str, str]

    def __post_init__(self):
        """Reject workloads naming unknown benchmarks."""
        for b in self.benchmarks:
            if b not in ALL_BENCHMARKS:
                raise ValueError(f"workload {self.name}: unknown benchmark {b!r}")

    @property
    def mix_label(self) -> str:
        """Suite labels in order, e.g. ``"IIFF"``."""
        return "".join(
            "I" if get_benchmark(b).suite == "int" else "F" for b in self.benchmarks
        )

    @property
    def label(self) -> str:
        """Axis label in the paper's figure style."""
        return "-".join(self.benchmarks) + f" ({self.mix_label})"


#: Table 4, verbatim.
ALL_WORKLOADS: Tuple[Workload, ...] = (
    Workload("workload1", ("gcc", "gzip", "mcf", "vpr")),
    Workload("workload2", ("crafty", "eon", "parser", "perlbmk")),
    Workload("workload3", ("bzip2", "gzip", "twolf", "swim")),
    Workload("workload4", ("crafty", "perlbmk", "vpr", "mgrid")),
    Workload("workload5", ("gcc", "parser", "applu", "mesa")),
    Workload("workload6", ("bzip2", "eon", "art", "facerec")),
    Workload("workload7", ("gzip", "twolf", "ammp", "lucas")),
    Workload("workload8", ("parser", "vpr", "fma3d", "sixtrack")),
    Workload("workload9", ("gcc", "applu", "mgrid", "swim")),
    Workload("workload10", ("mcf", "ammp", "art", "mesa")),
    Workload("workload11", ("ammp", "facerec", "fma3d", "swim")),
    Workload("workload12", ("art", "lucas", "mgrid", "sixtrack")),
)

_BY_NAME: Dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}

#: Expected mix labels, asserted in tests against Table 4's last column.
EXPECTED_MIX_LABELS: Dict[str, str] = {
    "workload1": "IIII",
    "workload2": "IIII",
    "workload3": "IIIF",
    "workload4": "IIIF",
    "workload5": "IIFF",
    "workload6": "IIFF",
    "workload7": "IIFF",
    "workload8": "IIFF",
    "workload9": "IFFF",
    "workload10": "IFFF",
    "workload11": "FFFF",
    "workload12": "FFFF",
}


def get_workload(name: str) -> Workload:
    """Look up a Table 4 workload by name (``"workload1"`` .. ``"workload12"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def workload_names() -> List[str]:
    """All workload names in Table 4 order."""
    return [w.name for w in ALL_WORKLOADS]


def random_workload(seed: int, name: Optional[str] = None) -> Workload:
    """A random four-program mix drawn from the 22 benchmarks.

    Table 4 is the paper's fixed selection; random mixes let tests and
    studies check that the policy conclusions generalise beyond it.
    Draws without replacement, deterministically in ``seed``.
    """
    rng = RngStream(seed, "random-workload")
    names = sorted(ALL_BENCHMARKS)
    picks = tuple(rng.choice(names, size=4, replace=False).tolist())
    return Workload(name or f"random{seed}", picks)
