"""Generic parameter-sweep helpers over the simulation engine.

The ablation studies in :mod:`repro.experiments.ablations` are curated
sweeps with paper-facing labels; this module provides the underlying
generic machinery for user-driven exploration: vary one
:class:`~repro.sim.engine.SimulationConfig` field (or the policy spec)
across a set of values and collect the per-workload results.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.taxonomy import PolicySpec
from repro.sim.engine import SimulationConfig
from repro.sim.results import RunResult
from repro.sim.runner import ParallelRunner, RunPoint
from repro.sim.workloads import Workload


@dataclass(frozen=True)
class SweepPoint:
    """Results of one sweep value across the workloads."""

    value: object
    results: Dict[str, RunResult]  # workload name -> result

    def _require_results(self) -> None:
        if not self.results:
            raise ValueError(
                f"sweep point {self.value!r} has no workload results; "
                "averages over an empty result set are undefined"
            )

    @property
    def mean_bips(self) -> float:
        """Average throughput across the point's workloads."""
        self._require_results()
        return sum(r.bips for r in self.results.values()) / len(self.results)

    @property
    def mean_duty_cycle(self) -> float:
        """Average adjusted duty cycle across the point's workloads."""
        self._require_results()
        return sum(r.duty_cycle for r in self.results.values()) / len(self.results)

    @property
    def total_emergency_s(self) -> float:
        """Summed time above the emergency envelope across workloads."""
        return sum(r.emergency_s for r in self.results.values())


def _config_field_names() -> List[str]:
    return [f.name for f in fields(SimulationConfig)]


def _collect(
    runner: Optional[ParallelRunner],
    run_points: Sequence[RunPoint],
    values: Sequence,
    workloads: Sequence[Workload],
) -> List[SweepPoint]:
    """Execute the flattened point grid and fold it back per sweep value.

    The grid is one flat batch through the runner, so with ``jobs > 1``
    every (value, workload) simulation fans out at once rather than
    per-value; results come back in input order, keeping the assembled
    sweep identical to the historical serial loop.
    """
    runner = runner or ParallelRunner()
    results = runner.run_points(run_points)
    points = []
    n_w = len(workloads)
    for i, value in enumerate(values):
        block = results[i * n_w:(i + 1) * n_w]
        points.append(
            SweepPoint(
                value=value,
                results={w.name: r for w, r in zip(workloads, block)},
            )
        )
    return points


def sweep_config_field(
    field_name: str,
    values: Sequence,
    spec: Optional[PolicySpec],
    workloads: Sequence[Workload],
    base_config: Optional[SimulationConfig] = None,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Vary one configuration field over ``values``.

    ``runner`` selects the execution backend (process pool, disk cache);
    the default is an uncached in-process :class:`ParallelRunner`, which
    reproduces the historical serial behaviour exactly.

    Example::

        sweep_config_field(
            "threshold_c", [84.2, 90.0, 100.0],
            spec_by_key("distributed-dvfs-none"),
            [get_workload("workload7")],
        )
    """
    base_config = base_config or SimulationConfig()
    if field_name not in _config_field_names():
        raise ValueError(
            f"unknown SimulationConfig field {field_name!r}; "
            f"known: {_config_field_names()}"
        )
    if not values:
        raise ValueError("at least one sweep value is required")
    if not workloads:
        raise ValueError("at least one workload is required")
    grid = [
        RunPoint(w, spec, replace(base_config, **{field_name: value}))
        for value in values
        for w in workloads
    ]
    return _collect(runner, grid, values, workloads)


def sweep_policies(
    specs: Sequence[Optional[PolicySpec]],
    workloads: Sequence[Workload],
    config: Optional[SimulationConfig] = None,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Vary the policy across ``specs`` (``None`` = unthrottled)."""
    config = config or SimulationConfig()
    if not specs:
        raise ValueError("at least one policy spec is required")
    if not workloads:
        raise ValueError("at least one workload is required")
    grid = [RunPoint(w, spec, config) for spec in specs for w in workloads]
    values = [spec.key if spec else "unthrottled" for spec in specs]
    return _collect(runner, grid, values, workloads)


def best_point(
    points: Sequence[SweepPoint],
    metric: Callable[[SweepPoint], float] = lambda p: p.mean_bips,
    require_safe: bool = True,
) -> SweepPoint:
    """The sweep point maximising ``metric``.

    With ``require_safe`` (default), points that spent time above the
    emergency envelope are excluded — a DTM configuration that overheats
    is not a candidate no matter its throughput. Falls back to the full
    set if every point violated.
    """
    if not points:
        raise ValueError("empty sweep")
    candidates = [p for p in points if p.total_emergency_s == 0.0] if require_safe else list(points)
    if not candidates:
        candidates = list(points)
    return max(candidates, key=metric)
