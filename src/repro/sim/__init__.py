"""The thermal/timing simulator (paper Section 3.3).

This package closes the loop of Figure 2: power traces feed a DTM policy
and the HotSpot-style thermal model, progress is tracked in absolute time
(cores may run at different effective rates under DVFS/stop-go), and
temperature-dependent leakage feeds back into the power input.

* :mod:`repro.sim.workloads` — the 12 four-program workloads (Table 4);
* :mod:`repro.sim.engine` — the stepping engine and its configuration;
* :mod:`repro.sim.metrics` — BIPS and adjusted-duty-cycle accounting;
* :mod:`repro.sim.results` — result containers and time series;
* :mod:`repro.sim.sweep` — parameter-sweep helpers (threshold ablation);
* :mod:`repro.sim.runner` — parallel point execution + on-disk caching.
"""

from repro.sim.engine import SimulationConfig, ThermalTimingSimulator, run_workload
from repro.sim.metrics import MetricsAccumulator
from repro.sim.results import RunResult, TimeSeries
from repro.sim.runner import (
    ParallelRunner,
    ResultCache,
    RunPoint,
    RunnerStats,
    config_hash,
)
from repro.sim.sweep import SweepPoint, best_point, sweep_config_field, sweep_policies
from repro.sim.workloads import ALL_WORKLOADS, Workload, get_workload

__all__ = [
    "ALL_WORKLOADS",
    "MetricsAccumulator",
    "ParallelRunner",
    "ResultCache",
    "RunPoint",
    "RunResult",
    "RunnerStats",
    "SimulationConfig",
    "SweepPoint",
    "ThermalTimingSimulator",
    "TimeSeries",
    "Workload",
    "best_point",
    "config_hash",
    "get_workload",
    "run_workload",
    "sweep_config_field",
    "sweep_policies",
]
