"""The thermal/timing simulation engine (paper Figure 2, Section 3.3).

One engine step covers one trace sample period (100,000 nominal cycles =
27.78 us). Within a step, for each core:

1. the throttle policy reads that core's hotspot sensors and produces a
   frequency scale (stop-go: 1.0 or 0.0; DVFS: the PI output);
2. the DVFS actuator enforces the minimum-transition rule and charges the
   10 us PLL penalty for accepted changes; migration context switches
   charge 100 us to each involved core;
3. useful work is ``scale x (step - stall overlap)`` seconds of
   full-speed-equivalent execution: the core's trace position, retired
   instructions, and performance counters advance by exactly that much;
4. power is assembled — trace dynamic power scaled by the cubic DVFS
   relation and the active fraction, plus temperature-dependent leakage
   (voltage-squared scaled for DVFS domains) — and the thermal model steps.

Every 10 ms the OS timer fires: thermal-trend windows are folded into the
thread-core thermal table, and the migration policy (if any) may propose a
reassignment, which the scheduler executes with per-core penalties. This
is the paper's two-loop structure: a fast hardware PI loop inside a slow
OS migration loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dvfs import DVFSActuator, DVFSPolicy
from repro.core.migration import MigrationContext, MigrationPolicy
from repro.core.policy import DEFAULT_THRESHOLD_C, ThrottlePolicy
from repro.core.sensor_migration import SensorBasedMigration
from repro.core.stopgo import StopGoPolicy
from repro.core.taxonomy import PolicySpec, build_policy
from repro.faults.guards import GuardConfig, SensorGuardBank
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultPlan, FaultSummary
from repro.osmodel.process import Process
from repro.osmodel.scheduler import Scheduler
from repro.osmodel.thermal_table import ThreadCoreThermalTable
from repro.obs.events import RunEventLog
from repro.obs.logconfig import get_logger
from repro.obs.profiler import NULL_PROFILER, StepProfiler
from repro.obs.telemetry import TelemetrySampler
from repro.osmodel.timer import DEFAULT_MIGRATION_PERIOD_S, PeriodicTimer
from repro.scenarios import Scenario
from repro.sim.metrics import EMERGENCY_TOLERANCE_C, MetricsAccumulator
from repro.sim.results import RunResult, TimeSeries
from repro.sim.workloads import Workload
from repro.thermal.layouts import (
    HOTSPOT_UNITS,
    build_cmp_floorplan,
    core_block_name,
)
from repro.thermal.coupling import LeakageCouplingError, coupled_steady_state
from repro.thermal.leakage import LeakageModel
from repro.thermal.model import ThermalKernel, ThermalModel
from repro.thermal.package import HIGH_PERFORMANCE_PACKAGE, ThermalPackage
from repro.uarch.config import MachineConfig
from repro.uarch.interval_model import UNIT_ORDER
from repro.uarch.power import (
    L2_BANK_PEAK_W,
    L2_IDLE_FRACTION,
    XBAR_IDLE_FRACTION,
    XBAR_PEAK_W,
    PowerModel,
)
from repro.uarch.tracegen import generate_trace
from repro.util.rng import DEFAULT_ROOT_SEED, RngStream

#: Gradient weight (seconds) in the sensor-intensity observation: the
#: observed signal is (elevation above the chip's coolest sensor) +
#: tau * dT/dt, capturing both equilibrium level and transient trend.
GRADIENT_TAU_S = 0.010


@dataclass(frozen=True)
class SimulationConfig:
    """Everything configurable about a run.

    Defaults reproduce the paper's conditions: 0.5 s of silicon time,
    84.2 C limit, 10 ms migration cadence, warm-started package.
    """

    duration_s: float = 0.5
    threshold_c: float = DEFAULT_THRESHOLD_C
    seed: int = DEFAULT_ROOT_SEED
    machine: MachineConfig = field(default_factory=MachineConfig)
    package: ThermalPackage = HIGH_PERFORMANCE_PACKAGE
    trace_duration_s: float = 0.25
    #: Fraction of trace-mean power used for the warm-start steady state;
    #: ``None`` auto-calibrates the fraction so the hottest block starts
    #: just below the threshold (the controlled-equilibrium regime the
    #: paper's runs operate in).
    warm_start_fraction: Optional[float] = None
    migration_period_s: float = DEFAULT_MIGRATION_PERIOD_S
    record_series: bool = False
    sensor_noise_std_c: float = 0.0
    sensor_quantization_c: float = 0.0
    #: Static calibration error added to every sensor reading. A negative
    #: offset makes the chip look cooler than it is — the failure mode the
    #: hardware trip exists to catch.
    sensor_offset_c: float = 0.0
    #: Independent hardware overtemperature trip (PROCHOT-style): a
    #: dedicated analog circuit, separate from the digital sensors the
    #: policies read, that clock-gates the whole chip for
    #: ``hardware_trip_freeze_s`` whenever any block truly reaches the
    #: threshold. Off by default — the paper's policies are evaluated on
    #: their own merits; the sensor-bias ablation turns it on.
    hardware_trip: bool = False
    hardware_trip_freeze_s: float = 1e-3
    power_scale: float = 1.0
    #: Optional per-core edge lengths (mm) for the asymmetric-cores
    #: extension; ``None`` keeps the paper's uniform 4 mm cores. A larger
    #: core runs the same workload at lower power density and thus cooler.
    core_sizes_mm: Optional[Tuple[float, ...]] = None
    #: Dynamic fault injection (see :mod:`repro.faults`): sensor channels
    #: sticking, dropping out, drifting, spiking or stepping out of
    #: calibration; DVFS transitions rejected or stretched; migration
    #: requests dropped. ``None`` or an *empty* plan leaves the run
    #: bit-identical to the pre-fault engine. Participates in the
    #: result-cache key like every other configuration field.
    fault_plan: Optional[FaultPlan] = None
    #: Sensor-sanity guard layer (see :mod:`repro.faults.guards`): a
    #: watchdog that stops trusting stuck/implausible sensors and falls
    #: the affected core back to blind stop-go. Off (``None``) by default.
    guard: Optional[GuardConfig] = None
    #: Allow the whole-run fused fast path when nothing (policy, faults,
    #: guards, PROCHOT, instrumentation) can observe an intermediate
    #: step. Results are bit-identical either way — see
    #: ``docs/PERFORMANCE.md`` — so this exists for equivalence testing
    #: and debugging, not for correctness.
    fuse_steps: bool = True
    #: Declarative chip description (see :mod:`repro.scenarios`): mesh or
    #: row topology, per-core classes (area/layout/power/DVFS floor) and
    #: technology node (clock, DVFS ladder, leakage physics). ``None``
    #: keeps the paper's hard-wired 4-core path bit-identical. Like every
    #: config field, a scenario hashes into the result-cache key.
    scenario: Optional["Scenario"] = None

    def __post_init__(self):
        """Reject non-physical durations, scales and thresholds."""
        if (
            self.scenario is not None
            and self.scenario.n_cores != self.machine.n_cores
        ):
            raise ValueError(
                f"scenario {self.scenario.name!r} has "
                f"{self.scenario.n_cores} cores but machine.n_cores is "
                f"{self.machine.n_cores}; build the machine via "
                "Scenario.machine_config()"
            )
        if not self.duration_s > 0:
            raise ValueError(f"duration_s must be positive: {self.duration_s}")
        if not self.trace_duration_s > 0:
            raise ValueError(
                f"trace_duration_s must be positive: {self.trace_duration_s}"
            )
        if not self.power_scale > 0:
            raise ValueError(f"power_scale must be positive: {self.power_scale}")
        if not self.hardware_trip_freeze_s > 0:
            raise ValueError(
                f"hardware_trip_freeze_s must be positive: "
                f"{self.hardware_trip_freeze_s}"
            )
        if not self.migration_period_s > 0:
            raise ValueError(
                f"migration_period_s must be positive: {self.migration_period_s}"
            )
        if self.warm_start_fraction is not None and not (
            0.0 <= self.warm_start_fraction <= 1.0
        ):
            raise ValueError(
                f"warm_start_fraction must be in [0,1]: {self.warm_start_fraction}"
            )
        if self.sensor_noise_std_c < 0 or self.sensor_quantization_c < 0:
            raise ValueError("sensor fidelity parameters must be >= 0")


logger = get_logger(__name__)


class ThermalTimingSimulator:
    """Runs one workload under one DTM policy.

    Observability is strictly opt-in: pass an
    :class:`~repro.obs.events.RunEventLog` to capture typed, timestamped
    engine events (its summary is attached to the returned
    :class:`~repro.sim.results.RunResult`), a
    :class:`~repro.obs.profiler.StepProfiler` to time the step loop's
    named sections, and/or a
    :class:`~repro.obs.telemetry.TelemetrySampler` to capture a bounded
    metrics time-series at a configurable sample period. None of them
    feed anything back into the simulation, so instrumented runs are
    byte-identical to uninstrumented ones. Event logs and profilers have
    per-step semantics and therefore block the fused fast path; the
    telemetry sampler is fusion-aware (it observes only at sample
    instants) and keeps fusion-eligible runs fused.
    """

    def __init__(
        self,
        benchmarks: Sequence[str],
        spec: Optional[PolicySpec],
        config: Optional[SimulationConfig] = None,
        *,
        event_log: Optional[RunEventLog] = None,
        profiler: Optional[StepProfiler] = None,
        telemetry: Optional[TelemetrySampler] = None,
        substrate: Optional["EngineSubstrate"] = None,
    ):
        """Assemble the full simulated machine for one run.

        ``substrate`` optionally shares construction-time artifacts
        (floorplan, factored thermal kernel, generated traces) across
        simulators of the same machine/package; it must match the
        config's machine description. Every shared artifact is
        deterministic in its inputs, so a substrate-built simulator is
        bit-identical to a standalone one (asserted in
        ``tests/sim/test_fleet.py``).
        """
        self.config = config or SimulationConfig()
        self.event_log = event_log
        self.profiler = profiler
        self.telemetry = telemetry
        machine = self.config.machine
        if len(benchmarks) != machine.n_cores:
            raise ValueError(
                f"expected {machine.n_cores} benchmarks, got {len(benchmarks)}"
            )
        # Entries may be benchmark names or BenchmarkProfile objects (the
        # SMT extension runs merged profiles that have no registry entry).
        self._profiles = list(benchmarks)
        self.benchmarks = tuple(
            b if isinstance(b, str) else b.name for b in benchmarks
        )
        self.spec = spec
        self.dt = machine.sample_period_s
        self.n_cores = machine.n_cores

        # Substrates. A shared EngineSubstrate supplies the identical
        # floorplan/kernel/trace objects this block would otherwise
        # build from scratch.
        self._substrate = substrate
        if substrate is not None:
            substrate.check(self.config)
            self.floorplan = substrate.floorplan
            self.thermal = ThermalModel(
                self.floorplan, substrate.package, self.dt, kernel=substrate.kernel
            )
        else:
            scenario = self.config.scenario
            self.floorplan = (
                scenario.build_floorplan()
                if scenario is not None
                else build_cmp_floorplan(
                    machine.n_cores, core_sizes_mm=self.config.core_sizes_mm
                )
            )
            self.thermal = ThermalModel(self.floorplan, self.config.package, self.dt)
        power_model = PowerModel(machine, scale=self.config.power_scale)
        scenario = self.config.scenario
        if scenario is not None:
            self.leakage = LeakageModel(
                self.floorplan,
                power_model.reference_leakage_w,
                beta=scenario.tech.leakage_beta,
                t_ref_c=scenario.tech.leakage_t_ref_c,
            )
        else:
            self.leakage = LeakageModel(
                self.floorplan, power_model.reference_leakage_w
            )
        self._power_model = power_model

        # Traces and processes. A scenario scales each core's dynamic
        # power by its class (a LITTLE core's thread burns a fraction of
        # a big core's watts); the scale binds to the thread's home core
        # at t=0 and migrates with the thread (see docs/SCENARIOS.md).
        if scenario is not None:
            core_scales = [
                self.config.power_scale * s
                for s in scenario.core_power_scales()
            ]
        else:
            core_scales = [self.config.power_scale] * self.n_cores
        if substrate is not None:
            traces = [
                substrate.trace(entry, self.config, power_scale=core_scales[i])
                for i, entry in enumerate(self._profiles)
            ]
        else:
            traces = [
                generate_trace(
                    entry,
                    machine,
                    duration_s=self.config.trace_duration_s,
                    seed=self.config.seed,
                    power_scale=core_scales[i],
                )
                for i, entry in enumerate(self._profiles)
            ]
        processes = [
            Process(pid=i, benchmark=name, trace=trace)
            for i, (name, trace) in enumerate(zip(self.benchmarks, traces))
        ]
        self.scheduler = Scheduler(processes, self.n_cores)

        # Policies.
        if spec is None:
            self.throttle: Optional[ThrottlePolicy] = None
            self.migration: Optional[MigrationPolicy] = None
        else:
            self.throttle, self.migration = build_policy(
                spec,
                self.n_cores,
                self.dt,
                threshold_c=self.config.threshold_c,
                core_min_scales=(
                    scenario.core_min_scales() if scenario is not None else None
                ),
            )
        self.actuators = [
            DVFSActuator(
                transition_penalty_s=machine.dvfs.transition_penalty_s,
                min_transition=machine.dvfs.min_transition,
            )
            for _ in range(self.n_cores)
        ]
        self.thermal_table = ThreadCoreThermalTable(self.n_cores, HOTSPOT_UNITS)
        self._migration_timer = PeriodicTimer(self.config.migration_period_s)

        # Fault injection and guards: both strictly opt-in. With no plan
        # (or an empty one) and no guard config, every hook below stays
        # None and the run is bit-identical to the pre-fault engine.
        plan = self.config.fault_plan
        if plan is not None and not plan.is_empty:
            self._faults: Optional[FaultInjector] = FaultInjector(
                plan,
                n_cores=self.n_cores,
                units=HOTSPOT_UNITS,
                seed=self.config.seed,
                event_log=event_log,
            )
            for c, actuator in enumerate(self.actuators):
                actuator.fault_gate = self._faults.dvfs_gate_for(c)
            if self.migration is not None:
                self.migration.request_filter = self._faults.migration_request
        else:
            self._faults = None
        self._guards: Optional[SensorGuardBank] = (
            SensorGuardBank(
                self.n_cores, len(HOTSPOT_UNITS), self.dt, self.config.guard
            )
            if self.config.guard is not None
            else None
        )

        # Precomputed indices into the thermal network.
        net = self.thermal.network
        self._core_unit_idx = np.array(
            [
                [net.index(core_block_name(c, u)) for u in UNIT_ORDER]
                for c in range(self.n_cores)
            ],
            dtype=int,
        )
        self._hotspot_idx = np.array(
            [
                [net.index(core_block_name(c, u)) for u in HOTSPOT_UNITS]
                for c in range(self.n_cores)
            ],
            dtype=int,
        )
        self._l2_idx = np.array(
            [net.index(f"l2_{c}") for c in range(self.n_cores)], dtype=int
        )
        self._xbar_idx = net.index("xbar")
        # Ownership of blocks by core (-1 = shared), for leakage V^2 scaling.
        self._block_core = np.full(net.n_blocks, -1, dtype=int)
        for c in range(self.n_cores):
            self._block_core[self._core_unit_idx[c]] = c

        # Mutable run state. Stall deadlines live in a plain list: the
        # step loop reads one scalar per core per step, and list indexing
        # is several times cheaper than numpy 0-d extraction.
        self._stall_until = [0.0] * self.n_cores
        self._prochot_until = 0.0
        #: Hardware-trip activations over the run (0 unless enabled).
        self.prochot_events = 0
        self._sensor_rng = RngStream(self.config.seed, "sensors", *self.benchmarks)
        self._window = _TrendWindow(self.n_cores, len(HOTSPOT_UNITS))
        #: Metrics of the most recent :meth:`run` (set when it completes).
        self.metrics: Optional[MetricsAccumulator] = None
        # Event-capture shadow state (never read by the simulation).
        self._prev_sg_frozen = [False] * self.n_cores
        self._in_emergency = False
        # Migration-trigger state: each core's critical hotspot at the last
        # considered migration round, and when that round happened.
        self._last_critical: Optional[List[str]] = None
        self._last_round_s = 0.0

        # Hot-path scratch buffers, reused every step. The step loop
        # writes every element of the power buffer each step (the three
        # index families partition the block set — checked here), so no
        # per-step zeroing is needed.
        self._unit_flat = self._core_unit_idx.reshape(-1)
        self._l2_idx_list = [int(i) for i in self._l2_idx]
        self._xbar_i = int(self._xbar_idx)
        covered = sorted(
            self._unit_flat.tolist() + self._l2_idx_list + [self._xbar_i]
        )
        if covered != list(range(net.n_blocks)):
            raise RuntimeError(
                "power indices do not partition the floorplan blocks"
            )
        n_units = len(UNIT_ORDER)
        self._power_buf = np.zeros(net.n_blocks)
        self._unit_pw_buf = np.empty((self.n_cores, n_units))
        self._scaled_buf = np.empty((self.n_cores, n_units))
        self._dyn_arr = np.empty(self.n_cores)
        self._dyn_col = self._dyn_arr[:, None]
        self._ssq_arr = np.empty(self.n_cores)
        self._ssq_col = self._ssq_arr[:, None]
        self._leak_mult = np.ones(net.n_blocks)
        # Per-trace scalar columns pre-extracted to plain Python lists:
        # list indexing hands back a float directly, several times faster
        # than numpy 0-d extraction, and the inner loop reads four
        # scalars per core per step.
        if substrate is not None:
            self._trace_aux = {
                p.pid: substrate.trace_aux(p.trace)
                for p in self.scheduler.processes
            }
        else:
            self._trace_aux = {
                p.pid: _TraceAux(p.trace) for p in self.scheduler.processes
            }

        # Whole-run step fusion (see run()): any entry here means some
        # per-step observer could see or perturb an intermediate state,
        # so the engine must take the general stepwise path.
        blockers = []
        if self.throttle is not None:
            blockers.append("throttle-policy")
        if self.migration is not None:
            blockers.append("migration-policy")
        if self._faults is not None:
            blockers.append("fault-plan")
        if self._guards is not None:
            blockers.append("sensor-guards")
        if self.config.hardware_trip:
            blockers.append("hardware-trip")
        if self.config.record_series:
            blockers.append("record-series")
        if event_log is not None:
            blockers.append("event-log")
        if profiler is not None:
            blockers.append("profiler")
        if not self.config.fuse_steps:
            blockers.append("disabled")
        #: Why the fused fast path cannot be used (empty = eligible).
        #: The telemetry sampler is deliberately absent from this list:
        #: it observes only at sample instants, so sampled runs keep the
        #: fused fast path (see docs/OBSERVABILITY.md).
        self.fusion_blockers: Tuple[str, ...] = tuple(blockers)
        #: Whether the most recent :meth:`run` took the fused fast path.
        self.last_run_fused = False

        if telemetry is not None:
            telemetry.bind(self)

    # -- helpers -----------------------------------------------------------

    def _read_sensors(self, t: float = 0.0) -> List[Dict[str, float]]:
        """Per-core hotspot sensor readings (optionally degraded)."""
        temps = self.thermal.temperatures[self._hotspot_idx]  # (n_cores, 2)
        noise = self.config.sensor_noise_std_c
        quant = self.config.sensor_quantization_c
        if self.config.sensor_offset_c:
            temps = temps + self.config.sensor_offset_c
        if noise > 0:
            # Exactly one normal((n_cores, 2)) draw per sensor read.
            # The fleet engine replays this stream per member — same
            # draw shape at the same steps — so batched noisy runs stay
            # bit-identical to scalar ones; changing the draw shape or
            # frequency here breaks that replay contract (and the
            # fleet equivalence tests).
            temps = temps + self._sensor_rng.normal(0.0, noise, temps.shape)
        if quant > 0:
            # Explicit round-half-up-to-grid (x.5 boundaries snap toward
            # +inf), the same rule SensorBank documents — not np.round's
            # round-half-even.
            temps = np.floor(temps / quant + 0.5) * quant
        if self._faults is not None:
            # Dynamic faults apply after the static degradation pipeline:
            # a stuck or dropped channel latches the *reported* (already
            # offset/noisy/quantized) value, as real readout paths do.
            temps = self._faults.apply_sensor_faults(t, temps)
        return [
            {unit: float(temps[c, k]) for k, unit in enumerate(HOTSPOT_UNITS)}
            for c in range(self.n_cores)
        ]

    def _warm_power(self, frac: float) -> np.ndarray:
        """Block power vector at a uniform fraction of trace-mean power."""
        p = np.zeros(self.thermal.network.n_blocks)
        for c in range(self.n_cores):
            aux = self._trace_aux[self.scheduler.process_on(c).pid]
            p[self._core_unit_idx[c]] = aux.unit_power_mean * frac
            act = aux.l2_activity_mean * frac
            p[self._l2_idx[c]] = self.config.power_scale * L2_BANK_PEAK_W * (
                L2_IDLE_FRACTION + (1 - L2_IDLE_FRACTION) * act
            )
        p[self._xbar_idx] = self.config.power_scale * XBAR_PEAK_W * XBAR_IDLE_FRACTION
        return p

    def _warm_temps(self, frac: float) -> np.ndarray:
        """Leakage-consistent steady temperatures at a power fraction."""
        temps, _ = coupled_steady_state(
            self.thermal, self.leakage, self._warm_power(frac), tolerance_c=1e-3
        )
        return temps

    def _warm_start(self) -> None:
        """Initialize temperatures at a throttled-equilibrium steady state.

        Real measurement runs start from a thermally settled machine (the
        paper waits for stable temperatures before measuring); the
        controlled equivalent here is the steady state whose hottest block
        sits just below the threshold. If even full trace-mean power stays
        below the threshold, the workload is thermally unconstrained and
        full power is used.
        """
        frac = self.config.warm_start_fraction
        n_blocks = self.thermal.network.n_blocks

        def max_block_temp(fraction: float) -> float:
            """Hottest block at ``fraction`` of mean power, self-consistently."""
            # A diverging leakage fixed point means the operating point is
            # unsustainable — for bisection purposes, "infinitely hot".
            try:
                return float(self._warm_temps(fraction)[:n_blocks].max())
            except LeakageCouplingError:
                return float("inf")

        if frac is None:
            target = self.config.threshold_c - 2.0
            if max_block_temp(1.0) <= target:
                frac = 1.0
            else:
                lo, hi = 0.05, 1.0
                for _ in range(10):
                    mid = 0.5 * (lo + hi)
                    if max_block_temp(mid) > target:
                        hi = mid
                    else:
                        lo = mid
                frac = lo
        self.thermal.set_temperatures(self._warm_temps(frac))

    # -- main loop ------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the full run and return its result.

        Dispatches to the fused whole-run fast path when
        :attr:`fusion_blockers` is empty, and to the general stepwise loop
        otherwise. The two paths perform the same floating-point
        operations in the same order, so results are bit-identical.
        """
        cfg = self.config
        n_steps = max(1, int(round(cfg.duration_s / self.dt)))
        self._warm_start()
        metrics = MetricsAccumulator(self.n_cores, cfg.threshold_c)
        if self.telemetry is not None:
            self.telemetry.begin_run()
        self.last_run_fused = not self.fusion_blockers
        logger.debug(
            "run start: workload=%s policy=%s steps=%d dt=%.3g fused=%s",
            "-".join(self.benchmarks),
            self.spec.name if self.spec else "unthrottled",
            n_steps,
            self.dt,
            self.last_run_fused,
        )
        if self.last_run_fused:
            series = None
            self._run_fused(n_steps, metrics)
        else:
            series = self._run_stepwise(n_steps, metrics)
        self.metrics = metrics
        logger.debug(
            "run end: bips=%.3f duty=%.3f migrations=%d",
            metrics.bips,
            metrics.duty_cycle,
            self.scheduler.total_migrations,
        )
        return self._build_result(metrics, series)

    def _run_stepwise(
        self, n_steps: int, metrics: MetricsAccumulator
    ) -> Optional["_SeriesRecorder"]:
        """The general per-step loop: every edge is checked every step.

        The paper's controllers sample the sensors at every trace step, so
        any active policy collapses the fusion horizon to a single step —
        this loop is the fast path for every throttled run. It assembles
        the power vector into preallocated buffers (the index families
        partition the block set, so every element is overwritten each
        step), keeps per-core scalar work in plain Python, and advances
        temperatures through the cached
        :class:`~repro.thermal.model.StepOperator`.
        """
        cfg = self.config
        dt = self.dt
        n_cores = self.n_cores
        n_blocks = self.thermal.network.n_blocks
        dvfs = isinstance(self.throttle, DVFSPolicy)
        stopgo = isinstance(self.throttle, StopGoPolicy)
        nominal_cycles = dt * cfg.machine.clock_hz
        events = self.event_log
        prof = self.profiler if self.profiler is not None else NULL_PROFILER
        thermal = self.thermal
        apply_step = thermal.operator_for(dt).apply
        leak_power = self.leakage.power_fast
        throttle = self.throttle
        guards = self._guards
        faults = self._faults
        window = self._window
        record_step = metrics.record_step
        process_on = self.scheduler.process_on
        trace_aux = self._trace_aux
        actuators = self.actuators
        # Core -> process binding changes only when a migration executes,
        # which only happens inside _os_tick — refreshed there below.
        procs = [process_on(c) for c in range(n_cores)]
        core_aux = [trace_aux[p.pid] for p in procs]
        stall_until = self._stall_until
        hotspot_idx = self._hotspot_idx
        migration_due = self._migration_timer.fire_due

        series = _SeriesRecorder(n_steps, n_cores) if cfg.record_series else None

        # Telemetry sampling: one state read after every `tel_stride`-th
        # step. The sampler consumes true post-step temperatures (never
        # the sensor path) and feeds nothing back, so it perturbs neither
        # need_sensors/policy_fast gating below nor any simulated value.
        telemetry = self.telemetry
        if telemetry is not None:
            tel_stride = telemetry.stride_steps(dt)
            tel_next = tel_stride - 1
        else:
            tel_stride = 0
            tel_next = -1

        # What the sensor path must produce: policies, guards, faults and
        # series all consume readings every step; the profiler keeps the
        # sensors section observable even for unthrottled runs. Per-core
        # dicts are materialized only for the dict-API consumers.
        need_sensors = (
            throttle is not None
            or guards is not None
            or faults is not None
            or series is not None
            or self.profiler is not None
        )
        # Hottest-only fast path: both throttle families consume nothing
        # but each core's hottest reading (scales_from_hottest), so when
        # no other consumer needs the full per-unit dicts the loop hands
        # the policy a plain float list instead. Migration ticks build
        # dicts on demand (a few per run). Results are identical either
        # way — scales() delegates to scales_from_hottest() on exactly
        # these values.
        policy_fast = (
            throttle is not None
            and hasattr(throttle, "scales_from_hottest")
            and guards is None
            and faults is None
            and series is None
        )
        need_dicts = (
            (throttle is not None and not policy_fast)
            or guards is not None
            or series is not None
        )
        window_live = throttle is not None and self.migration is not None
        offset = cfg.sensor_offset_c
        noise = cfg.sensor_noise_std_c
        quant = cfg.sensor_quantization_c
        units = HOTSPOT_UNITS
        two_units = len(units) == 2
        u0 = u1 = None
        if two_units:
            u0, u1 = units

        # Reusable profiler section handles (no-ops when unprofiled).
        sec_sensors = prof.section("sensors")
        sec_throttle = prof.section("throttle")
        sec_power = prof.section("power")
        sec_thermal = prof.section("thermal-step")
        sec_os_tick = prof.section("os-tick")

        # Preallocated step-scope buffers: consumers read, never keep.
        power = self._power_buf
        unit_buf = self._unit_pw_buf
        scaled_buf = self._scaled_buf
        dyn_arr = self._dyn_arr
        ssq_arr = self._ssq_arr
        leak_mult = self._leak_mult
        unit_flat = self._unit_flat
        l2_idx = self._l2_idx_list
        xbar_i = self._xbar_i
        core_range = range(n_cores)
        core_work = [0.0] * n_cores
        core_stall = [0.0] * n_cores
        core_frozen = [False] * n_cores
        core_instr = [0.0] * n_cores
        ones_scales = [1.0] * n_cores
        l2_base = cfg.power_scale * L2_BANK_PEAK_W
        xbar_base = cfg.power_scale * XBAR_PEAK_W

        readings: List[Dict[str, float]] = []
        hot: List[float] = []
        temps = None
        for step in range(n_steps):
            t = step * dt

            if need_sensors:
                with sec_sensors:
                    temps = thermal.temperatures[hotspot_idx]  # (n_cores, 2)
                    if offset:
                        temps = temps + offset
                    if noise > 0:
                        temps = temps + self._sensor_rng.normal(
                            0.0, noise, temps.shape
                        )
                    if quant > 0:
                        # Round-half-up-to-grid (x.5 snaps toward +inf),
                        # the rule SensorBank documents — not np.round's
                        # round-half-even.
                        temps = np.floor(temps / quant + 0.5) * quant
                    if faults is not None:
                        # Dynamic faults apply after the static pipeline:
                        # a stuck or dropped channel latches the
                        # *reported* (already offset/noisy/quantized)
                        # value, as real readout paths do.
                        temps = faults.apply_sensor_faults(t, temps)
                    if need_dicts:
                        if two_units:
                            readings = [
                                {u0: r[0], u1: r[1]} for r in temps.tolist()
                            ]
                        else:
                            readings = [
                                dict(zip(units, row)) for row in temps.tolist()
                            ]
                    elif policy_fast:
                        if two_units:
                            hot = [max(r[0], r[1]) for r in temps.tolist()]
                        else:
                            hot = [max(row) for row in temps.tolist()]

            # Sensor-sanity watchdog: sees exactly what the policies see.
            if guards is not None:
                for core, transition in guards.observe(t, readings):
                    logger.debug("guard %s core=%d t=%.6f", transition, core, t)
                    if events is not None:
                        events.emit(
                            t,
                            "guard.trip" if transition == "trip" else "guard.clear",
                            core,
                        )

            # Outer loop: OS timer + migration.
            if migration_due(t):
                with sec_os_tick:
                    if policy_fast and self.migration is not None:
                        # The tick's migration trigger wants full dicts;
                        # build them for this step only (same values the
                        # hot list was reduced from).
                        if two_units:
                            readings = [
                                {u0: r[0], u1: r[1]} for r in temps.tolist()
                            ]
                        else:
                            readings = [
                                dict(zip(units, row)) for row in temps.tolist()
                            ]
                    self._os_tick(t, readings)
                procs = [process_on(c) for c in core_range]
                core_aux = [trace_aux[p.pid] for p in procs]

            # Inner loop: throttling.
            if throttle is None:
                scales = ones_scales
            else:
                prev_trips = throttle.trip_count if stopgo else 0
                with sec_throttle:
                    if policy_fast:
                        scales = throttle.scales_from_hottest(t, hot)
                    else:
                        scales = throttle.scales(t, readings)
                if events is not None and stopgo:
                    self._emit_stopgo_events(events, t, scales, prev_trips)

            # Independent hardware overtemperature trip (PROCHOT-style):
            # reads true silicon, not the (possibly miscalibrated) digital
            # sensors, and clock-gates the whole chip when it fires.
            prochot_active = False
            if cfg.hardware_trip:
                if t < self._prochot_until:
                    prochot_active = True
                elif thermal.max_block_temperature() >= cfg.threshold_c:
                    self._prochot_until = t + cfg.hardware_trip_freeze_s
                    self.prochot_events += 1
                    prochot_active = True
                    if events is not None:
                        events.emit(
                            t,
                            "prochot-trip",
                            temp_c=float(thermal.max_block_temperature()),
                        )
                    logger.debug("prochot trip #%d at t=%.6f", self.prochot_events, t)

            with sec_power:
                total_l2_act = 0.0
                for c in core_range:
                    proc = procs[c]
                    aux = core_aux[c]
                    idx = int(proc.position) % aux.n_samples

                    guard_scale = (
                        guards.override(c, t) if guards is not None else None
                    )
                    if dvfs:
                        actuator = actuators[c]
                        if guard_scale is not None:
                            # Fallback: the PLL is left where it is (no
                            # re-lock on distrusted feedback); the blind
                            # duty cycle clock-gates the core instead.
                            s = actuator.current_scale
                            frozen = guard_scale == 0.0
                        else:
                            requested = scales[c]
                            if requested != requested:
                                # NaN command — the PI loop was fed an
                                # invalid (e.g. dropped-out) reading. A
                                # real PLL ignores a garbage request and
                                # holds its operating point.
                                requested = actuator.current_scale
                            prev_scale = actuator.current_scale
                            prev_transitions = actuator.transitions
                            penalty = actuator.request(requested, t)
                            if penalty > 0:
                                stall_until[c] = max(stall_until[c], t) + penalty
                            s = actuator.current_scale
                            frozen = False
                            if events is not None:
                                if actuator.transitions > prev_transitions:
                                    events.emit(
                                        t,
                                        "dvfs-transition",
                                        c,
                                        **{
                                            "from": prev_scale,
                                            "to": s,
                                            "penalty_s": penalty,
                                        },
                                    )
                                elif scales[c] != prev_scale:
                                    events.emit(
                                        t,
                                        "dvfs-rejected",
                                        c,
                                        requested=scales[c],
                                        current=prev_scale,
                                    )
                    else:
                        s = scales[c] if guard_scale is None else guard_scale
                        frozen = s == 0.0
                    if prochot_active:
                        frozen = True  # hardware gate overrides everything

                    stalled = min(max(stall_until[c] - t, 0.0), dt)
                    active = 0.0 if frozen else dt - stalled
                    work = s * active  # full-speed-equivalent seconds
                    adv = work / dt  # fraction of a full-speed sample

                    # Dynamic power: cubic DVFS scaling x active fraction.
                    dyn_arr[c] = (s ** 3) * (active / dt)
                    unit_buf[c] = aux.unit_power[idx]

                    # Shared structures driven by this core's traffic.
                    l2_act = aux.l2_activity[idx] * s * (active / dt)
                    total_l2_act += l2_act
                    power[l2_idx[c]] = l2_base * (
                        L2_IDLE_FRACTION + (1 - L2_IDLE_FRACTION) * l2_act
                    )

                    # Leakage voltage scaling: DVFS lowers Vdd with
                    # frequency; stop-go keeps nominal voltage (state is
                    # preserved).
                    if dvfs:
                        ssq_arr[c] = s ** 2

                    # Progress: PerformanceCounters.update and
                    # Process.advance inlined (their validation can never
                    # fire here — ``adv`` is in [0, 1] by construction —
                    # and the call overhead dominates at this rate).
                    instr = aux.instructions[idx] * adv
                    ctr = proc.counters
                    ctr.instructions += instr
                    ctr.int_rf_accesses += aux.int_rf[idx] * adv
                    ctr.fp_rf_accesses += aux.fp_rf[idx] * adv
                    ctr.cycles += nominal_cycles
                    ctr.adjusted_cycles += nominal_cycles * adv
                    proc.position += adv

                    core_work[c] = work
                    # Overhead stalls (PLL re-locks, migration context
                    # switches) are charged even while the core is frozen:
                    # the penalty window still elapses during a stop-go or
                    # PROCHOT freeze, and dropping the overlap undercounts
                    # the overhead ledger.
                    core_stall[c] = stalled
                    core_frozen[c] = frozen
                    core_instr[c] = instr

                # Vectorized tail: scale each core's unit-power row by its
                # dynamic multiplier and scatter into the power vector.
                np.multiply(unit_buf, self._dyn_col, out=scaled_buf)
                power[unit_flat] = scaled_buf.reshape(-1)
                power[xbar_i] = xbar_base * (
                    XBAR_IDLE_FRACTION
                    + (1 - XBAR_IDLE_FRACTION) * min(1.0, total_l2_act / n_cores)
                )
                leak = leak_power(thermal.temperatures[:n_blocks])
                if dvfs:
                    leak_mult[self._core_unit_idx] = self._ssq_col
                    np.multiply(leak, leak_mult, out=leak)
                np.add(power, leak, out=power)

            with sec_thermal:
                new_temps = apply_step(thermal.temperatures, power)
                thermal.temperatures = new_temps
            max_temp = float(new_temps[:n_blocks].max())
            record_step(dt, core_work, core_stall, core_frozen, core_instr, max_temp)
            if step == tel_next:
                telemetry.sample(
                    (step + 1) * dt,
                    new_temps,
                    [core_work[c] / dt for c in core_range],
                    metrics,
                )
                tel_next += tel_stride
            if events is not None:
                emergency = max_temp > cfg.threshold_c + EMERGENCY_TOLERANCE_C
                if emergency and not self._in_emergency:
                    events.emit(t, "emergency-enter", temp_c=float(max_temp))
                elif self._in_emergency and not emergency:
                    events.emit(t, "emergency-exit", temp_c=float(max_temp))
                self._in_emergency = emergency
            if window_live:
                # The trend window only feeds the OS-tick fold into the
                # thread-core thermal table, whose sole reader is an
                # active migration policy — without one the fold
                # self-skips (duration_s stays 0) and nothing observable
                # changes. The dict path preserves the order-sensitive
                # NaN semantics faulted readings need.
                if faults is None:
                    window.accumulate_array(temps, dt)
                else:
                    window.accumulate(readings, dt)

            if series is not None:
                eff_scales = [core_work[c] / dt for c in core_range]
                series.record(step, t, eff_scales, readings, self.scheduler.assignment)

        return series

    def _run_fused(self, n_steps: int, metrics: MetricsAccumulator) -> None:
        """Fused whole-run fast path for runs with no per-step observers.

        Eligible only when :attr:`fusion_blockers` is empty: no throttle
        or migration policy, faults, guards, PROCHOT, series capture,
        event log or profiler — nothing that could observe or perturb an
        intermediate step. Every core then runs at scale 1.0 with no
        stalls, so the dynamic-power schedule is a pure function of the
        trace positions and is assembled in vectorized chunks up front.
        Temperature-dependent leakage still forces a sequential thermal
        recursion, but each step collapses to one leakage evaluation, one
        affine :meth:`~repro.thermal.model.StepOperator.apply` and one
        metrics fold — the same floating-point operations, in the same
        order, as the stepwise path under this configuration, so results
        are bit-identical (asserted by ``tests/sim/test_fusion.py``).
        """
        cfg = self.config
        dt = self.dt
        n_cores = self.n_cores
        thermal = self.thermal
        n_blocks = thermal.network.n_blocks
        apply_step = thermal.operator_for(dt).apply
        leak_power = self.leakage.power_fast
        record_step = metrics.record_step
        nominal_cycles = dt * cfg.machine.clock_hz
        l2_base = cfg.power_scale * L2_BANK_PEAK_W
        xbar_base = cfg.power_scale * XBAR_PEAK_W

        procs = [self.scheduler.process_on(c) for c in range(n_cores)]
        base_pos = [int(p.position) for p in procs]
        core_work = [dt] * n_cores  # scale 1.0, fully active
        core_stall = [0.0] * n_cores
        core_frozen = [False] * n_cores

        # Telemetry sampling between fused spans: the run still executes
        # as vectorized chunk assembly plus the sequential thermal
        # recursion below; the sampler reads the recursion's state only
        # at sample instants. Same values, at the same instants, as the
        # stepwise tap — an unthrottled step has effective scale 1.0 and
        # work dt, exactly what the stepwise loop computes.
        telemetry = self.telemetry
        if telemetry is not None:
            tel_stride = telemetry.stride_steps(dt)
            tel_next = tel_stride - 1
            tel_scales = [1.0] * n_cores
        else:
            tel_stride = 0
            tel_next = -1

        temps = thermal.temperatures
        chunk = 8192
        for start in range(0, n_steps, chunk):
            k = min(chunk, n_steps - start)
            steps = np.arange(start, start + k)
            dyn = np.empty((k, n_blocks))
            total_l2 = np.zeros(k)
            instr_cols = []
            int_rf_cols = []
            fp_rf_cols = []
            for c in range(n_cores):
                tr = procs[c].trace
                idx = (base_pos[c] + steps) % tr.n_samples
                # Same op order as the stepwise loop (multiplying by the
                # unit dynamic factor included), element-for-element.
                dyn[:, self._core_unit_idx[c]] = tr.unit_power[idx] * 1.0
                l2_act = tr.l2_activity[idx] * 1.0 * 1.0
                total_l2 += l2_act
                dyn[:, self._l2_idx_list[c]] = l2_base * (
                    L2_IDLE_FRACTION + (1 - L2_IDLE_FRACTION) * l2_act
                )
                instr_cols.append(tr.instructions[idx] * 1.0)
                int_rf_cols.append(tr.int_rf_accesses[idx] * 1.0)
                fp_rf_cols.append(tr.fp_rf_accesses[idx] * 1.0)
            dyn[:, self._xbar_i] = xbar_base * (
                XBAR_IDLE_FRACTION
                + (1 - XBAR_IDLE_FRACTION) * np.minimum(1.0, total_l2 / n_cores)
            )

            # Sequential thermal recursion: leakage depends on the current
            # temperatures, so steps cannot collapse into one matrix
            # power, but each iteration is only leakage + apply + fold.
            instr_rows = np.stack(instr_cols, axis=1).tolist()
            for i in range(k):
                p = dyn[i] + leak_power(temps[:n_blocks])
                temps = apply_step(temps, p)
                max_temp = float(temps[:n_blocks].max())
                record_step(
                    dt, core_work, core_stall, core_frozen, instr_rows[i], max_temp
                )
                if start + i == tel_next:
                    telemetry.sample(
                        (start + i + 1) * dt, temps, tel_scales, metrics
                    )
                    tel_next += tel_stride

            # Fold per-process bookkeeping exactly as the stepwise loop
            # would: sequential adds per step, in step order.
            for c in range(n_cores):
                ctr = procs[c].counters
                ic = instr_cols[c].tolist()
                rc = int_rf_cols[c].tolist()
                fc = fp_rf_cols[c].tolist()
                si = ctr.instructions
                sr = ctr.int_rf_accesses
                sf = ctr.fp_rf_accesses
                cyc = ctr.cycles
                adj = ctr.adjusted_cycles
                for j in range(k):
                    si += ic[j]
                    sr += rc[j]
                    sf += fc[j]
                    cyc += nominal_cycles
                    adj += nominal_cycles
                ctr.instructions = si
                ctr.int_rf_accesses = sr
                ctr.fp_rf_accesses = sf
                ctr.cycles = cyc
                ctr.adjusted_cycles = adj
                procs[c].advance(float(k))

        thermal.temperatures = temps

    def _emit_stopgo_events(
        self,
        events: RunEventLog,
        t: float,
        scales: Sequence[float],
        prev_trips: int,
    ) -> None:
        """Emit trip/thaw events from this step's stop-go scale vector.

        One ``stopgo-trip`` event is emitted per trip the policy counted
        this step (so the event count always equals
        ``RunResult.stopgo_trips``), annotated with the cores that
        entered a freeze; ``stopgo-thaw`` marks each core resuming.
        """
        frozen_now = [s == 0.0 for s in scales]
        newly_frozen = [
            c
            for c in range(self.n_cores)
            if frozen_now[c] and not self._prev_sg_frozen[c]
        ]
        trips = self.throttle.trip_count - prev_trips
        for _ in range(trips):
            events.emit(t, "stopgo-trip", cores=newly_frozen)
        for c in range(self.n_cores):
            if self._prev_sg_frozen[c] and not frozen_now[c]:
                events.emit(t, "stopgo-thaw", c)
        self._prev_sg_frozen = frozen_now

    def _migration_triggered(self, t: float, readings: List[Dict[str, float]]) -> bool:
        """Whether a migration round should be considered at this tick.

        The paper actuates migration decisions "when the local thermal
        control of at least two individual cores signals that their
        critical hotspots have changed". We implement that trigger plus
        two complements it implies: a core sitting in a stop-go freeze is
        itself a signal that rebalancing is needed (the thermally-chaotic
        stop-go regime the paper describes), and a slow periodic fallback
        keeps profiling data flowing when the system is quiescent.
        """
        critical = [max(r.items(), key=lambda kv: kv[1])[0] for r in readings]
        if self._last_critical is None:
            self._last_critical = critical
            self._last_round_s = t
            return True
        changed = sum(
            1 for a, b in zip(critical, self._last_critical) if a != b
        )
        frozen = isinstance(self.throttle, StopGoPolicy) and any(
            self.throttle.is_frozen(c, t) for c in range(self.n_cores)
        )
        # Periodic fallback only while the sensor policy is still profiling
        # (it must keep generating placements until its table can estimate
        # every thread-core pair, Figure 6's "profile more" branch).
        needs_profiling = isinstance(
            self.migration, SensorBasedMigration
        ) and not self.thermal_table.is_sufficient(
            [p.pid for p in self.scheduler.processes]
        )
        stale = (
            t - self._last_round_s >= 3 * self.config.migration_period_s
            and needs_profiling
        )
        if changed >= 2 or frozen or stale:
            self._last_critical = critical
            self._last_round_s = t
            return True
        return False

    # -- OS tick ---------------------------------------------------------------

    def _os_tick(self, t: float, readings: List[Dict[str, float]]) -> None:
        """Timer interrupt: fold trend windows, maybe migrate."""
        events = self.event_log
        if events is not None:
            events.emit(t, "os-tick")
        window = self._window
        if self.throttle is not None and window.duration_s > 0:
            exponent = 3.0 if isinstance(self.throttle, DVFSPolicy) else 1.0
            baseline = window.chip_min_avg()
            for c in range(self.n_cores):
                pid = self.scheduler.assignment[c]
                avg_scale = self.throttle.average_scale(c)
                for k, unit in enumerate(HOTSPOT_UNITS):
                    obs = (
                        window.avg(c, k)
                        - baseline
                        + GRADIENT_TAU_S * window.gradient(c, k)
                    )
                    self.thermal_table.record(
                        pid, c, unit, obs, avg_scale, exponent=exponent
                    )

        if (
            self.migration is not None
            and self.throttle is not None
            and self._migration_triggered(t, readings)
        ):
            urgent = isinstance(self.throttle, StopGoPolicy) and any(
                self.throttle.is_frozen(c, t) for c in range(self.n_cores)
            )
            ctx = MigrationContext(
                time_s=t,
                scheduler=self.scheduler,
                readings=readings,
                avg_scales=[
                    self.throttle.average_scale(c) for c in range(self.n_cores)
                ],
                thermal_table=self.thermal_table,
                rebalance_urgent=urgent,
            )
            new_assignment = self.migration.decide(ctx)
            if new_assignment is not None:
                if events is not None:
                    events.emit(
                        t, "migration-decision", assignment=list(new_assignment)
                    )
                record = self.scheduler.apply_assignment(new_assignment, t)
                if record is not None:
                    penalty = self.config.machine.migration_penalty_s
                    for c in record.cores_involved:
                        self._stall_until[c] = max(self._stall_until[c], t) + penalty
                    self.throttle.on_migration(record.cores_involved, t)
                    if events is not None:
                        for pid in sorted(record.moves):
                            events.emit(t, "migration", record.moves[pid], pid=pid)
                    logger.debug(
                        "migration at t=%.6f: moves=%s cores=%s",
                        t,
                        record.moves,
                        record.cores_involved,
                    )

        # Fresh observation window for the next interval.
        window.reset()
        if self.throttle is not None:
            for c in range(self.n_cores):
                self.throttle.reset_window(c)

    # -- result assembly ----------------------------------------------------------

    def _build_result(
        self, metrics: MetricsAccumulator, series: Optional["_SeriesRecorder"]
    ) -> RunResult:
        dvfs_transitions = sum(a.transitions for a in self.actuators)
        stopgo_trips = (
            self.throttle.trip_count if isinstance(self.throttle, StopGoPolicy) else 0
        )
        if self._faults is not None or self._guards is not None:
            injector = self._faults
            guards = self._guards
            fault_summary: Optional[FaultSummary] = FaultSummary(
                sensor_faulted_samples=(
                    injector.sensor_faulted_samples if injector else 0
                ),
                dvfs_rejected=injector.dvfs_rejected if injector else 0,
                dvfs_delayed=injector.dvfs_delayed if injector else 0,
                migrations_dropped=(
                    injector.migrations_dropped if injector else 0
                ),
                guard_trips=guards.trips if guards else 0,
                guard_fallback_s=guards.fallback_s if guards else 0.0,
            )
        else:
            fault_summary = None
        return RunResult(
            policy=self.spec.name if self.spec else "unthrottled",
            workload="-".join(self.benchmarks),
            benchmarks=self.benchmarks,
            duration_s=metrics.wall_time_s,
            bips=metrics.bips,
            duty_cycle=metrics.duty_cycle,
            instructions=metrics.instructions,
            per_core_instructions=tuple(metrics.per_core_instructions),
            max_temp_c=metrics.max_temp_c,
            emergency_s=metrics.emergency_s,
            migrations=self.scheduler.total_migrations,
            dvfs_transitions=dvfs_transitions,
            stopgo_trips=stopgo_trips,
            prochot_events=self.prochot_events,
            series=series.finish(self.scheduler) if series is not None else None,
            events=(
                self.event_log.summary() if self.event_log is not None else None
            ),
            faults=fault_summary,
            telemetry=(
                self.telemetry.summary() if self.telemetry is not None else None
            ),
        )


class _TraceAux:
    """Hot-loop view of one power trace.

    Scalar columns are pre-extracted to plain Python lists — list
    indexing hands back a float directly, several times cheaper than
    numpy 0-d extraction — and ``n_samples`` is pinned as an ``int`` for
    the position modulo in the step loop. Values are unchanged (a Python
    float and the ``float64`` it came from are the same number), so
    arithmetic downstream is bit-identical.
    """

    __slots__ = (
        "n_samples",
        "unit_power",
        "unit_power_mean",
        "l2_activity",
        "l2_activity_mean",
        "instructions",
        "int_rf",
        "fp_rf",
    )

    def __init__(self, trace):
        """Unpack hot-loop fields of ``trace`` into plain lists/arrays."""
        self.n_samples = int(trace.n_samples)
        self.unit_power = trace.unit_power
        # Trace-mean power, precomputed once: the warm-start bisection
        # evaluates these means up to a dozen times per run, and at
        # full-trace length each fresh `.mean()` costs more than an
        # engine step.
        self.unit_power_mean = trace.unit_power.mean(axis=0)
        self.l2_activity_mean = float(trace.l2_activity.mean())
        self.l2_activity = trace.l2_activity.tolist()
        self.instructions = trace.instructions.tolist()
        self.int_rf = trace.int_rf_accesses.tolist()
        self.fp_rf = trace.fp_rf_accesses.tolist()


class _TrendWindow:
    """Accumulates sensor statistics between OS ticks."""

    def __init__(self, n_cores: int, n_units: int):
        """Size the window for ``n_cores`` x ``n_units`` hotspots."""
        self.n_cores = n_cores
        self.n_units = n_units
        self.reset()

    def reset(self) -> None:
        """Empty the window (called at every OS tick)."""
        self._sum = np.zeros((self.n_cores, self.n_units))
        self._first = np.full((self.n_cores, self.n_units), np.nan)
        self._last = np.zeros((self.n_cores, self.n_units))
        self._min_sum = 0.0
        self._steps = 0
        self.duration_s = 0.0

    def accumulate(self, readings: List[Dict[str, float]], dt: float) -> None:
        """Fold one step's sensor readings into the window."""
        # Unit order is the insertion order of the reading dicts, which the
        # engine builds in HOTSPOT_UNITS order.
        chip_min = np.inf
        for c, reading in enumerate(readings):
            for k, temp in enumerate(reading.values()):
                self._sum[c, k] += temp
                if np.isnan(self._first[c, k]):
                    self._first[c, k] = temp
                self._last[c, k] = temp
                chip_min = min(chip_min, temp)
        self._min_sum += chip_min
        self._steps += 1
        self.duration_s += dt

    def accumulate_array(self, temps: np.ndarray, dt: float) -> None:
        """Vectorized :meth:`accumulate` for NaN-free readings.

        Each state update is element-wise identical to the dict path. The
        only semantic divergence is the chip-min reduction, which is
        order-dependent when a reading is NaN (Python's ``min`` latches a
        NaN first operand, ``np.min`` always propagates it) — callers
        with faulted readings must use :meth:`accumulate`.
        """
        self._sum += temps
        if self._steps == 0:
            np.copyto(self._first, temps)
        self._last[...] = temps
        self._min_sum += temps.min()
        self._steps += 1
        self.duration_s += dt

    def avg(self, core: int, unit_idx: int) -> float:
        """Mean temperature of one hotspot over the window."""
        if self._steps == 0:
            return 0.0
        return float(self._sum[core, unit_idx] / self._steps)

    def gradient(self, core: int, unit_idx: int) -> float:
        """Temperature slope (deg C/s) over the window.

        With ``n`` samples at spacing ``dt``, the first and last samples
        are ``(n - 1) * dt`` apart — dividing the rise by the full window
        duration ``n * dt`` would bias every observed dT/dt low by a
        factor ``(n - 1) / n``.
        """
        if self._steps < 2 or self.duration_s <= 0:
            return 0.0
        span_s = self.duration_s * (self._steps - 1) / self._steps
        return float(
            (self._last[core, unit_idx] - self._first[core, unit_idx]) / span_s
        )

    def chip_min_avg(self) -> float:
        """Average of the chip's coolest sensor reading over the window."""
        if self._steps == 0:
            return 0.0
        return self._min_sum / self._steps


class _SeriesRecorder:
    """Preallocated per-step series storage."""

    def __init__(self, n_steps: int, n_cores: int):
        """Preallocate ``n_steps`` rows of series storage."""
        self.times = np.zeros(n_steps)
        self.scales = np.zeros((n_steps, n_cores))
        self.temps = {
            unit: np.zeros((n_steps, n_cores)) for unit in HOTSPOT_UNITS
        }
        self.assignments = np.zeros((n_steps, n_cores), dtype=int)
        self._n = 0

    def record(
        self,
        step: int,
        t: float,
        scales: Sequence[float],
        readings: List[Dict[str, float]],
        assignment: Sequence[int],
    ) -> None:
        """Store one step's scales, hotspot readings and assignment."""
        self.times[step] = t
        self.scales[step] = scales
        for unit in self.temps:
            self.temps[unit][step] = [r[unit] for r in readings]
        self.assignments[step] = list(assignment)
        self._n = step + 1

    def finish(self, scheduler: Scheduler) -> TimeSeries:
        """Trim to the recorded length and build the result series."""
        n = self._n
        return TimeSeries(
            times=self.times[:n],
            scales=self.scales[:n],
            hotspot_temps={u: a[:n] for u, a in self.temps.items()},
            assignments=self.assignments[:n],
            migration_times=[r.time_s for r in scheduler.migration_history],
        )


class EngineSubstrate:
    """Shared construction-time substrate for many simulators of one chip.

    Holds everything about a simulator that is a pure deterministic
    function of the machine description rather than of any one run: the
    floorplan, the factored :class:`~repro.thermal.model.ThermalKernel`
    (network + LU + propagator cache), and a cache of generated power
    traces with their :class:`_TraceAux` hot-loop views. Building N
    simulators on one substrate pays for ``expm`` and trace synthesis
    once instead of N times; because every cached artifact is
    deterministic in its key, substrate-built simulators are
    bit-identical to standalone ones.

    A substrate is compatible with a :class:`SimulationConfig` iff the
    machine, package, core sizes and scenario agree (:meth:`matches`);
    per-run knobs (duration, threshold, seed, power scale, trace
    duration) vary freely — traces are cached per (benchmark, trace
    duration, seed, effective power scale).
    """

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        package: ThermalPackage = HIGH_PERFORMANCE_PACKAGE,
        core_sizes_mm: Optional[Tuple[float, ...]] = None,
        scenario: Optional[Scenario] = None,
    ):
        """Build the floorplan and factor the thermal kernel once."""
        self.machine = machine if machine is not None else MachineConfig()
        self.package = package
        self.core_sizes_mm = core_sizes_mm
        self.scenario = scenario
        self.floorplan = (
            scenario.build_floorplan()
            if scenario is not None
            else build_cmp_floorplan(
                self.machine.n_cores, core_sizes_mm=core_sizes_mm
            )
        )
        self.kernel = ThermalKernel(self.floorplan, package)
        # Pre-warm the propagator every simulator on this machine needs.
        self.kernel.operator_for(self.machine.sample_period_s)
        self._traces: Dict[tuple, object] = {}
        self._aux: Dict[int, _TraceAux] = {}

    @classmethod
    def for_config(cls, config: SimulationConfig) -> "EngineSubstrate":
        """A substrate matching ``config``'s machine description."""
        return cls(
            config.machine,
            config.package,
            config.core_sizes_mm,
            scenario=config.scenario,
        )

    def matches(self, config: SimulationConfig) -> bool:
        """Whether this substrate can build simulators for ``config``."""
        return (
            config.machine == self.machine
            and config.package == self.package
            and config.core_sizes_mm == self.core_sizes_mm
            and config.scenario == self.scenario
        )

    def check(self, config: SimulationConfig) -> None:
        """Raise ``ValueError`` unless :meth:`matches` holds."""
        if not self.matches(config):
            raise ValueError(
                "EngineSubstrate does not match the run config: the "
                "machine, package, core_sizes_mm and scenario must all "
                "be equal"
            )

    def trace(self, entry, config: SimulationConfig, power_scale=None):
        """The (cached) power trace for one benchmark under ``config``.

        ``power_scale`` overrides the config's chip-level scale (the
        engine passes per-core effective scales under a scenario);
        ``None`` uses ``config.power_scale``. Only string benchmark
        names are cached; profile objects (the SMT extension) are
        regenerated per call.
        """
        scale = config.power_scale if power_scale is None else power_scale
        if not isinstance(entry, str):
            return generate_trace(
                entry,
                self.machine,
                duration_s=config.trace_duration_s,
                seed=config.seed,
                power_scale=scale,
            )
        key = (
            entry,
            float(config.trace_duration_s),
            int(config.seed),
            float(scale),
        )
        trace = self._traces.get(key)
        if trace is None:
            trace = generate_trace(
                entry,
                self.machine,
                duration_s=config.trace_duration_s,
                seed=config.seed,
                power_scale=scale,
            )
            self._traces[key] = trace
        return trace

    def trace_aux(self, trace) -> _TraceAux:
        """The (cached) hot-loop view of a trace produced by :meth:`trace`."""
        aux = self._aux.get(id(trace))
        if aux is None:
            aux = _TraceAux(trace)
            self._aux[id(trace)] = aux
        return aux


def run_workload(
    workload: Workload,
    spec: Optional[PolicySpec],
    config: Optional[SimulationConfig] = None,
    *,
    event_log: Optional[RunEventLog] = None,
    profiler: Optional[StepProfiler] = None,
    telemetry: Optional[TelemetrySampler] = None,
) -> RunResult:
    """Convenience: simulate one Table 4 workload under one policy.

    ``event_log``, ``profiler`` and ``telemetry`` opt into observability
    capture; see :class:`ThermalTimingSimulator`.
    """
    sim = ThermalTimingSimulator(
        workload.benchmarks,
        spec,
        config,
        event_log=event_log,
        profiler=profiler,
        telemetry=telemetry,
    )
    result = sim.run()
    return replace(result, workload=workload.name)
