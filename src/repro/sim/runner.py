"""Parallel experiment execution with content-addressed result caching.

Every paper artifact is assembled from independent ``(workload, policy,
configuration)`` simulation points; nothing in one point depends on
another. This module exploits that:

* :class:`RunPoint` names one such point;
* :func:`config_hash` derives a stable content hash for a point — a
  canonical serialization of the configuration dataclass tree, the
  policy spec, the workload and the simulator source code version — so
  the same point hashes identically across processes and sessions, and
  ANY change to a configuration field, the policy, the workload or the
  simulation code changes the hash;
* :class:`ResultCache` is an on-disk store addressed by those hashes:
  re-running an experiment or sweep only simulates changed points;
* :class:`ParallelRunner` fans a batch of points out across a process
  pool (``jobs > 1``) or runs them inline (``jobs = 1``), consults the
  cache first, and collects results **in input order** so parallel runs
  are bit-identical to serial ones (the simulation itself is fully
  deterministic given its seeded configuration).

Observability: the runner keeps a :class:`RunnerStats` ledger with
per-point timings and cache hit/miss/simulated counters; ``stats.summary()``
is a one-line report the CLI prints after each command.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.taxonomy import PolicySpec
from repro.obs.logconfig import get_logger
from repro.obs.profiler import StepProfiler, render_sections
from repro.obs.telemetry import MetricsRegistry
from repro.obs.tracing import (
    KIND_EXECUTE,
    KIND_GROUP,
    KIND_POINT,
    NULL_TRACER,
    NullRecorder,
    SpanRecorder,
    TraceContext,
    finished_span,
    section_spans,
)
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.results import RunResult
from repro.sim.workloads import Workload

logger = get_logger(__name__)

#: Bumped whenever the cache value format changes; part of every key, so
#: stale-format entries are simply never addressed again.
CACHE_FORMAT_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Orphaned ``*.tmp`` files older than this (seconds) are removed when a
#: cache is opened; younger ones are assumed to belong to live writers.
STALE_TMP_AGE_S = 3600.0

#: Sliding window (seconds) over which the ``cache_evictions_pressure``
#: gauge averages evicted bytes into a bytes-per-second rate.
EVICTION_PRESSURE_WINDOW_S = 60.0


# ---------------------------------------------------------------------------
# Canonical serialization and hashing
# ---------------------------------------------------------------------------


def canonicalize(obj) -> object:
    """Reduce ``obj`` to a JSON-serializable canonical form.

    Dataclasses become ``["dc", <class name>, [[field, value], ...]]``
    with fields in declaration order, enums become their class and value,
    dict keys are sorted; floats pass through (``json.dumps`` emits the
    shortest round-trip ``repr``, which is stable across processes and
    platforms for IEEE-754 doubles). The class name is part of the form,
    so two different dataclasses with equal fields do not alias.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, obj.value]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dc",
            type(obj).__name__,
            [
                [f.name, canonicalize(getattr(obj, f.name))]
                for f in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, dict):
        return [
            [canonicalize(k), canonicalize(v)] for k, v in sorted(obj.items())
        ]
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for hashing: {obj!r}"
    )


def stable_hash(*objs) -> str:
    """SHA-256 hex digest of the canonical form of ``objs``.

    Unlike builtin ``hash``, the digest is identical across processes
    (no ``PYTHONHASHSEED`` dependence) and sessions.
    """
    payload = json.dumps(
        [canonicalize(o) for o in objs],
        sort_keys=False,
        separators=(",", ":"),
        allow_nan=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash of the installed ``repro`` sources.

    Hashes every ``.py`` file under the package directory (sorted by
    relative path), so any code change — not just version bumps —
    invalidates previously cached simulation results. Computed once per
    process.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


@dataclass(frozen=True)
class RunPoint:
    """One independent simulation: a workload under a policy and config."""

    workload: Workload
    spec: Optional[PolicySpec]
    config: SimulationConfig

    @property
    def label(self) -> str:
        """Short human-readable identifier for logs and timings."""
        return f"{self.workload.name}/{self.spec.key if self.spec else 'unthrottled'}"


def config_hash(point: RunPoint, version: Optional[str] = None) -> str:
    """The content address of one simulation point.

    Covers every field of the configuration tree (machine, package,
    sensor fidelity, seed, ...), the policy spec, the workload's
    benchmark list, the cache format version and the simulator code
    version. Equal points hash equal; changing any single ingredient
    changes the hash.
    """
    return stable_hash(
        "run-point",
        CACHE_FORMAT_VERSION,
        version if version is not None else code_version(),
        point.workload,
        point.spec,
        point.config,
    )


# ---------------------------------------------------------------------------
# On-disk cache
# ---------------------------------------------------------------------------


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-dtm``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-dtm"


class ResultCache:
    """Sharded, size-capped, LRU-evicting pickle store for results.

    Entries live at ``root/<key[:2]>/<key>.pkl`` — one shard directory
    per two-hex-digit key prefix — and are written atomically (temp file
    + ``os.replace``) so concurrent workers and concurrent runner
    processes can share one cache directory without torn reads. Each
    shard has its own in-process lock, so the serve subsystem's worker
    threads can hit disjoint shards without serialising on one mutex.

    With ``max_bytes`` set, every ``put`` that takes the store over the
    cap evicts least-recently-used entries (entry mtime is the recency
    clock: ``put`` writes it, ``get`` bumps it with ``os.utime``) until
    the total size is back under the cap; the just-written entry is
    never evicted by its own put. Eviction work is accounted in
    ``evictions`` / ``evicted_bytes``. Without ``max_bytes`` (the
    default) nothing is ever evicted, matching the historical store.

    Hygiene on open: corrupt entries are unlinked the moment a ``get``
    fails to unpickle them (counted in ``corrupt_dropped``), and
    orphaned ``*.tmp`` files older than ``stale_tmp_age_s`` — debris
    from killed writers — are swept when the cache is constructed
    (younger ones belong to live writers and are left alone).
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        registry: Optional[MetricsRegistry] = None,
        max_bytes: Optional[int] = None,
        sweep_stale: bool = True,
        stale_tmp_age_s: float = STALE_TMP_AGE_S,
    ):
        """Root the store at ``root`` (default: the user cache dir).

        With a ``registry``, the cache registers ``cache_hits_total`` /
        ``cache_misses_total`` / ``cache_puts_total`` /
        ``cache_evictions_total`` / ``cache_evicted_bytes_total``
        counters and ``cache_bytes`` / ``cache_evictions_pressure``
        (evicted bytes per second over a sliding
        :data:`EVICTION_PRESSURE_WINDOW_S` window) /
        per-shard ``cache_shard_bytes{shard=...}`` gauges, kept in step
        with its own ``hits``/``misses``/``evictions`` attributes.
        """
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive: {max_bytes}")
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.corrupt_dropped = 0
        self.stale_tmp_removed = 0
        #: Evicted bytes per second over the trailing pressure window.
        self.eviction_pressure = 0.0
        self._shard_locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._size_lock = threading.Lock()
        self._evict_lock = threading.Lock()
        self._pressure_lock = threading.Lock()
        #: ``(monotonic time, bytes)`` per eviction, pruned to the window.
        self._eviction_events: deque = deque()
        #: Per-shard entry bytes, maintained alongside ``_total_bytes``.
        self._shard_bytes: Dict[str, int] = {}
        self._shard_gauges: Dict[str, object] = {}
        self._registry = registry
        #: Lazily-computed total entry bytes; None until first needed.
        self._total_bytes: Optional[int] = None
        if registry is not None:
            self._ctr_hits = registry.counter(
                "cache_hits_total", help="result-cache lookups served from disk"
            )
            self._ctr_misses = registry.counter(
                "cache_misses_total", help="result-cache lookups that missed"
            )
            self._ctr_puts = registry.counter(
                "cache_puts_total", help="results written to the cache"
            )
            self._ctr_evictions = registry.counter(
                "cache_evictions_total",
                help="entries evicted to stay under max_bytes",
            )
            self._ctr_evicted_bytes = registry.counter(
                "cache_evicted_bytes_total",
                help="bytes reclaimed by LRU eviction",
            )
            self._g_bytes = registry.gauge(
                "cache_bytes", help="approximate bytes of cached entries"
            )
            self._g_pressure = registry.gauge(
                "cache_evictions_pressure",
                help=(
                    "evicted bytes per second over the last "
                    f"{int(EVICTION_PRESSURE_WINDOW_S)} s"
                ),
            )
        else:
            self._ctr_hits = self._ctr_misses = self._ctr_puts = None
            self._ctr_evictions = self._ctr_evicted_bytes = None
            self._g_bytes = None
            self._g_pressure = None
        if sweep_stale:
            self.sweep_stale_tmp(stale_tmp_age_s)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _shard_lock(self, key: str) -> threading.Lock:
        shard = key[:2]
        with self._locks_guard:
            lock = self._shard_locks.get(shard)
            if lock is None:
                lock = self._shard_locks[shard] = threading.Lock()
            return lock

    def __contains__(self, key: str) -> bool:
        """Whether a value is stored under ``key``."""
        return self._path(key).exists()

    def __len__(self) -> int:
        """Number of cached results on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    # -- size accounting ----------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Approximate bytes of cached entries (scanned once, then tracked).

        Approximate because other processes sharing the directory may
        add or evict entries concurrently; eviction re-scans, so the
        figure self-heals whenever the cap is enforced.
        """
        with self._size_lock:
            if self._total_bytes is None:
                self._total_bytes = self._scan_bytes()
            return self._total_bytes

    def _scan_bytes(self) -> int:
        if not self.root.exists():
            self._shard_bytes = {}
            self._publish_shard_gauges()
            return 0
        total = 0
        shards: Dict[str, int] = {}
        for path in self.root.glob("*/*.pkl"):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            total += size
            shard = path.parent.name
            shards[shard] = shards.get(shard, 0) + size
        self._shard_bytes = shards
        self._publish_shard_gauges()
        return total

    def _publish_shard_gauges(self) -> None:
        """Mirror the per-shard byte map into ``cache_shard_bytes`` gauges.

        One labelled gauge per shard directory ever seen; shards whose
        entries have all been evicted report 0 rather than vanishing, so
        scrapes never see a gap.
        """
        if self._registry is None:
            return
        for shard, size in self._shard_bytes.items():
            gauge = self._shard_gauges.get(shard)
            if gauge is None:
                gauge = self._registry.gauge(
                    "cache_shard_bytes",
                    help="bytes of cached entries per shard directory",
                    shard=shard,
                )
                self._shard_gauges[shard] = gauge
            gauge.set(float(size))
        for shard, gauge in self._shard_gauges.items():
            if shard not in self._shard_bytes:
                gauge.set(0.0)

    def _note_eviction(self, size: int) -> None:
        """Ledger one eviction for the pressure gauge, then refresh it."""
        with self._pressure_lock:
            self._eviction_events.append((time.monotonic(), size))
        self._refresh_pressure()

    def _refresh_pressure(self) -> None:
        """Recompute evicted-bytes/s over the trailing window.

        Called on evictions *and* on puts, so the gauge decays back to
        zero as the window slides past old evictions even when nothing
        new is evicted.
        """
        with self._pressure_lock:
            cutoff = time.monotonic() - EVICTION_PRESSURE_WINDOW_S
            while self._eviction_events and self._eviction_events[0][0] < cutoff:
                self._eviction_events.popleft()
            self.eviction_pressure = (
                sum(size for _t, size in self._eviction_events)
                / EVICTION_PRESSURE_WINDOW_S
            )
        if self._g_pressure is not None:
            self._g_pressure.set(self.eviction_pressure)

    def _account(self, delta: int, shard: Optional[str] = None) -> None:
        with self._size_lock:
            if self._total_bytes is None:
                # The scan sees the already-applied delta on disk and
                # rebuilds the shard map wholesale.
                self._total_bytes = self._scan_bytes()
            else:
                self._total_bytes = max(0, self._total_bytes + delta)
                if shard is not None:
                    self._shard_bytes[shard] = max(
                        0, self._shard_bytes.get(shard, 0) + delta
                    )
                    self._publish_shard_gauges()
            if self._g_bytes is not None:
                self._g_bytes.set(float(self._total_bytes))

    # -- store operations ---------------------------------------------------

    def get(self, key: str):
        """The cached value for ``key``, or ``None`` on a miss.

        Corrupt or unreadable entries count as misses and are unlinked
        on the spot — a corrupt pickle would otherwise sit on disk
        occupying space and failing every future read until the next
        ``put`` happened to overwrite it. Hits bump the entry's mtime,
        which is the LRU eviction clock.
        """
        path = self._path(key)
        with self._shard_lock(key):
            # pickle.load raises open-ended exception types on corrupt
            # input (UnpicklingError, ValueError, KeyError, EOFError,
            # ...), so any failure to read is a miss.
            try:
                with open(path, "rb") as fh:
                    value = pickle.load(fh)
            except FileNotFoundError:
                self.misses += 1
                if self._ctr_misses is not None:
                    self._ctr_misses.inc()
                return None
            except Exception:
                try:
                    size = path.stat().st_size
                    path.unlink()
                    self.corrupt_dropped += 1
                    self._account(-size, shard=key[:2])
                except OSError:
                    pass
                self.misses += 1
                if self._ctr_misses is not None:
                    self._ctr_misses.inc()
                return None
            try:
                os.utime(path)
            except OSError:
                pass  # entry may have been concurrently evicted
            self.hits += 1
            if self._ctr_hits is not None:
                self._ctr_hits.inc()
            return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` atomically, then enforce the cap."""
        if self._ctr_puts is not None:
            self._ctr_puts.inc()
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._path(key)
        with self._shard_lock(key):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                previous = path.stat().st_size
            except OSError:
                previous = 0
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._account(len(data) - previous, shard=key[:2])
        if self.max_bytes is not None and self.total_bytes > self.max_bytes:
            self._evict(protect=key)
        self._refresh_pressure()

    def _evict(self, protect: Optional[str] = None) -> None:
        """Unlink least-recently-used entries until under ``max_bytes``.

        ``protect`` (the key just written) is never a victim. The pass
        re-scans the directory, so the tracked total self-corrects
        against concurrent writers in other processes.
        """
        with self._evict_lock:
            entries = []
            total = 0
            shards: Dict[str, int] = {}
            for path in self.root.glob("*/*.pkl"):
                try:
                    st = path.stat()
                except OSError:
                    continue
                total += st.st_size
                shard = path.parent.name
                shards[shard] = shards.get(shard, 0) + st.st_size
                if protect is not None and path.stem == protect:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
            entries.sort(key=lambda e: e[0])
            for _mtime, size, path in entries:
                if total <= self.max_bytes:
                    break
                with self._shard_lock(path.stem):
                    try:
                        path.unlink()
                    except OSError:
                        continue
                total -= size
                shard = path.parent.name
                shards[shard] = max(0, shards.get(shard, 0) - size)
                self.evictions += 1
                self.evicted_bytes += size
                self._note_eviction(size)
                if self._ctr_evictions is not None:
                    self._ctr_evictions.inc()
                    self._ctr_evicted_bytes.inc(size)
            with self._size_lock:
                self._total_bytes = total
                self._shard_bytes = shards
                self._publish_shard_gauges()
                if self._g_bytes is not None:
                    self._g_bytes.set(float(total))

    def sweep_stale_tmp(self, age_s: float = STALE_TMP_AGE_S) -> int:
        """Remove orphaned ``*.tmp`` files older than ``age_s`` seconds.

        Killed workers (OOM, SIGKILL, power loss) leak the temp file of
        an in-flight ``put``; atomic publication means such debris is
        never *read*, but it accumulates. The age gate keeps live
        writers' temp files — which exist for milliseconds — untouched.
        Returns how many files were removed.
        """
        if not self.root.exists():
            return 0
        cutoff = time.time() - age_s
        removed = 0
        for path in self.root.glob("*/*.tmp"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        self.stale_tmp_removed += removed
        return removed

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        if self.root.exists():
            for path in self.root.glob("*/*.pkl"):
                path.unlink(missing_ok=True)
                n += 1
        with self._size_lock:
            self._total_bytes = 0
            self._shard_bytes = {}
            self._publish_shard_gauges()
            if self._g_bytes is not None:
                self._g_bytes.set(0.0)
        return n


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpanTiming:
    """Wall-clock span of one worker-side execution (picklable)."""

    #: Epoch seconds (``time.time``) at execution start, comparable
    #: across worker processes — the Chrome-trace exporter aligns every
    #: span against the batch's earliest start.
    started_at: float
    elapsed_s: float
    #: OS pid of the executing process (a pool worker, or the parent for
    #: inline execution) — one trace lane per pid.
    pid: int


@dataclass(frozen=True)
class PointReport:
    """Observability record for one executed (or cache-served) point."""

    label: str
    key: str
    cache_hit: bool
    elapsed_s: float
    #: Engine step-profiler section totals (seconds) when the runner was
    #: constructed with ``profile=True`` and the point was simulated
    #: (cache hits carry no sections).
    sections: Optional[Dict[str, float]] = None
    #: Execution-span start (epoch seconds) and worker pid; zero for
    #: cache hits. :func:`repro.obs.exporters.runner_trace_events` turns
    #: these into per-worker Chrome-trace lanes.
    started_at: float = 0.0
    pid: int = 0


@dataclass
class RunnerStats:
    """Counters and per-point timings accumulated across runner calls."""

    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    elapsed_s: float = 0.0
    reports: List[PointReport] = field(default_factory=list)
    #: Aggregated engine-section wall time across every profiled point.
    section_totals: Dict[str, float] = field(default_factory=dict)

    @property
    def points(self) -> int:
        """Total points served (cache hits + simulations)."""
        return self.cache_hits + self.simulated

    def add_sections(self, sections: Dict[str, float]) -> None:
        """Fold one profiled point's section totals into the roll-up."""
        for name, elapsed in sections.items():
            self.section_totals[name] = (
                self.section_totals.get(name, 0.0) + elapsed
            )

    def summary(self) -> str:
        """One-line report, e.g. ``48 points: 12 simulated, 36 cached ...``."""
        return (
            f"{self.points} points: {self.simulated} simulated, "
            f"{self.cache_hits} cached in {self.elapsed_s:.2f} s"
        )

    def profile_summary(self) -> str:
        """Hottest engine sections across all profiled points."""
        return render_sections(
            self.section_totals, title="engine sections (all simulated points):"
        )


def _execute_point(
    point: RunPoint,
) -> Tuple[RunResult, SpanTiming, None, List]:
    """Process-pool task: simulate one point -> (result, span, None, [])."""
    started = time.time()
    t0 = time.perf_counter()
    result = run_workload(point.workload, point.spec, point.config)
    span = SpanTiming(started, time.perf_counter() - t0, os.getpid())
    return result, span, None, []


def _execute_point_profiled(
    point: RunPoint,
) -> Tuple[RunResult, SpanTiming, Dict[str, float], List]:
    """Like :func:`_execute_point`, with the engine step profiler attached.

    The profiler only reads the clock, so the returned result is
    bit-identical to the unprofiled path; section totals travel back
    separately and never enter the cached value.
    """
    profiler = StepProfiler()
    started = time.time()
    t0 = time.perf_counter()
    result = run_workload(
        point.workload, point.spec, point.config, profiler=profiler
    )
    span = SpanTiming(started, time.perf_counter() - t0, os.getpid())
    return result, span, profiler.totals(), []


def _execute_point_traced(
    item: Tuple[RunPoint, TraceContext],
) -> Tuple[RunResult, SpanTiming, Dict[str, float], List]:
    """Like :func:`_execute_point_profiled`, recording distributed spans.

    The parent :class:`~repro.obs.tracing.TraceContext` arrives pickled
    inside the work item; the worker builds its own recorder, wraps the
    simulation in a ``point`` span, mounts the engine step profiler's
    section totals as leaf spans underneath, and ships the finished
    spans back with the result for the parent process to merge. Tracing
    only reads clocks: the result is bit-identical to the untraced
    executors and never reflects the trace.
    """
    point, parent = item
    recorder = SpanRecorder()
    profiler = StepProfiler()
    with recorder.span(
        point.label, KIND_POINT, parent=parent, mode="pool"
    ) as active:
        started = time.time()
        t0 = time.perf_counter()
        result = run_workload(
            point.workload, point.spec, point.config, profiler=profiler
        )
        elapsed = time.perf_counter() - t0
    sections = profiler.totals()
    recorder.extend(section_spans(active.context, started, sections))
    span = SpanTiming(started, elapsed, os.getpid())
    return result, span, sections, recorder.spans()


def _execute_task(item: Tuple[Callable, object]) -> Tuple[object, SpanTiming]:
    """Process-pool task for :meth:`ParallelRunner.map_cached`."""
    fn, payload = item
    started = time.time()
    t0 = time.perf_counter()
    value = fn(payload)
    return value, SpanTiming(started, time.perf_counter() - t0, os.getpid())


class ParallelRunner:
    """Executes batches of independent simulation points.

    Args:
        jobs: Worker process count. ``1`` (the default) runs every point
            inline in the current process — no pool is created,
            preserving the exact serial execution path. ``0`` or
            ``None`` means "all cores".
        cache: A :class:`ResultCache`, or ``None`` to disable disk
            caching.
        version: Code-version string folded into every cache key;
            defaults to :func:`code_version`. Tests pin it to make keys
            independent of the working tree.
        profile: When true, every simulated point runs with the engine
            step profiler attached; per-point section timings land in
            ``stats.reports`` and are aggregated in
            ``stats.section_totals``. Profiling never changes results or
            cache keys.
        backend: ``"pool"`` (default) fans points out over worker
            processes; ``"fleet"`` batches all fleet-eligible points of
            a call into one vectorised
            :class:`~repro.sim.fleet.FleetEngine` stepped in-process,
            falling back to the pool path for ineligible points (sensor
            guards, hardware trip, series recording) and for profiled
            runners. Stochastic points — fault plans and sensor noise —
            are fleet-eligible: the engine replays each member's private
            RNG streams in step order. Backends produce bit-identical
            results and identical cache keys.
        fleet_chunk: With the fleet backend, cap on how many eligible
            points one :class:`FleetEngine` batch holds; larger batches
            stream through in consecutive chunks so campaign memory
            stays bounded. ``None`` (default) runs one unbounded batch.
        tracer: A :class:`~repro.obs.tracing.SpanRecorder` receiving a
            distributed span per point (cache-hit, pool or fleet) plus
            engine-section leaf spans. Default: :data:`NULL_TRACER`,
            which records nothing and costs nothing. Tracing, like
            profiling, never changes results or cache keys; unlike
            profiling it does *not* disable the fleet backend.

    Determinism: each simulation derives every random stream from its own
    configuration seed, so a point's result is a pure function of the
    point — worker processes produce bit-identical results to inline
    execution, and results are collected in input order regardless of
    completion order.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        version: Optional[str] = None,
        profile: bool = False,
        registry: Optional[MetricsRegistry] = None,
        backend: str = "pool",
        fleet_chunk: Optional[int] = None,
        tracer: Optional[SpanRecorder] = None,
    ):
        """Configure the pool size, cache binding and version salt.

        With a ``registry``, the runner registers
        ``runner_points_simulated_total`` / ``runner_points_cached_total``
        counters (batch-level mirrors of ``stats``).
        """
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1 (or 0 for all cores): {jobs}")
        if backend not in ("pool", "fleet"):
            raise ValueError(
                f"backend must be 'pool' or 'fleet', got {backend!r}"
            )
        if fleet_chunk is not None and fleet_chunk < 1:
            raise ValueError(f"fleet_chunk must be >= 1, got {fleet_chunk}")
        self.jobs = int(jobs)
        self.cache = cache
        self.backend = backend
        self.fleet_chunk = fleet_chunk
        #: Substrate pool shared across fleet batches so traces and the
        #: thermal kernel are built once per machine description.
        self._fleet_substrates: Dict[tuple, object] = {}
        self.profile = bool(profile)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._version = version
        self.stats = RunnerStats()
        if registry is not None:
            self._ctr_simulated = registry.counter(
                "runner_points_simulated_total",
                help="Points actually simulated by the runner",
            )
            self._ctr_cached = registry.counter(
                "runner_points_cached_total",
                help="Points served from the result cache",
            )
        else:
            self._ctr_simulated = self._ctr_cached = None

    @property
    def version(self) -> str:
        """The code-version string used in this runner's cache keys."""
        if self._version is None:
            self._version = code_version()
        return self._version

    # -- core batch execution ---------------------------------------------

    def run_points(
        self,
        points: Sequence[RunPoint],
        *,
        trace: Optional[TraceContext] = None,
        tracer: Optional[SpanRecorder] = None,
    ) -> List[RunResult]:
        """Run (or fetch) every point; results align with ``points``.

        ``trace``/``tracer`` opt the batch into distributed tracing:
        every point — cache hit, pool execution or fleet member — gets a
        child span of ``trace`` recorded into ``tracer`` (default: the
        runner's constructor tracer). Without an inbound ``trace``, a
        local ``run_points`` span roots the batch so the recorded trace
        still has exactly one root. Tracing reads clocks only: results,
        cache keys and cached values are identical to an untraced call.
        """
        tracer = tracer if tracer is not None else self.tracer
        traced = not isinstance(tracer, NullRecorder)
        batch_span = None
        if traced and trace is None:
            batch_span = tracer.span(
                "run_points", KIND_EXECUTE, n_points=len(points)
            )
            batch_span.__enter__()
            trace = batch_span.context
        try:
            return self._run_points(points, trace, tracer, traced)
        finally:
            if batch_span is not None:
                batch_span.__exit__(None, None, None)

    def _run_points(
        self,
        points: Sequence[RunPoint],
        trace: Optional[TraceContext],
        tracer: SpanRecorder,
        traced: bool,
    ) -> List[RunResult]:
        """The :meth:`run_points` body, with tracing state resolved."""
        keys = [config_hash(p, self.version) for p in points]
        results: List[Optional[RunResult]] = [None] * len(points)
        done = [False] * len(points)

        if self.cache is not None:
            for i, key in enumerate(keys):
                value = self.cache.get(key)
                if value is not None:
                    results[i] = value
                    done[i] = True
                    self.stats.cache_hits += 1
                    if self._ctr_cached is not None:
                        self._ctr_cached.inc()
                    self.stats.reports.append(
                        PointReport(points[i].label, key, True, 0.0)
                    )
                    if traced:
                        tracer.record(
                            finished_span(
                                trace.child(), points[i].label, KIND_POINT,
                                time.time(), 0.0, cache="hit",
                            )
                        )
                else:
                    self.stats.cache_misses += 1

        # Duplicate points (same key) within one batch simulate once.
        pending: Dict[str, List[int]] = {}
        for i, key in enumerate(keys):
            if not done[i]:
                pending.setdefault(key, []).append(i)

        logger.debug(
            "run_points: %d points, %d cached, %d to simulate (jobs=%d)",
            len(points),
            sum(done),
            len(pending),
            self.jobs,
        )
        pending_items = [
            (key, points[idxs[0]]) for key, idxs in pending.items()
        ]
        if self.backend == "fleet" and not self.profile:
            executed = self._execute_fleet(
                pending_items,
                trace=trace,
                tracer=tracer if traced else None,
            )
        elif traced:
            raw = self._execute(
                [(key, (point, trace)) for key, point in pending_items],
                _execute_point_traced,
            )
            executed = [
                ((key, item[0]), out) for (key, item), out in raw
            ]
        else:
            executed = self._execute(
                pending_items,
                _execute_point_profiled if self.profile else _execute_point,
            )
        for (key, point), (value, span, sections, tspans) in executed:
            for i in pending[key]:
                results[i] = value
                done[i] = True
            self.stats.simulated += 1
            if self._ctr_simulated is not None:
                self._ctr_simulated.inc()
            self.stats.elapsed_s += span.elapsed_s
            if tspans:
                tracer.extend(tspans)
            # Tracing measures sections for its leaf spans even when the
            # runner is unprofiled; stats/reports only see them under
            # profile=True so traced and untraced ledgers stay identical.
            report_sections = sections if self.profile else None
            self.stats.reports.append(
                PointReport(
                    point.label, key, False, span.elapsed_s, report_sections,
                    started_at=span.started_at, pid=span.pid,
                )
            )
            if report_sections:
                self.stats.add_sections(report_sections)
            if self.cache is not None:
                self.cache.put(key, value)
        assert all(done)
        if self.stats.simulated:
            logger.info("batch complete: %s", self.stats.summary())
        return results  # type: ignore[return-value]

    def run_workload(
        self,
        workload: Workload,
        spec: Optional[PolicySpec],
        config: Optional[SimulationConfig] = None,
    ) -> RunResult:
        """Run (or fetch) a single point."""
        point = RunPoint(workload, spec, config or SimulationConfig())
        return self.run_points([point])[0]

    # -- generic cached map -------------------------------------------------

    def map_cached(
        self,
        task: str,
        fn: Callable,
        payloads: Sequence,
        labels: Optional[Sequence[str]] = None,
    ) -> List:
        """Parallel, cached ``[fn(p) for p in payloads]``.

        For experiment stages that are not ``(workload, policy, config)``
        shaped (e.g. Table 1's per-benchmark mobile measurements). ``fn``
        must be a module-level (picklable) pure function and each payload
        must be canonicalizable; keys cover ``task``, the payload and the
        code version. Results align with ``payloads``.
        """
        labels = list(labels) if labels is not None else [
            f"{task}[{i}]" for i in range(len(payloads))
        ]
        keys = [
            stable_hash("task", CACHE_FORMAT_VERSION, self.version, task, p)
            for p in payloads
        ]
        results: List[Optional[object]] = [None] * len(payloads)
        done = [False] * len(payloads)
        if self.cache is not None:
            for i, key in enumerate(keys):
                value = self.cache.get(key)
                if value is not None:
                    results[i] = value
                    done[i] = True
                    self.stats.cache_hits += 1
                    if self._ctr_cached is not None:
                        self._ctr_cached.inc()
                    self.stats.reports.append(
                        PointReport(labels[i], key, True, 0.0)
                    )
                else:
                    self.stats.cache_misses += 1
        todo = [i for i in range(len(payloads)) if not done[i]]
        executed = self._execute(
            [(i, (fn, payloads[i])) for i in todo], _execute_task
        )
        for (i, _item), (value, span) in executed:
            results[i] = value
            done[i] = True
            self.stats.simulated += 1
            if self._ctr_simulated is not None:
                self._ctr_simulated.inc()
            self.stats.elapsed_s += span.elapsed_s
            self.stats.reports.append(
                PointReport(
                    labels[i], keys[i], False, span.elapsed_s,
                    started_at=span.started_at, pid=span.pid,
                )
            )
            if self.cache is not None:
                self.cache.put(keys[i], value)
        assert all(done)
        return results

    # -- execution backends --------------------------------------------------

    def _execute_fleet(
        self,
        tagged_items: Sequence[Tuple],
        trace: Optional[TraceContext] = None,
        tracer: Optional[SpanRecorder] = None,
    ) -> List:
        """Run ``(key, point)`` items through batched fleet engines.

        Fleet-ineligible points (guards, hardware trip, series
        recording) fall back to the regular :meth:`_execute` path; the
        returned list keeps input order and the exact ``_execute``
        output shape, so the caller's stats/caching logic is
        backend-agnostic. Results are collected by input *position*, so
        duplicate points within one uncached batch each keep their own
        output entry and span attribution. Eligible points stream
        through the engine in ``fleet_chunk``-sized slices (one
        unbounded batch when unset), sharing the runner's substrate
        pool, so arbitrarily large campaigns run in bounded memory.
        Each chunk's wall time is attributed evenly across its points.

        With a ``tracer``, each chunk is wrapped in a ``fleet-group``
        span under ``trace``, every member gets a ``point`` span tagged
        ``mode="fleet"`` (fleet members execute in-process, so member
        spans are recorded directly), and pool-fallback points route
        through the traced pool executor.
        """
        from repro.sim.fleet import FleetEngine, fleet_blockers

        if not tagged_items:
            return []
        eligible: List[Tuple[int, Tuple]] = []
        fallback: List[Tuple[int, Tuple]] = []
        for idx, ti in enumerate(tagged_items):
            blockers = fleet_blockers(ti[1].config)
            (fallback if blockers else eligible).append((idx, ti))
        logger.debug(
            "fleet batch: %d eligible, %d pool-fallback",
            len(eligible),
            len(fallback),
        )
        rec = tracer if tracer is not None else NULL_TRACER
        outputs: List[Optional[Tuple]] = [None] * len(tagged_items)
        chunk = self.fleet_chunk or len(eligible)
        for lo in range(0, len(eligible), max(1, chunk)):
            part = eligible[lo : lo + chunk]
            with rec.span(
                f"fleet[{lo}:{lo + len(part)}]", KIND_GROUP,
                parent=trace, members=len(part),
            ) as group:
                started = time.time()
                t0 = time.perf_counter()
                engine = FleetEngine(
                    [point for _idx, (_key, point) in part],
                    substrates=self._fleet_substrates,
                )
                batch_results = engine.run()
                per_point = (time.perf_counter() - t0) / len(part)
            pid = os.getpid()
            for (idx, (_key, point)), result in zip(part, batch_results):
                if group.context is not None:
                    rec.record(
                        finished_span(
                            group.context.child(), point.label, KIND_POINT,
                            started, per_point, mode="fleet",
                        )
                    )
                outputs[idx] = (
                    result,
                    SpanTiming(started, per_point, pid),
                    None,
                    [],
                )
        fb_items = [ti for _idx, ti in fallback]
        if tracer is not None and fb_items:
            fb_executed = self._execute(
                [(key, (point, trace)) for key, point in fb_items],
                _execute_point_traced,
            )
        else:
            fb_executed = self._execute(fb_items, _execute_point)
        for (idx, _ti), (_tag, out) in zip(fallback, fb_executed):
            outputs[idx] = out
        return list(zip(tagged_items, outputs))

    def _execute(self, tagged_items: Sequence[Tuple], fn: Callable) -> List:
        """Run ``fn`` over tagged work items, inline or in a pool.

        Returns ``[(tag_tuple, fn_result), ...]`` in input order. The
        pool is only spun up when it can actually help (``jobs > 1`` and
        more than one item); otherwise execution stays in-process.
        """
        if not tagged_items:
            return []
        items = [item for _tag, item in tagged_items]
        if self.jobs == 1 or len(items) == 1:
            outputs = [fn(item) for item in items]
        else:
            workers = min(self.jobs, len(items))
            with concurrent.futures.ProcessPoolExecutor(workers) as pool:
                outputs = list(pool.map(fn, items))
        return list(zip(tagged_items, outputs))
