"""Result persistence and reporting.

:class:`~repro.sim.results.RunResult` objects serialise to/from plain
JSON (time series excluded — persist those as arrays if needed), and a
set of results renders as a comparison report. This is what a downstream
study would archive next to its configuration.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence, Union

from repro.sim.results import RunResult
from repro.util.tables import render_table

_PathLike = Union[str, pathlib.Path]

#: Serialisation format version.
FORMAT_VERSION = 1

#: RunResult fields persisted (series is deliberately excluded).
_FIELDS = (
    "policy",
    "workload",
    "benchmarks",
    "duration_s",
    "bips",
    "duty_cycle",
    "instructions",
    "per_core_instructions",
    "max_temp_c",
    "emergency_s",
    "migrations",
    "dvfs_transitions",
    "stopgo_trips",
    "prochot_events",
)


def result_to_dict(result: RunResult) -> Dict:
    """A JSON-safe dictionary of one result (series excluded)."""
    out = {"format_version": FORMAT_VERSION}
    for name in _FIELDS:
        value = getattr(result, name)
        if isinstance(value, tuple):
            value = list(value)
        out[name] = value
    return out


def result_from_dict(data: Dict) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {data.get('format_version')}"
        )
    kwargs = {name: data.get(name, 0) for name in _FIELDS}
    kwargs["benchmarks"] = tuple(kwargs["benchmarks"])
    kwargs["per_core_instructions"] = tuple(kwargs["per_core_instructions"])
    return RunResult(series=None, **kwargs)


def save_results(results: Sequence[RunResult], path: _PathLike) -> pathlib.Path:
    """Write a list of results as a JSON document."""
    path = pathlib.Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(path.suffix + ".json")
    payload = {
        "format_version": FORMAT_VERSION,
        "results": [result_to_dict(r) for r in results],
    }
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def load_results(path: _PathLike) -> List[RunResult]:
    """Read results written by :func:`save_results`."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported results-file format version "
            f"{payload.get('format_version')}"
        )
    return [result_from_dict(d) for d in payload["results"]]


def comparison_report(
    results: Sequence[RunResult],
    baseline_policy: str = "Dist. stop-go",
    title: str = "Policy comparison",
) -> str:
    """Render results as a comparison table, normalised to a baseline.

    Results are grouped by policy (averaged across workloads when a
    policy appears multiple times). If ``baseline_policy`` is absent, the
    relative column is omitted.
    """
    if not results:
        raise ValueError("no results to report")
    by_policy: Dict[str, List[RunResult]] = {}
    for r in results:
        by_policy.setdefault(r.policy, []).append(r)

    def avg(items: List[RunResult], attr: str) -> float:
        """Mean of ``attr`` over ``items``."""
        return sum(getattr(r, attr) for r in items) / len(items)

    base_bips = (
        avg(by_policy[baseline_policy], "bips")
        if baseline_policy in by_policy
        else None
    )
    rows = []
    for policy, items in by_policy.items():
        row = [
            policy,
            str(len(items)),
            f"{avg(items, 'bips'):.2f}",
            f"{avg(items, 'duty_cycle'):.1%}",
            f"{max(r.max_temp_c for r in items):.1f}",
        ]
        if base_bips:
            row.append(f"{avg(items, 'bips') / base_bips:.2f}X")
        rows.append(row)
    headers = ["policy", "runs", "avg BIPS", "avg duty", "max T (C)"]
    if base_bips:
        headers.append("vs baseline")
    return render_table(headers, rows, title=title)
