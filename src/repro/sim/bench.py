"""Engine throughput benchmark suite (steps/second per policy).

One canonical case list drives three consumers so they can never drift
apart:

* ``benchmarks/test_engine_speed.py`` — the pytest-benchmark suite;
* ``benchmarks/bench_to_json.py`` / ``repro bench`` — measures the same
  cases with :func:`time.perf_counter` (no pytest dependency) and writes
  the tracked ``BENCH_engine.json`` artifact at the repo root;
* the CI bench job — reruns the *short* cases and fails when any drops
  more than :data:`DEFAULT_TOLERANCE` below the committed baseline
  (``repro bench --short --check BENCH_engine.json``).

Measurement protocol: each case builds a fresh simulator per round
(engine state is single-shot) and times ``sim.run()`` only — simulator
construction (trace synthesis, RC-network assembly, ``expm``) is
one-time setup cost, not hot-loop throughput. ``steps_per_second`` is
computed from the *best* round, which is far more stable under machine
noise than the mean and is therefore what the regression gate compares.
See ``docs/PERFORMANCE.md`` for schema and interpretation.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.taxonomy import spec_by_key
from repro.faults.models import (
    DriftFault,
    DropoutFault,
    DVFSRejectFault,
    FaultPlan,
    SpikeFault,
)
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator

#: Current ``BENCH_engine.json`` schema identifier.
SCHEMA = "repro-bench-engine/1"

#: Regression gate: fail when a case drops more than this fraction below
#: the committed baseline's steps/second.
DEFAULT_TOLERANCE = 0.30

#: Default timing repetitions (the best round is reported).
DEFAULT_ROUNDS = 3

#: Horizon of the short cases (seconds of silicon time; 720 steps).
SHORT_RUN_S = 0.02

#: Horizon of the full-length Table-1-style case (the paper's default
#: measurement window used by ``experiments/table1.py``).
FULL_RUN_S = 0.5

#: Horizon of the telemetry-vs-record_series contrast cases (3600
#: steps). Longer than :data:`SHORT_RUN_S` on purpose: the fused path's
#: per-run setup cost amortizes with horizon, so the short window would
#: understate the sampled path's steady-state advantage.
TELEMETRY_RUN_S = 0.1

#: Horizon of each point in the backend-contrast sweep cases (72 steps).
#: Deliberately short: a sweep point's cost is dominated by per-point
#: overhead (simulator construction, warm start, pool dispatch), which
#: is precisely what the fleet backend amortizes — the paper-style
#: characterization sweeps this models use many short screening runs,
#: not a few long ones.
SWEEP_RUN_S = 0.002

#: Warm-start power fraction for sweep points. Fixing the fraction makes
#: the warm start threshold-independent, so the fleet's warm cache
#: computes it once per batch (the pool path still pays it per worker).
SWEEP_WARM_FRACTION = 0.5

#: Worker count of the pool-backend comparator cases: a typical
#: ``repro --jobs 4 sweep`` invocation.
SWEEP_POOL_JOBS = 4


@dataclass(frozen=True)
class BenchCase:
    """One benchmarked engine configuration.

    Attributes:
        key: Stable identifier; the case's name in ``BENCH_engine.json``
            and the pytest parametrize id.
        spec_key: Policy key from the taxonomy, or ``None`` for an
            unthrottled run.
        duration_s: Silicon time simulated per round.
        faulted: Whether the run carries the benchmark fault plan
            (exercises the sensor-fault and actuation hot paths, and —
            because a plan blocks fusion — keeps the stepwise loop
            honest on an otherwise-fusible config). On a sweep-backend
            case, every point of the batch carries the plan — the
            Monte-Carlo fault-campaign shape `repro robustness` runs.
        short: Whether the case belongs to the quick suite that CI
            reruns on every push; the full-length case is excluded.
        description: One line for humans, recorded in the artifact.
        sample_period_s: When set, the run carries a
            :class:`~repro.obs.telemetry.TelemetrySampler` at this
            period — the fusion-aware instrumentation path.
        record_series: When true, the run records full per-step series
            (``SimulationConfig.record_series``), the pre-telemetry way
            to get time-series data; it blocks fusion, which is exactly
            the contrast the sampled cases measure against.
        backend: ``None`` (default) for a plain single-engine case.
            ``"fleet"`` / ``"pool"`` turn the case into a *sweep-batch*
            case: one round runs a :data:`SWEEP_THRESHOLDS`-sized batch
            of points end-to-end through a fresh
            :class:`~repro.sim.runner.ParallelRunner` with that backend
            (fleet: ``jobs=1``; pool: ``jobs=SWEEP_POOL_JOBS`` worker
            processes; no cache), timing runner + engine construction +
            stepping. ``steps_per_second`` then counts total engine
            steps across the batch, so fleet/pool ratios equal
            sweep-point throughput ratios.
        scenario: Named preset from :mod:`repro.scenarios` the case runs
            on (``None`` = the paper's 4-core chip). The workload mix is
            tiled across the scenario's cores; sweep-backend scenario
            cases use the shorter :data:`MANYCORE_SWEEP_THRESHOLDS`
            grid to bound many-core runtime.
    """

    key: str
    spec_key: Optional[str]
    duration_s: float
    faulted: bool
    short: bool
    description: str
    sample_period_s: Optional[float] = None
    record_series: bool = False
    backend: Optional[str] = None
    scenario: Optional[str] = None


ENGINE_BENCH_CASES: Tuple[BenchCase, ...] = (
    BenchCase(
        "unthrottled", None, SHORT_RUN_S, False, True,
        "no policy: pure power/thermal stepping (fused whole-run path)",
    ),
    BenchCase(
        "stopgo", "distributed-stop-go-none", SHORT_RUN_S, False, True,
        "per-core stop-go throttling, counter-free",
    ),
    BenchCase(
        "dvfs", "distributed-dvfs-none", SHORT_RUN_S, False, True,
        "per-core PI-controlled DVFS",
    ),
    BenchCase(
        "dvfs+sensor-migration", "distributed-dvfs-sensor", SHORT_RUN_S,
        False, True,
        "per-core DVFS plus sensor-based thread migration",
    ),
    BenchCase(
        "faulted-dvfs", "distributed-dvfs-none", SHORT_RUN_S, True, True,
        "per-core DVFS under an active fault plan (fusion blocked, "
        "sensor-fault + DVFS-reject hot paths exercised)",
    ),
    BenchCase(
        "table1-full", None, FULL_RUN_S, False, False,
        "full-length Table-1-style unthrottled characterization run",
    ),
    # Telemetry-vs-record_series contrast pairs (docs/PERFORMANCE.md §3):
    # the sampled cases keep whatever fast path the config allows (the
    # unthrottled one stays fully fused), while record_series blocks
    # fusion and pays per-step Python-list appends.
    BenchCase(
        "sampled-unthrottled", None, TELEMETRY_RUN_S, False, True,
        "unthrottled with the telemetry sampler at 1 ms: fused chunks "
        "between sample instants",
        sample_period_s=1e-3,
    ),
    BenchCase(
        "recorded-unthrottled", None, TELEMETRY_RUN_S, False, True,
        "unthrottled with full per-step series recording (fusion "
        "blocked): the pre-telemetry time-series path",
        record_series=True,
    ),
    BenchCase(
        "sampled-dvfs", "distributed-dvfs-none", TELEMETRY_RUN_S, False, True,
        "per-core DVFS with the telemetry sampler at 1 ms",
        sample_period_s=1e-3,
    ),
    BenchCase(
        "recorded-dvfs", "distributed-dvfs-none", TELEMETRY_RUN_S, False, True,
        "per-core DVFS with full per-step series recording",
        record_series=True,
    ),
    # Backend-contrast sweep pairs: the same fine-grained threshold
    # sweep, end to end, through the batched fleet engine vs the
    # process-pool ParallelRunner path (jobs=SWEEP_POOL_JOBS). The
    # gated >=10x fleet advantage comes from sharing traces, the
    # thermal kernel, the PI design and one warm start across the
    # batch, and stepping all chips in lockstep ("one einsum per
    # step") — where the pool pays per-point construction, a per-point
    # warm start, per-worker trace regeneration and pool dispatch.
    BenchCase(
        "fleet-sweep-unthrottled", None, SWEEP_RUN_S, False, True,
        "threshold sweep of unthrottled runs batched through the fleet "
        "engine (shared substrate, vectorised fused stepping)",
        backend="fleet",
    ),
    BenchCase(
        "pool-sweep-unthrottled", None, SWEEP_RUN_S, False, True,
        "the same unthrottled threshold sweep, one engine per point "
        "through the process-pool ParallelRunner",
        backend="pool",
    ),
    BenchCase(
        "fleet-sweep-dvfs", "distributed-dvfs-none", SWEEP_RUN_S, False,
        True,
        "threshold sweep of per-core PI-DVFS runs batched through the "
        "fleet engine (vectorised PI bank + stop-go-free stepwise loop)",
        backend="fleet",
    ),
    BenchCase(
        "pool-sweep-dvfs", "distributed-dvfs-none", SWEEP_RUN_S, False,
        True,
        "the same PI-DVFS threshold sweep, one engine per point through "
        "the process-pool ParallelRunner",
        backend="pool",
    ),
    # Fault-campaign contrast pair: the same sweep with every point
    # carrying the benchmark fault plan — the batched Monte-Carlo
    # robustness-campaign shape. The fleet engine replays each member's
    # private fault/noise RNG streams in step order, so this measures
    # the stochastic stepwise path, not the fused one.
    BenchCase(
        "fleet-faults-dvfs", "distributed-dvfs-none", SWEEP_RUN_S, True,
        True,
        "faulted PI-DVFS threshold sweep batched through the fleet "
        "engine (stream-replay stochastic layer, vectorised "
        "sensor-fault transforms)",
        backend="fleet",
    ),
    BenchCase(
        "pool-faults-dvfs", "distributed-dvfs-none", SWEEP_RUN_S, True,
        True,
        "the same faulted PI-DVFS threshold sweep, one engine per point "
        "through the process-pool ParallelRunner",
        backend="pool",
    ),
    # Many-core scenario cases (docs/SCENARIOS.md): the mesh16 and
    # big.LITTLE chips through both backends, on the shorter manycore
    # threshold grid. Excluded from the --short CI gate (short=False):
    # tracked for trend data via the full `repro bench` suite.
    BenchCase(
        "fleet-mesh16-dvfs", "distributed-dvfs-none", SWEEP_RUN_S, False,
        False,
        "PI-DVFS threshold sweep on the 16-core mesh scenario batched "
        "through the fleet engine (one shared 193-block kernel)",
        backend="fleet", scenario="mesh16",
    ),
    BenchCase(
        "pool-mesh16-dvfs", "distributed-dvfs-none", SWEEP_RUN_S, False,
        False,
        "the same mesh16 PI-DVFS sweep, one engine per point through "
        "the process-pool ParallelRunner",
        backend="pool", scenario="mesh16",
    ),
    BenchCase(
        "fleet-biglittle-dvfs", "distributed-dvfs-none", SWEEP_RUN_S,
        False, False,
        "PI-DVFS threshold sweep on the heterogeneous big.LITTLE chip "
        "batched through the fleet engine (per-class DVFS floors in "
        "the PI bank)",
        backend="fleet", scenario="biglittle4+4",
    ),
)

#: Trip-threshold values (deg C) swept by the backend-contrast cases;
#: every threshold is a distinct simulation point (different setpoints,
#: trip levels and emergency accounting), as in the paper's severity
#: sweeps. 64 points at 0.125 C spacing: batch sizes this large are
#: where the fleet's shared-cost amortization pays off.
SWEEP_THRESHOLDS: Tuple[float, ...] = tuple(
    80.0 + 0.125 * i for i in range(64)
)

#: Shorter grid for many-core scenario sweeps: each point costs ~4-16x
#: a 4-core point (more blocks, more cores), so 16 points keep the
#: cases tractable while still amortizing the fleet's shared setup.
MANYCORE_SWEEP_THRESHOLDS: Tuple[float, ...] = tuple(
    80.0 + 0.5 * i for i in range(16)
)


def _bench_fault_plan(duration_s: float) -> FaultPlan:
    """The fixed fault plan carried by the ``faulted-dvfs`` case.

    Deliberately touches all three faultable hot paths — per-sample
    sensor rewrites (drift + spikes), a windowed dropout, and DVFS
    commit rejection — without changing which code *exists* on the
    path; windows scale with the horizon so the plan is meaningful at
    any ``duration_s``.
    """
    d = float(duration_s)
    return FaultPlan(
        name="bench",
        faults=(
            DriftFault(
                core=0, unit="intreg",
                start_s=0.2 * d, end_s=d, rate_c_per_s=10.0,
            ),
            SpikeFault(start_s=0.0, end_s=d, magnitude_c=8.0, prob=0.01),
            DropoutFault(
                core=1, start_s=0.3 * d, end_s=0.7 * d, mode="last-good",
            ),
            DVFSRejectFault(start_s=0.25 * d, end_s=0.75 * d, prob=0.5),
        ),
    )


def _case_scenario_kwargs(case: BenchCase) -> Dict:
    """Scenario-dependent ``SimulationConfig`` kwargs for ``case``."""
    if case.scenario is None:
        return {}
    from repro.scenarios import get_scenario

    scenario = get_scenario(case.scenario)
    return {"machine": scenario.machine_config(), "scenario": scenario}


def _case_workload(case: BenchCase):
    """The (scenario-tiled) workload ``case`` runs."""
    from repro.sim.workloads import get_workload, tile_workload

    workload = get_workload("workload7")
    if case.scenario is None:
        return workload
    from repro.scenarios import get_scenario

    return tile_workload(workload, get_scenario(case.scenario).n_cores)


def case_thresholds(case: BenchCase) -> Tuple[float, ...]:
    """The threshold grid a sweep-backend case sweeps."""
    if case.scenario is not None:
        return MANYCORE_SWEEP_THRESHOLDS
    return SWEEP_THRESHOLDS


def case_config(case: BenchCase) -> SimulationConfig:
    """The :class:`SimulationConfig` a case runs under."""
    kwargs = {"duration_s": case.duration_s}
    if case.faulted:
        kwargs["fault_plan"] = _bench_fault_plan(case.duration_s)
    if case.record_series:
        kwargs["record_series"] = True
    kwargs.update(_case_scenario_kwargs(case))
    return SimulationConfig(**kwargs)


def sweep_case_points(case: BenchCase) -> List["RunPoint"]:
    """The point batch a sweep-backend case runs each round."""
    from repro.sim.runner import RunPoint

    if case.backend is None:
        raise ValueError(f"{case.key} is not a sweep-backend case")
    workload = _case_workload(case)
    spec = spec_by_key(case.spec_key) if case.spec_key else None
    kwargs = {}
    if case.faulted:
        kwargs["fault_plan"] = _bench_fault_plan(case.duration_s)
    kwargs.update(_case_scenario_kwargs(case))
    return [
        RunPoint(
            workload,
            spec,
            SimulationConfig(
                duration_s=case.duration_s,
                threshold_c=threshold,
                warm_start_fraction=SWEEP_WARM_FRACTION,
                **kwargs,
            ),
        )
        for threshold in case_thresholds(case)
    ]


def build_simulator(case: BenchCase) -> ThermalTimingSimulator:
    """A fresh simulator for one benchmark round of ``case``."""
    from repro.obs.telemetry import TelemetrySampler

    if case.backend is not None:
        raise ValueError(
            f"{case.key} is a sweep-backend case; it has no single "
            "simulator (see sweep_case_points)"
        )
    workload = _case_workload(case)
    spec = spec_by_key(case.spec_key) if case.spec_key else None
    telemetry = (
        TelemetrySampler(case.sample_period_s)
        if case.sample_period_s is not None
        else None
    )
    return ThermalTimingSimulator(
        workload.benchmarks, spec, case_config(case), telemetry=telemetry
    )


def case_steps(case: BenchCase) -> int:
    """Engine steps one round of ``case`` simulates.

    Sweep-backend cases count the whole point batch, not one run.
    """
    config = case_config(case)
    per_run = max(
        1, int(round(case.duration_s / config.machine.sample_period_s))
    )
    if case.backend is not None:
        return per_run * len(case_thresholds(case))
    return per_run


@dataclass(frozen=True)
class BenchCaseResult:
    """Measured throughput for one case."""

    case: BenchCase
    simulated_steps: int
    round_seconds: Tuple[float, ...]

    @property
    def best_seconds(self) -> float:
        """Fastest round's wall time."""
        return min(self.round_seconds)

    @property
    def steps_per_second(self) -> float:
        """Throughput of the best round — the gated headline number."""
        return self.simulated_steps / self.best_seconds

    @property
    def steps_per_second_mean(self) -> float:
        """Mean-round throughput, recorded for context."""
        mean = sum(self.round_seconds) / len(self.round_seconds)
        return self.simulated_steps / mean


def run_case(
    case: BenchCase,
    rounds: int = DEFAULT_ROUNDS,
    warmup_rounds: int = 1,
) -> BenchCaseResult:
    """Time ``case`` for ``rounds`` measured rounds (plus warmup)."""
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    timings: List[float] = []
    if case.backend is not None:
        # Sweep-batch case: time the whole batch end to end — runner,
        # engine construction and stepping — with a fresh runner per
        # round so nothing (substrates, traces) leaks across rounds.
        # That is the cost a cold `repro sweep` invocation actually
        # pays per backend.
        from repro.sim.runner import ParallelRunner

        points = sweep_case_points(case)
        jobs = SWEEP_POOL_JOBS if case.backend == "pool" else 1
        for i in range(warmup_rounds + rounds):
            runner = ParallelRunner(
                jobs=jobs, cache=None, backend=case.backend
            )
            start = time.perf_counter()
            runner.run_points(points)
            elapsed = time.perf_counter() - start
            if i >= warmup_rounds:
                timings.append(elapsed)
        return BenchCaseResult(case, case_steps(case), tuple(timings))
    for i in range(warmup_rounds + rounds):
        sim = build_simulator(case)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        if i >= warmup_rounds:
            timings.append(elapsed)
    return BenchCaseResult(case, case_steps(case), tuple(timings))


def run_suite(
    short_only: bool = False,
    rounds: int = DEFAULT_ROUNDS,
    cases: Optional[Sequence[BenchCase]] = None,
) -> Dict:
    """Run the suite and return the ``BENCH_engine.json`` payload.

    Args:
        short_only: Restrict to the quick cases CI reruns.
        rounds: Measured rounds per case (best round is reported).
        cases: Explicit case list; defaults to
            :data:`ENGINE_BENCH_CASES` (filtered by ``short_only``).

    Returns:
        A JSON-serializable dict following :data:`SCHEMA`.
    """
    selected = list(cases if cases is not None else ENGINE_BENCH_CASES)
    if short_only:
        selected = [c for c in selected if c.short]
    payload: Dict = {
        "schema": SCHEMA,
        "suite": "engine",
        "workload": "workload7",
        "rounds": rounds,
        "environment": {
            "python": platform.python_version(),
            "numpy": __import__("numpy").__version__,
            "platform": platform.platform(),
        },
        "cases": {},
    }
    for case in selected:
        result = run_case(case, rounds=rounds)
        payload["cases"][case.key] = {
            "policy": case.spec_key,
            "description": case.description,
            "duration_s": case.duration_s,
            "faulted": case.faulted,
            "short": case.short,
            "sample_period_s": case.sample_period_s,
            "record_series": case.record_series,
            "backend": case.backend,
            "scenario": case.scenario,
            "sweep_points": (
                len(case_thresholds(case)) if case.backend is not None else None
            ),
            "simulated_steps": result.simulated_steps,
            "steps_per_second": round(result.steps_per_second, 1),
            "steps_per_second_mean": round(result.steps_per_second_mean, 1),
            "best_round_s": round(result.best_seconds, 6),
        }
    return payload


def write_bench_json(payload: Dict, path: str) -> str:
    """Write a suite payload as pretty-printed JSON; returns ``path``."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_bench_json(path: str) -> Dict:
    """Load and sanity-check a ``BENCH_engine.json`` payload."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got "
            f"{payload.get('schema')!r}"
        )
    return payload


def compare_to_baseline(
    current: Dict,
    baseline: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regression check of ``current`` against a committed ``baseline``.

    Only cases present in both payloads are compared (so adding a case
    does not invalidate an old baseline, and the short CI suite can be
    checked against the full committed artifact). A case regresses when
    its ``steps_per_second`` falls more than ``tolerance`` below the
    baseline's.

    Returns:
        Human-readable regression messages; empty means the gate passes.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    problems: List[str] = []
    for key, base in baseline["cases"].items():
        cur = current["cases"].get(key)
        if cur is None:
            continue
        floor = base["steps_per_second"] * (1.0 - tolerance)
        if cur["steps_per_second"] < floor:
            problems.append(
                f"{key}: {cur['steps_per_second']:.0f} steps/s is "
                f"{1 - cur['steps_per_second'] / base['steps_per_second']:.0%} "
                f"below baseline {base['steps_per_second']:.0f} "
                f"(floor {floor:.0f} at tolerance {tolerance:.0%})"
            )
    return problems


def render_suite(payload: Dict) -> str:
    """One-line-per-case text summary of a suite payload."""
    lines = [
        f"engine throughput ({payload['workload']}, best of "
        f"{payload['rounds']} rounds):"
    ]
    for key, entry in payload["cases"].items():
        lines.append(
            f"  {key:24s} {entry['steps_per_second']:>10,.0f} steps/s  "
            f"({entry['simulated_steps']} steps, "
            f"{entry['duration_s']:g} s silicon)"
        )
    return "\n".join(lines)


def add_bench_arguments(parser) -> None:
    """Install the ``bench`` flags on an argparse parser (or subparser)."""
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the JSON payload (default: BENCH_engine.json unless "
             "--check is given)",
    )
    parser.add_argument(
        "--short", action="store_true",
        help="run only the quick cases (the set CI regression-gates)",
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS,
        help=f"measured rounds per case (default: {DEFAULT_ROUNDS})",
    )
    parser.add_argument(
        "--cases", nargs="+", default=None, metavar="KEY",
        choices=sorted(c.key for c in ENGINE_BENCH_CASES),
        help="run only the named cases (e.g. the fleet-sweep-*/"
             "pool-sweep-* backend contrast); composes with --check, "
             "which only compares cases present in both payloads",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a committed BENCH_engine.json and exit "
             "non-zero on regression instead of writing a new artifact",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below the baseline before --check "
             f"fails (default: {DEFAULT_TOLERANCE})",
    )


def run_from_args(args) -> int:
    """Execute a parsed ``bench`` invocation; returns the exit code."""
    cases = None
    if getattr(args, "cases", None):
        wanted = set(args.cases)
        cases = [c for c in ENGINE_BENCH_CASES if c.key in wanted]
    payload = run_suite(
        short_only=args.short, rounds=args.rounds, cases=cases
    )
    print(render_suite(payload))

    if args.check:
        baseline = load_bench_json(args.check)
        problems = compare_to_baseline(
            payload, baseline, tolerance=args.tolerance
        )
        if problems:
            print(f"\nREGRESSION vs {args.check}:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(
            f"\nok: no case more than {args.tolerance:.0%} below "
            f"{args.check}"
        )
        if args.output:
            print(f"baseline updated -> {write_bench_json(payload, args.output)}")
        return 0

    path = write_bench_json(payload, args.output or "BENCH_engine.json")
    print(f"\nbaseline written -> {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``benchmarks/bench_to_json.py``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="measure engine throughput and write BENCH_engine.json",
    )
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))
