"""Batched fleet engine: vectorised stepping of many independent chips.

The scalar :class:`~repro.sim.engine.ThermalTimingSimulator` advances one
chip per process; a policy sweep therefore pays per-point process fan-out
for runs whose inner loop is a handful of tiny matrix-vector products.
:class:`FleetEngine` stacks N independent chips that share a floorplan
into ``(N, ...)`` arrays and advances them together: one vectorised
sensor read, one vectorised PI/stop-go update, one vectorised power
assembly and one thermal-propagator application per chip per step, all
inside a single process.

Bit-identity contract
---------------------
Fleet results are **bit-identical** to running each member through the
scalar engine (``tests/sim/test_fleet.py`` enforces this across the
full 12-policy taxonomy). Three design rules make that possible:

* Elementwise work (PI law, actuator gating, freeze timers, power
  assembly, leakage, metric folds) is batched — IEEE elementwise ops
  are bit-equal regardless of array shape. Reductions that are *not*
  shape-invariant (``np.sum`` is pairwise, not a left fold) are written
  as explicit per-core folds, matching the scalar engine's loop order.
* The thermal update is **one einsum per step** over the whole live
  batch (:meth:`~repro.thermal.model.StepOperator.apply_batch`).
  einsum's per-element summation order is shape-invariant, so row ``i``
  of the batched application is bitwise equal to the scalar engine's
  :meth:`~repro.thermal.model.StepOperator.apply` — which uses the same
  einsum formulation rather than BLAS ``@`` precisely so the two paths
  can never diverge (gemm and gemv pick shape-dependent blocking and
  differ in the last bits).
* Control *decisions* with heavy branching (OS ticks: thermal-table
  folds, migration proposals, scheduler moves) are not re-implemented.
  Each fleet member owns a real scalar simulator; at its OS tick the
  batched state is written into the member's real policy objects, the
  member's real ``_os_tick`` runs, and the mutated state is read back.
  Ticks are rare (every ~360 steps), so the sync cost is negligible —
  and there is no second implementation of the decision logic to drift.

Batching rules
--------------
All members must be *fleet-eligible*: no sensor guards, no hardware
trip, no series recording. :func:`fleet_blockers` reports why a config
is ineligible; :class:`FleetEngine` refuses such members with
:class:`FleetIncompatibleError` — the
:class:`~repro.sim.runner.ParallelRunner` routes them through the
process-pool fallback instead. Heterogeneous machines/packages are fine:
members are grouped per substrate and per policy family, and each group
steps in lockstep with members retiring as their horizons end.

Stochastic members (fault plans, sensor noise) batch too, by **stream
replay**: each member keeps its own per-fault and per-chip RNG streams
(exactly the ones its scalar run would own), and the batched loop draws
from them per step, per member in ascending row order, per fault in
plan order — one draw of the scalar's exact shape at each point the
scalar loop would draw. Streams are mutually independent, so the
interleaving across members cannot perturb any member's sequence, and
the per-member draw order is the scalar order by construction. The
sensor-fault *transforms* are vectorised over the member stack by
:class:`~repro.faults.injector.FleetFaultInjector` (one cohort per
distinct plan within a group); DVFS-gate and migration fault hooks call
each member's real scalar injector at the same decision points the
scalar engine consults it, so counters and streams live on the real
objects. NaN readings (``mode="nan"`` dropouts) are handled by writing
every reduction the sensor values feed — hottest-unit and chip-hot
folds, PI clamping, trend-window min/first — as explicit selection
folds matching Python/scalar NaN semantics bit for bit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.control.pi import PIBank
from repro.core.dvfs import DVFSPolicy
from repro.core.stopgo import StopGoPolicy
from repro.faults.injector import FleetFaultInjector
from repro.obs.telemetry import TelemetrySampler
from repro.sim.engine import (
    EngineSubstrate,
    SimulationConfig,
    ThermalTimingSimulator,
)
from repro.sim.metrics import EMERGENCY_TOLERANCE_C, MetricsAccumulator
from repro.sim.results import RunResult
from repro.sim.workloads import Workload
from repro.thermal.layouts import HOTSPOT_UNITS
from repro.uarch.power import (
    L2_BANK_PEAK_W,
    L2_IDLE_FRACTION,
    XBAR_IDLE_FRACTION,
    XBAR_PEAK_W,
)

_OM_L2 = 1 - L2_IDLE_FRACTION
_OM_XBAR = 1 - XBAR_IDLE_FRACTION
_U0, _U1 = HOTSPOT_UNITS


class FleetIncompatibleError(ValueError):
    """A batch member cannot take the fleet fast path.

    Carries the offending member indices and their blockers so the
    runner can route exactly those points through the scalar fallback.
    """


def fleet_blockers(config: SimulationConfig) -> Tuple[str, ...]:
    """Why a config cannot run in a fleet batch (empty = eligible).

    Mirrors the scalar engine's :attr:`fusion_blockers` vocabulary for
    the features the batched loop does not implement: sensor guards,
    the PROCHOT hardware trip, and full series recording. Fault plans
    and sensor noise batch via per-member RNG stream replay (see the
    module docstring); sensor offset and quantization are deterministic
    elementwise transforms and batch fine.
    """
    blockers = []
    if config.guard is not None:
        blockers.append("sensor-guards")
    if config.hardware_trip:
        blockers.append("hardware-trip")
    if config.record_series:
        blockers.append("record-series")
    return tuple(blockers)


class _Member:
    """One chip in the fleet: its real simulator plus batch bookkeeping."""

    __slots__ = ("index", "workload", "sim", "n_steps", "metrics", "fused")

    def __init__(self, index: int, workload: Optional[Workload], sim, n_steps: int):
        self.index = index
        self.workload = workload
        self.sim = sim
        self.n_steps = n_steps
        self.metrics: Optional[MetricsAccumulator] = None
        self.fused = False


class _LiveMetrics:
    """Telemetry-facing metrics view over the batched accumulators."""

    __slots__ = ("per_core_instructions",)

    def __init__(self, per_core_instructions: List[float]):
        self.per_core_instructions = per_core_instructions


def _member_tuple(entry):
    """Normalise a batch entry to ``(workload, spec, config)``."""
    if isinstance(entry, tuple):
        workload, spec, config = entry
    else:
        workload, spec, config = entry.workload, entry.spec, entry.config
    return workload, spec, config or SimulationConfig()


class FleetEngine:
    """Run a batch of independent chips with vectorised lockstep stepping.

    Args:
        members: Sequence of ``(workload, spec, config)`` tuples or
            objects with those attributes (e.g.
            :class:`~repro.sim.runner.RunPoint`).
        telemetry: Optional per-member samplers (same length as
            ``members``; ``None`` entries for unsampled members). Each
            sampler binds to its member's real simulator and observes
            exactly the series a scalar run would produce.
        substrates: Optional pre-built substrate pool to extend/reuse
            (keyed internally; pass the same dict across engines to
            share traces between batches).

    Raises:
        FleetIncompatibleError: If any member's config has
            :func:`fleet_blockers`.
    """

    def __init__(
        self,
        members: Sequence,
        *,
        telemetry: Optional[Sequence[Optional[TelemetrySampler]]] = None,
        substrates: Optional[Dict[tuple, EngineSubstrate]] = None,
    ):
        if not members:
            raise ValueError("fleet batch must contain at least one member")
        if telemetry is not None and len(telemetry) != len(members):
            raise ValueError("telemetry must have one entry per member")

        parsed = [_member_tuple(m) for m in members]
        bad = []
        for i, (_, _, config) in enumerate(parsed):
            blockers = fleet_blockers(config)
            if blockers:
                bad.append((i, blockers))
        if bad:
            detail = "; ".join(
                f"member {i}: {', '.join(blk)}" for i, blk in bad
            )
            raise FleetIncompatibleError(
                "batch contains fleet-ineligible members — route them "
                f"through the ParallelRunner fallback ({detail})"
            )

        self._substrates: Dict[tuple, EngineSubstrate] = (
            substrates if substrates is not None else {}
        )
        self.members: List[_Member] = []
        for i, (workload, spec, config) in enumerate(parsed):
            substrate = self._substrate_for(config)
            sampler = telemetry[i] if telemetry is not None else None
            benchmarks = (
                workload.benchmarks if workload is not None else None
            )
            if benchmarks is None:
                raise ValueError(f"member {i} has no workload")
            sim = ThermalTimingSimulator(
                benchmarks,
                spec,
                config,
                telemetry=sampler,
                substrate=substrate,
            )
            n_steps = max(1, int(round(config.duration_s / sim.dt)))
            self.members.append(_Member(i, workload, sim, n_steps))

    # -- assembly ----------------------------------------------------------

    def _substrate_for(self, config: SimulationConfig) -> EngineSubstrate:
        """The shared substrate for a config's machine description.

        The key carries the scenario, so a batch mixing chip scenarios
        (e.g. a mesh16 sweep next to a biglittle4+4 sweep) builds one
        ThermalKernel per scenario and groups members accordingly.
        """
        key = (
            repr(config.machine),
            repr(config.package),
            repr(config.core_sizes_mm),
            repr(config.scenario),
        )
        substrate = self._substrates.get(key)
        if substrate is None:
            substrate = EngineSubstrate.for_config(config)
            self._substrates[key] = substrate
        return substrate

    def _warm_key(self, member: _Member) -> tuple:
        """Warm-start sharing key: members with equal keys get equal states."""
        cfg = member.sim.config
        frac = cfg.warm_start_fraction
        return (
            id(member.sim._substrate),
            member.sim.benchmarks,
            float(cfg.trace_duration_s),
            int(cfg.seed),
            float(cfg.power_scale),
            frac,
            float(cfg.threshold_c) if frac is None else None,
        )

    def _group_key(self, member: _Member) -> tuple:
        """Lockstep-compatibility key for batching members together."""
        sim = member.sim
        throttle = sim.throttle
        if not sim.fusion_blockers:
            return (id(sim._substrate), "fused")
        if throttle is None:
            kind, scope = "none", "-"
        elif isinstance(throttle, DVFSPolicy):
            kind, scope = "dvfs", throttle.scope
        elif isinstance(throttle, StopGoPolicy):
            kind, scope = "stopgo", throttle.scope
        else:  # pragma: no cover - no other policy families exist
            raise FleetIncompatibleError(
                f"unknown throttle family {type(throttle).__name__}"
            )
        extra: tuple = ()
        if kind == "dvfs":
            # Per-controller, not just controllers[0]: a scenario's
            # per-class DVFS floors give distributed controllers
            # heterogeneous output_min values, and members may only be
            # batched when their whole floor vector matches.
            extra = tuple(
                (c.design.b0, c.design.b1, c.output_min, c.output_max)
                for c in throttle.controllers
            )
        return (
            id(sim._substrate),
            kind,
            scope,
            sim.migration is not None,
            extra,
        )

    # -- run ---------------------------------------------------------------

    def run(self) -> List[RunResult]:
        """Execute every member and return results in input order."""
        warm_cache: Dict[tuple, np.ndarray] = {}
        for member in self.members:
            sim = member.sim
            key = self._warm_key(member)
            temps = warm_cache.get(key)
            if temps is None:
                sim._warm_start()
                warm_cache[key] = sim.thermal.temperatures.copy()
            else:
                sim.thermal.set_temperatures(temps)
            member.metrics = MetricsAccumulator(
                sim.n_cores, sim.config.threshold_c
            )
            if sim.telemetry is not None:
                sim.telemetry.begin_run()

        groups: Dict[tuple, List[_Member]] = {}
        for member in self.members:
            groups.setdefault(self._group_key(member), []).append(member)

        for key, group in groups.items():
            # Descending horizons so retiring members always form a
            # suffix and the live set stays a contiguous prefix.
            group.sort(key=lambda m: -m.n_steps)
            if key[1] == "fused":
                _FusedGroup(group).run()
                for member in group:
                    member.fused = True
            else:
                _StepwiseGroup(group, kind=key[1], scope=key[2]).run()

        results: List[Optional[RunResult]] = [None] * len(self.members)
        for member in self.members:
            sim = member.sim
            sim.metrics = member.metrics
            sim.last_run_fused = member.fused
            result = sim._build_result(member.metrics, None)
            if member.workload is not None:
                result = replace(result, workload=member.workload.name)
            results[member.index] = result
        return results  # type: ignore[return-value]


class _GroupBase:
    """Shared batched state for one lockstep group."""

    def __init__(self, members: List[_Member]):
        self.members = members
        self.sims = [m.sim for m in members]
        s0 = self.sims[0]
        self.dt = s0.dt
        self.n_cores = s0.n_cores
        self.n_blocks = s0.thermal.network.n_blocks
        self.op = s0.thermal.operator_for(self.dt)
        self.nominal_cycles = self.dt * s0.config.machine.clock_hz
        self.cui = s0._core_unit_idx          # (C, U)
        self.unit_flat = s0._unit_flat        # (C*U,)
        self.l2_cols = np.asarray(s0._l2_idx_list, dtype=np.int64)
        self.xbar_i = s0._xbar_i
        self.hotspot_idx = s0._hotspot_idx    # (C, 2)
        self.n_steps = [m.n_steps for m in members]  # descending

        n = len(members)
        C = self.n_cores
        self.T = np.stack([s.thermal.temperatures for s in self.sims])
        self.l2_base = np.array(
            [[s.config.power_scale * L2_BANK_PEAK_W for s in self.sims]]
        ).T  # (N, 1)
        self.xbar_base = np.array(
            [[s.config.power_scale * XBAR_PEAK_W for s in self.sims]]
        ).T
        self.ref_w = np.stack([s.leakage.reference_w for s in self.sims])
        leak = s0.leakage
        self.leak_beta = leak.beta
        self.leak_tref = leak.t_ref_c
        self.leak_cap = leak.max_eval_temp_c
        for s in self.sims:
            if (
                s.leakage.beta != leak.beta
                or s.leakage.t_ref_c != leak.t_ref_c
                or s.leakage.max_eval_temp_c != leak.max_eval_temp_c
            ):  # pragma: no cover - engine always uses default leakage
                raise FleetIncompatibleError("heterogeneous leakage models")
        self.emerg_thresh = np.array(
            [s.config.threshold_c + EMERGENCY_TOLERANCE_C for s in self.sims]
        )

        # Metric accumulators (batched MetricsAccumulator fields).
        self.wall = np.zeros(n)
        self.work_t = np.zeros(n)
        self.stall_t = np.zeros(n)
        self.frozen_t = np.zeros(n)
        self.instr_tot = np.zeros(n)
        self.max_t = np.full(n, -273.15)
        self.emerg = np.zeros(n)
        self.pci = np.zeros((n, C))

        # Per-(chip, pid) performance counters and trace positions.
        self.c_instr = np.zeros((n, C))
        self.c_int = np.zeros((n, C))
        self.c_fp = np.zeros((n, C))
        self.c_cyc = np.zeros((n, C))
        self.c_adj = np.zeros((n, C))
        for i, s in enumerate(self.sims):
            for p in s.scheduler.processes:
                ctr = p.counters
                self.c_instr[i, p.pid] = ctr.instructions
                self.c_int[i, p.pid] = ctr.int_rf_accesses
                self.c_fp[i, p.pid] = ctr.fp_rf_accesses
                self.c_cyc[i, p.pid] = ctr.cycles
                self.c_adj[i, p.pid] = ctr.adjusted_cycles

        # Trace pools, padded to the longest trace; per-trace lengths
        # drive the position modulo so padding is never read.
        pool_ids: Dict[int, int] = {}
        traces = []
        for s in self.sims:
            for p in s.scheduler.processes:
                if id(p.trace) not in pool_ids:
                    pool_ids[id(p.trace)] = len(traces)
                    traces.append(p.trace)
        s_max = max(tr.n_samples for tr in traces)
        n_units = self.cui.shape[1]
        P = len(traces)
        self.unit_pool = np.zeros((P, s_max, n_units))
        self.l2_pool = np.zeros((P, s_max))
        self.instr_pool = np.zeros((P, s_max))
        self.int_pool = np.zeros((P, s_max))
        self.fp_pool = np.zeros((P, s_max))
        self.pool_ns = np.empty(P, dtype=np.int64)
        for j, tr in enumerate(traces):
            ns = int(tr.n_samples)
            self.pool_ns[j] = ns
            self.unit_pool[j, :ns] = tr.unit_power
            self.l2_pool[j, :ns] = tr.l2_activity
            self.instr_pool[j, :ns] = tr.instructions
            self.int_pool[j, :ns] = tr.int_rf_accesses
            self.fp_pool[j, :ns] = tr.fp_rf_accesses
        self.tid_pid = np.empty((n, C), dtype=np.int64)
        for i, s in enumerate(self.sims):
            for p in s.scheduler.processes:
                self.tid_pid[i, p.pid] = pool_ids[id(p.trace)]

        # Telemetry cursors (-1 = no sampler).
        self.tel_stride = [0] * n
        self.tel_next = [-1] * n
        for i, s in enumerate(self.sims):
            if s.telemetry is not None:
                self.tel_stride[i] = s.telemetry.stride_steps(self.dt)
                self.tel_next[i] = self.tel_stride[i] - 1

    # -- shared helpers ----------------------------------------------------

    def _step_metrics(self, m, work, stalled, frozen, instr_mat, mt):
        """Fold one step into the batched accumulators, scalar fold order."""
        dt = self.dt
        self.wall[:m] += dt
        tmp = np.zeros(m)
        for c in range(self.n_cores):
            self.work_t[:m] += work[:, c]
            self.stall_t[:m] += stalled[:, c]
            if frozen is not None:
                fmask = frozen[:, c]
                if fmask.any():
                    ft = self.frozen_t[:m]
                    ft[fmask] += dt
            self.pci[:m, c] += instr_mat[:, c]
            tmp += instr_mat[:, c]
        self.instr_tot[:m] += tmp
        hotter = mt > self.max_t[:m]
        np.copyto(self.max_t[:m], mt, where=hotter)
        em = self.emerg[:m]
        em[mt > self.emerg_thresh[:m]] += dt

    def _sample_telemetry(self, i, step, eff_scales):
        """One member's telemetry tap, fed from live batched state."""
        sim = self.sims[i]
        self._sync_sampler_counters(i)
        live = _LiveMetrics(self.pci[i].tolist())
        sim.telemetry.sample(
            (step + 1) * self.dt, self.T[i], eff_scales, live
        )
        self.tel_next[i] += self.tel_stride[i]

    def _sync_sampler_counters(self, i):
        """Hook: push batched counters into the member's real objects."""

    def _finish_metrics(self):
        """Write the batched accumulators back into per-member metrics."""
        for i, member in enumerate(self.members):
            metrics = member.metrics
            metrics.wall_time_s = float(self.wall[i])
            metrics.work_time_s = float(self.work_t[i])
            metrics.stall_time_s = float(self.stall_t[i])
            metrics.frozen_time_s = float(self.frozen_t[i])
            metrics.instructions = float(self.instr_tot[i])
            metrics.max_temp_c = float(self.max_t[i])
            metrics.emergency_s = float(self.emerg[i])
            metrics.per_core_instructions = self.pci[i].tolist()

    def _finish_processes(self, positions):
        """Write counters, positions and temperatures back to the sims."""
        for i, sim in enumerate(self.sims):
            sim.thermal.temperatures = self.T[i].copy()
            for p in sim.scheduler.processes:
                ctr = p.counters
                ctr.instructions = float(self.c_instr[i, p.pid])
                ctr.int_rf_accesses = float(self.c_int[i, p.pid])
                ctr.fp_rf_accesses = float(self.c_fp[i, p.pid])
                ctr.cycles = float(self.c_cyc[i, p.pid])
                ctr.adjusted_cycles = float(self.c_adj[i, p.pid])
                p.position = float(positions[i, p.pid])


class _StepwiseGroup(_GroupBase):
    """Lockstep batched version of the engine's general stepwise loop."""

    def __init__(self, members: List[_Member], kind: str, scope: str):
        super().__init__(members)
        self.kind = kind
        self.scope = scope
        n = len(members)
        C = self.n_cores
        sims = self.sims

        self.assign = np.array(
            [s.scheduler.assignment for s in sims], dtype=np.int64
        )
        self.pos = np.zeros((n, C))
        for i, s in enumerate(sims):
            for p in s.scheduler.processes:
                self.pos[i, p.pid] = p.position
        self.su = np.array([s._stall_until for s in sims])

        self.offset = np.array(
            [[[s.config.sensor_offset_c]] for s in sims]
        )  # (N, 1, 1)
        quant = np.array(
            [[[s.config.sensor_quantization_c]] for s in sims]
        )
        self.qmask = quant > 0
        self.any_quant = bool(self.qmask.any())
        self.qsafe = np.where(self.qmask, quant, 1.0)

        # Stochastic layer: per-member sensor-noise replay rows and
        # fault cohorts (one FleetFaultInjector per distinct plan).
        # Noise rows mirror the scalar gating exactly: the scalar loop
        # draws only when it reads sensors at all, which for a fleet
        # group means a throttled group or a faulted member of an
        # unthrottled ("none") group.
        self.fault_rows = [
            i for i, s in enumerate(sims) if s._faults is not None
        ]
        by_plan: Dict[object, List[int]] = {}
        for i in self.fault_rows:
            by_plan.setdefault(sims[i].config.fault_plan, []).append(i)
        self.fault_cohorts: List[Tuple[np.ndarray, FleetFaultInjector]] = [
            (
                np.asarray(rows, dtype=np.int64),
                FleetFaultInjector([sims[i]._faults for i in rows]),
            )
            for rows in by_plan.values()
        ]
        self.fault_flush: Dict[int, Tuple[FleetFaultInjector, int]] = {}
        for rows, finj in self.fault_cohorts:
            for j, i in enumerate(rows.tolist()):
                self.fault_flush[i] = (finj, j)
        self.noise_rows: List[Tuple[int, float]] = [
            (i, s.config.sensor_noise_std_c)
            for i, s in enumerate(sims)
            if s.config.sensor_noise_std_c > 0
            and (kind != "none" or s._faults is not None)
        ]

        self.has_migration = sims[0].migration is not None
        if self.kind == "dvfs":
            pol = sims[0].throttle
            ctrl0 = pol.controllers[0]
            if self.scope == "distributed":
                setpoints = np.array(
                    [[s.throttle.setpoint_c] * C for s in sims]
                )
                # Per-class DVFS floors (scenario chips) give each core's
                # controller its own output_min; the group key guarantees
                # every member shares this vector, so a (C,) floor array
                # broadcasts against the (m, C) lane prefix exactly like
                # one scalar controller per lane. Homogeneous floors keep
                # the scalar fast path.
                floors = [c.output_min for c in pol.controllers]
                out_min = (
                    ctrl0.output_min
                    if all(f == ctrl0.output_min for f in floors)
                    else np.array(floors)
                )
            else:
                setpoints = np.array([s.throttle.setpoint_c for s in sims])
                out_min = ctrl0.output_min
            self.bank = PIBank(
                ctrl0.design,
                setpoints,
                output_min=out_min,
                output_max=ctrl0.output_max,
            )
            for i, s in enumerate(sims):
                ctrls = s.throttle.controllers
                if self.scope == "distributed":
                    for c in range(C):
                        self.bank.read_lane((i, c), ctrls[c])
                else:
                    self.bank.read_lane(i, ctrls[0])
            self.cur = np.array(
                [[a.current_scale for a in s.actuators] for s in sims]
            )
            self.trans = np.array(
                [[a.transitions for a in s.actuators] for s in sims],
                dtype=np.int64,
            )
            self.mta = np.array(
                [[a.min_transition_abs for a in s.actuators] for s in sims]
            )
            self.penalty = sims[0].actuators[0].transition_penalty_s
            for s in sims:
                if any(
                    a.transition_penalty_s != self.penalty
                    for a in s.actuators
                ):  # pragma: no cover - machine equality implies this
                    raise FleetIncompatibleError(
                        "heterogeneous actuator penalties"
                    )
            # Cubes of the current scales via Python pow — the scalar
            # engine computes ``s ** 3`` on Python floats, and numpy's
            # array power differs from it in the last bit for some
            # inputs. Cubes change only at accepted transitions (a few
            # per step at most), so the scalar pow stays off the hot
            # path.
            self.cube = np.array(
                [[float(v) ** 3 for v in row] for row in self.cur]
            )
            # Members whose plans gate DVFS commits: accepted-candidate
            # transitions replay through the member's real injector (so
            # reject/latency streams and counters advance exactly as in
            # the scalar run, where the actuator consults the gate only
            # for requests passing the min-transition filter).
            self.dvfs_fault_rows = [
                i for i in self.fault_rows if sims[i]._faults._dvfs_faults
            ]
            self.frej = np.array(
                [[a.faulted_rejections for a in s.actuators] for s in sims],
                dtype=np.int64,
            )
        elif self.kind == "stopgo":
            self.fu = np.array(
                [s.throttle._frozen_until for s in sims]
            )
            self.trips = np.array(
                [s.throttle.trip_count for s in sims], dtype=np.int64
            )
            self.wsteps = np.array(
                [s.throttle._window_steps for s in sims], dtype=np.int64
            )
            self.wactive = np.array(
                [s.throttle._window_active for s in sims], dtype=np.int64
            )
            self.trip_temp = np.array(
                [[s.throttle.trip_temperature_c] for s in sims]
            )
            self.freeze = np.array([[s.throttle.freeze_s] for s in sims])

        if self.has_migration:
            u = len(HOTSPOT_UNITS)
            self.w_sum = np.zeros((n, C, u))
            self.w_first = np.full((n, C, u), np.nan)
            self.w_last = np.zeros((n, C, u))
            self.w_min = np.zeros(n)
            self.w_steps = np.zeros(n, dtype=np.int64)
            self.w_dur = np.zeros(n)

        self.row_ix = np.arange(n)[:, None]
        self.pbuf = np.empty((n, self.n_blocks))
        self.lmbuf = np.ones((n, self.n_blocks))
        self.ones_sc = np.ones((n, C))
        self.false_fz = np.zeros((n, C), dtype=bool)

    # -- OS-tick bridge ----------------------------------------------------

    def _member_tick(self, i: int, t: float, sens_row: np.ndarray) -> None:
        """Run one member's real OS tick against synced batched state."""
        sim = self.sims[i]
        C = self.n_cores
        su_list = self.su[i].tolist()
        for c in range(C):
            sim._stall_until[c] = su_list[c]
        w = sim._window
        w._sum[...] = self.w_sum[i]
        np.copyto(w._first, self.w_first[i])
        w._last[...] = self.w_last[i]
        w._min_sum = float(self.w_min[i])
        w._steps = int(self.w_steps[i])
        w.duration_s = float(self.w_dur[i])
        self._sync_throttle_in(i)
        for p in sim.scheduler.processes:
            ctr = p.counters
            ctr.instructions = float(self.c_instr[i, p.pid])
            ctr.int_rf_accesses = float(self.c_int[i, p.pid])
            ctr.fp_rf_accesses = float(self.c_fp[i, p.pid])
            ctr.cycles = float(self.c_cyc[i, p.pid])
            ctr.adjusted_cycles = float(self.c_adj[i, p.pid])

        readings = [{_U0: r[0], _U1: r[1]} for r in sens_row.tolist()]
        sim._os_tick(t, readings)

        self.su[i] = sim._stall_until
        self.assign[i] = sim.scheduler.assignment
        # _os_tick always ends with window.reset() + per-core
        # reset_window; mirror the reset state directly.
        self.w_sum[i] = 0.0
        self.w_first[i] = np.nan
        self.w_last[i] = 0.0
        self.w_min[i] = 0.0
        self.w_steps[i] = 0
        self.w_dur[i] = 0.0
        self._sync_throttle_out(i)

    def _sync_throttle_in(self, i: int) -> None:
        sim = self.sims[i]
        if self.kind == "dvfs":
            ctrls = sim.throttle.controllers
            if self.scope == "distributed":
                for c in range(self.n_cores):
                    self.bank.write_lane((i, c), ctrls[c])
            else:
                self.bank.write_lane(i, ctrls[0])
            for c, a in enumerate(sim.actuators):
                a.current_scale = float(self.cur[i, c])
                a.transitions = int(self.trans[i, c])
                a.faulted_rejections = int(self.frej[i, c])
        elif self.kind == "stopgo":
            pol = sim.throttle
            fu_list = self.fu[i].tolist()
            ws = self.wsteps[i].tolist()
            wa = self.wactive[i].tolist()
            for c in range(self.n_cores):
                pol._frozen_until[c] = fu_list[c]
                pol._window_steps[c] = int(ws[c])
                pol._window_active[c] = int(wa[c])
            pol.trip_count = int(self.trips[i])

    def _sync_throttle_out(self, i: int) -> None:
        sim = self.sims[i]
        if self.kind == "dvfs":
            ctrls = sim.throttle.controllers
            if self.scope == "distributed":
                for c in range(self.n_cores):
                    self.bank.read_lane((i, c), ctrls[c])
            else:
                self.bank.read_lane(i, ctrls[0])
        elif self.kind == "stopgo":
            pol = sim.throttle
            self.fu[i] = pol._frozen_until
            self.wsteps[i] = pol._window_steps
            self.wactive[i] = pol._window_active
            self.trips[i] = pol.trip_count

    def _sync_sampler_counters(self, i: int) -> None:
        """Refresh the real objects the sampler's counter closures read."""
        sim = self.sims[i]
        flush = self.fault_flush.get(i)
        if flush is not None:
            finj, j = flush
            finj.flush(j)
        if self.kind == "dvfs":
            for c, a in enumerate(sim.actuators):
                a.transitions = int(self.trans[i, c])
            ctrls = sim.throttle.controllers
            if self.scope == "distributed":
                for c in range(self.n_cores):
                    ctrls[c]._previous_error = float(
                        self.bank.previous_error[i, c]
                    )
            else:
                ctrls[0]._previous_error = float(self.bank.previous_error[i])
        elif self.kind == "stopgo":
            sim.throttle.trip_count = int(self.trips[i])

    # -- main loop ---------------------------------------------------------

    def run(self) -> None:
        dt = self.dt
        C = self.n_cores
        nb = self.n_blocks
        op_apply_batch = self.op.apply_batch
        n_steps = self.n_steps
        total_steps = n_steps[0]
        alive = len(self.members)
        # Unthrottled ("none") groups read sensors only to feed fault
        # state/counters, matching the scalar loop's need_sensors gate
        # (throttle or faults; guards/series/profiler never batch).
        need_sensors = self.kind != "none" or bool(self.fault_rows)
        throttled = self.kind != "none"
        dvfs = self.kind == "dvfs"
        stopgo = self.kind == "stopgo"
        timers = [s._migration_timer for s in self.sims]
        any_tel = any(st > 0 for st in self.tel_stride)

        for step in range(total_steps):
            while alive > 0 and n_steps[alive - 1] <= step:
                alive -= 1
            if alive == 0:
                break
            m = alive
            t = step * dt

            sens = hot = None
            if need_sensors:
                sens = self.T[:m][:, self.hotspot_idx]  # (m, C, 2)
                sens = sens + self.offset[:m]
                # Per-member noise replay: each member's own sensor
                # stream, drawn in ascending row order with the scalar
                # draw shape. Rows are sorted ascending, so the alive
                # prefix cut is a break, not a filter.
                for i, std in self.noise_rows:
                    if i >= m:
                        break
                    sens[i] += self.sims[i]._sensor_rng.normal(
                        0.0, std, sens[i].shape
                    )
                if self.any_quant:
                    sens = np.where(
                        self.qmask[:m],
                        np.floor(sens / self.qsafe[:m] + 0.5)
                        * self.qsafe[:m],
                        sens,
                    )
                # Dynamic faults apply after the static pipeline, one
                # vectorised cohort at a time (cohort rows ascending,
                # so the alive subset is a prefix).
                for rows, finj in self.fault_cohorts:
                    mc = int(np.searchsorted(rows, m))
                    if mc:
                        r = rows[:mc]
                        sens[r] = finj.apply_sensor_faults(t, sens[r])
                if throttled:
                    # Hottest-unit fold written as the scalar's Python
                    # ``max(r0, r1)`` (second wins only when strictly
                    # greater): np.maximum would propagate a NaN second
                    # reading where the scalar keeps the first. Bitwise
                    # equal for finite readings (selection reduction).
                    s0c = sens[..., 0]
                    s1c = sens[..., 1]
                    hot = np.where(s1c > s0c, s1c, s0c)

            if self.has_migration:
                for i in range(m):
                    if timers[i].fire_due(t):
                        self._member_tick(i, t, sens[i])

            # Throttle + actuation, batched.
            if dvfs:
                if self.scope == "distributed":
                    req = self.bank.step_prefix(m, hot)
                else:
                    # Chip-hot as the scalar's Python ``max`` left fold
                    # (update only on strictly-greater), so a NaN core
                    # reading falls through instead of poisoning the
                    # chip maximum as hot.max(axis=1) would.
                    chip_hot = hot[:, 0]
                    for c in range(1, C):
                        col = hot[:, c]
                        chip_hot = np.where(col > chip_hot, col, chip_hot)
                    g = self.bank.step_prefix(m, chip_hot)
                    req = np.broadcast_to(g[:, None], (m, C))
                cur = self.cur[:m]
                accept = np.abs(req - cur) >= self.mta[:m]
                extras = None
                for i in self.dvfs_fault_rows:
                    if i >= m:
                        break
                    row = accept[i]
                    if not row.any():
                        continue
                    inj = self.sims[i]._faults
                    for c in np.nonzero(row)[0].tolist():
                        allow, extra = inj.dvfs_request(
                            t, c, float(req[i, c]), float(cur[i, c])
                        )
                        if not allow:
                            accept[i, c] = False
                            self.frej[i, c] += 1
                        elif extra > 0.0:
                            if extras is None:
                                extras = []
                            extras.append((i, c, extra))
                if accept.any():
                    np.copyto(cur, req, where=accept)
                    self.trans[:m] += accept
                    su = self.su[:m]
                    stall_w = accept
                    if extras is not None:
                        # Stretched PLL re-locks: the scalar adds base
                        # penalty and fault extra in one Python float
                        # add before the stall max — replicate that
                        # exact arithmetic per affected element.
                        stall_w = accept.copy()
                        for i, c, extra in extras:
                            stall_w[i, c] = False
                            su[i, c] = max(float(su[i, c]), t) + (
                                self.penalty + extra
                            )
                    if self.penalty > 0:
                        np.copyto(
                            su,
                            np.maximum(su, t) + self.penalty,
                            where=stall_w,
                        )
                    ri, ci = np.nonzero(accept)
                    vals = cur[ri, ci].tolist()
                    cube = self.cube
                    for r, c, v in zip(ri.tolist(), ci.tolist(), vals):
                        cube[r, c] = v ** 3
                s_eff = cur
                frozen = None
                dyn_mult = self.cube[:m]
            elif stopgo:
                fu = self.fu[:m]
                frozen_pre = t < fu
                tripped = hot >= self.trip_temp[:m]
                newly = ~frozen_pre & tripped
                if newly.any():
                    if self.scope == "distributed":
                        np.copyto(fu, t + self.freeze[:m], where=newly)
                        self.trips[:m] += newly.sum(axis=1)
                    else:
                        chip_trip = newly.any(axis=1)
                        np.copyto(
                            fu,
                            np.maximum(fu, t + self.freeze[:m]),
                            where=chip_trip[:, None],
                        )
                        self.trips[:m] += chip_trip
                active_b = t >= fu
                self.wsteps[:m] += 1
                self.wactive[:m] += active_b
                s_eff = active_b.astype(float)
                frozen = ~active_b
                dyn_mult = s_eff  # s in {0, 1}: s**3 == s bit-exactly
            else:
                s_eff = self.ones_sc[:m]
                frozen = None
                dyn_mult = None  # scale 1: dyn factor is just active/dt

            stalled = np.minimum(np.maximum(self.su[:m] - t, 0.0), dt)
            if frozen is None:
                active = dt - stalled
            else:
                active = np.where(frozen, 0.0, dt - stalled)
            work = s_eff * active
            adv = work / dt
            af = active / dt

            # Trace gathers for the running thread of each (chip, core).
            asg = self.assign[:m]
            rix = self.row_ix[:m]
            tid = self.tid_pid[:m][rix, asg]
            pos_c = self.pos[:m][rix, asg]
            idx = pos_c.astype(np.int64) % self.pool_ns[tid]
            u_pw = self.unit_pool[tid, idx]        # (m, C, U)
            l2v = self.l2_pool[tid, idx]           # (m, C)
            iv = self.instr_pool[tid, idx]

            dyn = af if dyn_mult is None else dyn_mult * af
            scaled = u_pw * dyn[:, :, None]
            l2_act = l2v * s_eff * af
            total_l2 = np.zeros(m)
            for c in range(C):
                total_l2 += l2_act[:, c]

            p = self.pbuf[:m]
            p[:, self.unit_flat] = scaled.reshape(m, -1)
            p[:, self.l2_cols] = self.l2_base[:m] * (
                L2_IDLE_FRACTION + _OM_L2 * l2_act
            )
            p[:, self.xbar_i] = self.xbar_base[:m, 0] * (
                XBAR_IDLE_FRACTION
                + _OM_XBAR * np.minimum(1.0, total_l2 / C)
            )
            leak = self.ref_w[:m] * np.exp(
                self.leak_beta
                * (np.minimum(self.T[:m, :nb], self.leak_cap) - self.leak_tref)
            )
            if dvfs:
                ssq = s_eff ** 2
                lm = self.lmbuf[:m]
                lm[:, self.cui] = ssq[:, :, None]
                leak = leak * lm
            p += leak

            # Progress bookkeeping, scattered per pid (assignments are
            # permutations, so the fancy-index adds never collide).
            instr_mat = iv * adv
            self.c_instr[rix, asg] += instr_mat
            self.c_int[rix, asg] += self.int_pool[tid, idx] * adv
            self.c_fp[rix, asg] += self.fp_pool[tid, idx] * adv
            self.c_cyc[:m] += self.nominal_cycles
            self.c_adj[rix, asg] += self.nominal_cycles * adv
            self.pos[rix, asg] = pos_c + adv

            # Thermal update: one einsum over the whole live batch.
            # apply_batch rows are bitwise equal to scalar apply calls
            # (einsum summation is shape-invariant; see StepOperator),
            # and the axis-max is a selection reduction, exact in any
            # order.
            T = self.T
            nT = op_apply_batch(T[:m], p)
            T[:m] = nT
            mt = nT[:, :nb].max(axis=1)

            self._step_metrics(m, work, stalled, frozen, instr_mat, mt)

            if any_tel:
                for i in range(m):
                    if self.tel_next[i] == step:
                        self._sample_telemetry(
                            i,
                            step,
                            [float(work[i, c]) / dt for c in range(C)],
                        )

            if self.has_migration:
                self.w_sum[:m] += sens
                # Per-channel first-reading latch (fill wherever still
                # NaN), matching the scalar dict path under NaN
                # dropouts; for NaN-free readings it is the same
                # step-0 copy the array path performs (reset leaves
                # w_first all-NaN).
                wf = self.w_first[:m]
                np.copyto(wf, sens, where=np.isnan(wf))
                self.w_last[:m] = sens
                # Chip-min as a NaN-skipping fold: the scalar's Python
                # ``min`` never selects a NaN reading, so mask NaNs to
                # +inf before the (exact, selection) reduction.
                self.w_min[:m] += np.where(
                    np.isnan(sens), np.inf, sens
                ).reshape(m, -1).min(axis=1)
                self.w_steps[:m] += 1
                self.w_dur[:m] += dt

        self._finish()

    def _finish(self) -> None:
        self._finish_metrics()
        self._finish_processes(self.pos)
        for _rows, finj in self.fault_cohorts:
            finj.flush_all()
        for i, sim in enumerate(self.sims):
            su_list = self.su[i].tolist()
            for c in range(self.n_cores):
                sim._stall_until[c] = su_list[c]
            self._sync_throttle_in(i)
            if self.has_migration:
                w = sim._window
                w._sum[...] = self.w_sum[i]
                np.copyto(w._first, self.w_first[i])
                w._last[...] = self.w_last[i]
                w._min_sum = float(self.w_min[i])
                w._steps = int(self.w_steps[i])
                w.duration_s = float(self.w_dur[i])


class _FusedGroup(_GroupBase):
    """Batched version of the engine's fused (unthrottled) fast path."""

    def run(self) -> None:
        dt = self.dt
        C = self.n_cores
        nb = self.n_blocks
        op_batch = self.op.apply_batch
        n = len(self.members)
        n_steps = self.n_steps
        sims = self.sims

        tid = np.empty((n, C), dtype=np.int64)
        base_pos = np.empty((n, C), dtype=np.int64)
        positions = np.zeros((n, C))
        for i, s in enumerate(sims):
            for c in range(C):
                proc = s.scheduler.process_on(c)
                # Unthrottled runs never migrate: core c's process is
                # pid c's process for the whole run.
                tid[i, c] = self.tid_pid[i, proc.pid]
                base_pos[i, c] = int(proc.position)
                positions[i, proc.pid] = proc.position
        ns = self.pool_ns[tid]  # (N, C)

        chunk = 512
        alive = n
        start = 0
        total_steps = n_steps[0]
        any_tel = any(st > 0 for st in self.tel_stride)
        tel_scales = [1.0] * C
        nominal = self.nominal_cycles

        while start < total_steps:
            while alive > 0 and n_steps[alive - 1] <= start:
                alive -= 1
            if alive == 0:
                break
            m = alive
            end = min(start + chunk, n_steps[m - 1])
            k = end - start
            steps = np.arange(start, end)

            idx = (base_pos[:m, :, None] + steps[None, None, :]) % ns[
                :m, :, None
            ]  # (m, C, k)
            tsel = tid[:m, :, None]
            u = self.unit_pool[tsel, idx]      # (m, C, k, U)
            l2g = self.l2_pool[tsel, idx]      # (m, C, k)
            ig = self.instr_pool[tsel, idx]
            rg = self.int_pool[tsel, idx]
            fg = self.fp_pool[tsel, idx]

            dyn = np.empty((m, k, nb))
            total_l2 = np.zeros((m, k))
            for c in range(C):
                dyn[:, :, self.cui[c]] = u[:, c]
                total_l2 += l2g[:, c]
                dyn[:, :, self.l2_cols[c]] = self.l2_base[:m] * (
                    L2_IDLE_FRACTION + _OM_L2 * l2g[:, c]
                )
            dyn[:, :, self.xbar_i] = self.xbar_base[:m] * (
                XBAR_IDLE_FRACTION
                + _OM_XBAR * np.minimum(1.0, total_l2 / C)
            )

            T = self.T
            for j in range(k):
                leak = self.ref_w[:m] * np.exp(
                    self.leak_beta
                    * (
                        np.minimum(T[:m, :nb], self.leak_cap)
                        - self.leak_tref
                    )
                )
                p = dyn[:, j, :] + leak
                nT = op_batch(T[:m], p)
                T[:m] = nT
                # Row max is a selection reduction — exact regardless of
                # reduction order, so the batched axis-max matches the
                # scalar engine's per-chip max bit for bit.
                mtj = nT[:, :nb].max(axis=1)
                # Metrics fold: work dt per core, no stalls, no freezes.
                self.wall[:m] += dt
                tmp = np.zeros(m)
                for c in range(C):
                    self.work_t[:m] += dt
                    self.pci[:m, c] += ig[:, c, j]
                    tmp += ig[:, c, j]
                self.instr_tot[:m] += tmp
                hotter = mtj > self.max_t[:m]
                np.copyto(self.max_t[:m], mtj, where=hotter)
                em = self.emerg[:m]
                em[mtj > self.emerg_thresh[:m]] += dt
                if any_tel:
                    g_step = start + j
                    for i in range(m):
                        if self.tel_next[i] == g_step:
                            self._sample_telemetry(i, g_step, tel_scales)

            # Counter folds: sequential left folds over the chunk,
            # seeded with the running totals (np.add.accumulate is a
            # strict left fold, unlike pairwise np.sum).
            for arr, gathered in (
                (self.c_instr, ig),
                (self.c_int, rg),
                (self.c_fp, fg),
            ):
                seeded = np.concatenate(
                    [arr[:m, :, None], gathered], axis=2
                )
                arr[:m] = np.add.accumulate(seeded, axis=2)[:, :, -1]
            const = np.full((m, C, k), nominal)
            for arr in (self.c_cyc, self.c_adj):
                seeded = np.concatenate([arr[:m, :, None], const], axis=2)
                arr[:m] = np.add.accumulate(seeded, axis=2)[:, :, -1]
            positions[:m] += float(k)

            start = end

        self._finish_metrics()
        self._finish_processes(positions)
