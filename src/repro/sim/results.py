"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.models import FaultSummary
from repro.obs.events import EventLogSummary
from repro.obs.telemetry import TelemetrySummary


@dataclass
class TimeSeries:
    """Optional per-step recording (used by the Figure 5 reproduction).

    Arrays are indexed ``[step]`` (times) or ``[step, core]``; hotspot
    temperatures are kept per monitored unit so the Figure 5(a) pair
    (integer vs. FP register logic on one core) can be plotted directly.
    """

    times: np.ndarray
    scales: np.ndarray                  # (n, n_cores) effective frequency scale
    hotspot_temps: Dict[str, np.ndarray]  # unit -> (n, n_cores)
    assignments: np.ndarray             # (n, n_cores) pid on each core
    migration_times: List[float] = field(default_factory=list)

    def core_series(self, core: int) -> Dict[str, np.ndarray]:
        """All recorded series for one core."""
        out = {"times": self.times, "scale": self.scales[:, core]}
        for unit, arr in self.hotspot_temps.items():
            out[unit] = arr[:, core]
        out["pid"] = self.assignments[:, core]
        return out


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (workload, policy) simulation."""

    policy: str
    workload: str
    benchmarks: Tuple[str, ...]
    duration_s: float
    bips: float
    duty_cycle: float
    instructions: float
    per_core_instructions: Tuple[float, ...]
    max_temp_c: float
    emergency_s: float
    migrations: int
    dvfs_transitions: int
    stopgo_trips: int
    #: Hardware overtemperature trips (0 unless the PROCHOT-style
    #: failsafe is enabled in the configuration).
    prochot_events: int = 0
    series: Optional[TimeSeries] = None
    #: Per-type event counts when the run was executed with a
    #: :class:`~repro.obs.events.RunEventLog` attached; ``None`` (and
    #: absent from every comparison of interest) when observability is
    #: off, keeping uninstrumented results identical to the seed.
    events: Optional[EventLogSummary] = None
    #: Fault-injection and guard accounting when the run carried a
    #: non-empty :class:`~repro.faults.models.FaultPlan` or a
    #: :class:`~repro.faults.guards.GuardConfig`; ``None`` otherwise, so
    #: un-faulted results stay identical to the pre-fault engine's.
    faults: Optional[FaultSummary] = None
    #: Telemetry-capture roll-up when the run carried a
    #: :class:`~repro.obs.telemetry.TelemetrySampler`; ``None`` otherwise.
    #: Like ``events``, this is an attachment, never a metric: sampled
    #: runs report bit-identical numbers to uninstrumented ones.
    telemetry: Optional[TelemetrySummary] = None

    @property
    def had_emergency(self) -> bool:
        """Whether the run ever exceeded the emergency envelope."""
        return self.emergency_s > 0.0

    def relative_to(self, baseline: "RunResult") -> float:
        """Throughput relative to a baseline run of the same workload."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"cannot compare across workloads: {self.workload} vs "
                f"{baseline.workload}"
            )
        if baseline.bips == 0:
            raise ZeroDivisionError("baseline achieved zero throughput")
        return self.bips / baseline.bips

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:12s} {self.policy:40s} "
            f"BIPS={self.bips:6.2f} duty={self.duty_cycle:6.1%} "
            f"maxT={self.max_temp_c:5.1f}C migrations={self.migrations}"
        )
