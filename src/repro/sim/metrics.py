"""Performance metrics (paper Section 3.5).

Two headline metrics:

* **BIPS** — raw instruction throughput of the whole workload, billions of
  instructions per second of wall-clock (silicon) time;
* **adjusted duty cycle** — the ratio of work done to the work that would
  have been done with every core at full frequency and no overheads.
  Contributions are weighted by the dynamic frequency ("if all cores run
  half the time at 30% speed and the other half at 40%, this results in a
  duty cycle of 35%"), and overhead stalls (PLL transitions, migration
  context switches) count as zero work.

The accumulator also tracks thermal-emergency exposure: any step whose
true silicon temperature exceeds the threshold (plus a small tolerance
for the setpoint-overshoot regime the PI controller permits) counts
toward ``emergency_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Temperature above threshold tolerated before counting an emergency.
EMERGENCY_TOLERANCE_C = 0.35


@dataclass
class MetricsAccumulator:
    """Streaming accumulation of run metrics."""

    n_cores: int
    threshold_c: float
    instructions: float = 0.0
    work_time_s: float = 0.0       # sum over cores of frequency-weighted time
    wall_time_s: float = 0.0
    stall_time_s: float = 0.0      # overheads (transitions + migrations)
    frozen_time_s: float = 0.0     # stop-go freezes, summed over cores
    max_temp_c: float = -273.15
    emergency_s: float = 0.0
    per_core_instructions: List[float] = field(default_factory=list)

    def __post_init__(self):
        """Default the per-core tallies and validate the core count."""
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1: {self.n_cores}")
        if not self.per_core_instructions:
            self.per_core_instructions = [0.0] * self.n_cores

    def record_step(
        self,
        dt: float,
        core_work_s: List[float],
        core_stall_s: List[float],
        core_frozen: List[bool],
        core_instructions: List[float],
        max_temp_c: float,
    ) -> None:
        """Fold one engine step into the totals.

        ``core_work_s`` is frequency-weighted useful time per core in this
        step (``scale * active_time``); ``core_stall_s`` is overhead time.
        """
        if len(core_work_s) != self.n_cores:
            raise ValueError("one work entry per core required")
        self.wall_time_s += dt
        for core in range(self.n_cores):
            self.work_time_s += core_work_s[core]
            self.stall_time_s += core_stall_s[core]
            if core_frozen[core]:
                self.frozen_time_s += dt
            self.per_core_instructions[core] += core_instructions[core]
        self.instructions += sum(core_instructions)
        if max_temp_c > self.max_temp_c:
            self.max_temp_c = max_temp_c
        if max_temp_c > self.threshold_c + EMERGENCY_TOLERANCE_C:
            self.emergency_s += dt

    @property
    def bips(self) -> float:
        """Billions of instructions per second of wall time."""
        if self.wall_time_s == 0:
            return 0.0
        return self.instructions / self.wall_time_s / 1e9

    @property
    def duty_cycle(self) -> float:
        """Adjusted duty cycle in [0, 1]."""
        if self.wall_time_s == 0:
            return 0.0
        return self.work_time_s / (self.n_cores * self.wall_time_s)

    @property
    def had_emergency(self) -> bool:
        """Whether the run ever exceeded the emergency envelope."""
        return self.emergency_s > 0.0
