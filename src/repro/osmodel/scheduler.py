"""The scheduler: process-to-core mapping and migration mechanics.

The paper's migration mechanism (Section 6): migrations are decided by an
OS-level policy no more often than every 10 ms; when the OS migrates, the
relevant tracking state is flushed and "each core involved takes a penalty
of 100 us". The scheduler owns the mapping and executes reassignments —
*deciding* them is the job of the migration policies in ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.osmodel.process import Process


@dataclass(frozen=True)
class MigrationRecord:
    """One executed migration round."""

    time_s: float
    moves: Dict[int, int]  # pid -> destination core
    cores_involved: List[int]


class Scheduler:
    """Owns the core-to-process assignment for one workload run.

    The model is one process per core (four-program workloads on four
    cores, as in the paper's experiments); a reassignment is therefore a
    permutation — a swap, or up to a four-way rotation.
    """

    def __init__(self, processes: Sequence[Process], n_cores: int):
        if len(processes) != n_cores:
            raise ValueError(
                f"expected one process per core: {len(processes)} processes, "
                f"{n_cores} cores"
            )
        pids = [p.pid for p in processes]
        if len(set(pids)) != len(pids):
            raise ValueError(f"duplicate pids: {pids}")
        self.n_cores = n_cores
        self._by_pid: Dict[int, Process] = {p.pid: p for p in processes}
        #: core index -> pid currently running there.
        self.assignment: List[int] = [p.pid for p in processes]
        self.migration_history: List[MigrationRecord] = []

    # -- queries ---------------------------------------------------------

    @property
    def processes(self) -> List[Process]:
        """All processes, in pid order."""
        return [self._by_pid[pid] for pid in sorted(self._by_pid)]

    def process_on(self, core: int) -> Process:
        """The process currently assigned to ``core``."""
        return self._by_pid[self.assignment[core]]

    def core_of(self, pid: int) -> int:
        """The core currently running process ``pid``."""
        try:
            return self.assignment.index(pid)
        except ValueError:
            raise KeyError(f"pid {pid} is not scheduled") from None

    def process(self, pid: int) -> Process:
        """Look up a process by pid."""
        try:
            return self._by_pid[pid]
        except KeyError:
            raise KeyError(f"unknown pid {pid}") from None

    # -- migration ---------------------------------------------------------

    def apply_assignment(
        self, new_assignment: Sequence[int], time_s: float
    ) -> Optional[MigrationRecord]:
        """Install a new core->pid mapping; returns the migration record.

        ``new_assignment`` must be a permutation of the current pids.
        Cores whose process does not change are not "involved" and take no
        penalty. Returns ``None`` when nothing actually moves.
        """
        new_assignment = list(new_assignment)
        if sorted(new_assignment) != sorted(self.assignment):
            raise ValueError(
                f"new assignment {new_assignment} is not a permutation of "
                f"{sorted(self.assignment)}"
            )
        involved = [
            core
            for core in range(self.n_cores)
            if new_assignment[core] != self.assignment[core]
        ]
        if not involved:
            return None
        moves = {new_assignment[core]: core for core in involved}
        for pid in moves:
            self._by_pid[pid].migrations += 1
        self.assignment = new_assignment
        record = MigrationRecord(
            time_s=time_s, moves=moves, cores_involved=involved
        )
        self.migration_history.append(record)
        return record

    @property
    def total_migrations(self) -> int:
        """Total process moves executed so far."""
        return sum(len(r.moves) for r in self.migration_history)
