"""Periodic OS timer interrupts.

"Timer interrupts from a typical OS happen on the order of a millisecond
apart" (Section 2.5); the migration machinery is invoked from the timer
path but acts "no more than once every 10 milliseconds" (Section 6). The
:class:`PeriodicTimer` provides both: a tick period and a helper for
rate-limiting actions to a minimum separation.
"""

from __future__ import annotations

#: Default migration-decision period (the Linux-kernel-style 10 ms).
DEFAULT_MIGRATION_PERIOD_S = 10e-3


class PeriodicTimer:
    """Fires at a fixed period against an externally advancing clock.

    The simulation engine advances time in trace-sample steps and polls
    :meth:`fire_due` once per step; the timer guarantees exactly one
    firing per elapsed period regardless of step granularity.
    """

    def __init__(self, period_s: float, start_s: float = 0.0):
        if not period_s > 0:
            raise ValueError(f"period_s must be positive: {period_s}")
        self.period_s = float(period_s)
        self._next_fire_s = start_s + self.period_s

    def fire_due(self, now_s: float) -> bool:
        """True exactly once per period as ``now_s`` sweeps past it."""
        if now_s + 1e-15 >= self._next_fire_s:
            # Skip any fully elapsed periods (coarse caller steps).
            while self._next_fire_s <= now_s + 1e-15:
                self._next_fire_s += self.period_s
            return True
        return False

    @property
    def next_fire_s(self) -> float:
        """Time of the next scheduled firing."""
        return self._next_fire_s

    def reset(self, now_s: float) -> None:
        """Restart the period from ``now_s``."""
        self._next_fire_s = now_s + self.period_s


class RateLimiter:
    """Enforces a minimum separation between actions.

    Used for the migration eligibility rule: "if this happens more often
    than 10 milliseconds, extra requests are simply ignored".
    """

    def __init__(self, min_separation_s: float):
        if not min_separation_s > 0:
            raise ValueError(
                f"min_separation_s must be positive: {min_separation_s}"
            )
        self.min_separation_s = float(min_separation_s)
        self._last_action_s = -float("inf")

    def allow(self, now_s: float) -> bool:
        """Whether an action at ``now_s`` is permitted (does not record it)."""
        return now_s - self._last_action_s + 1e-15 >= self.min_separation_s

    def record(self, now_s: float) -> None:
        """Record that an action happened at ``now_s``."""
        self._last_action_s = now_s

    def try_acquire(self, now_s: float) -> bool:
        """Atomically check and record."""
        if self.allow(now_s):
            self.record(now_s)
            return True
        return False
