"""Processes: schedulable entities bound to benchmark power traces.

A process replays its benchmark's power trace. Progress is measured in
*trace position* — fractional full-speed samples — which advances at the
current frequency scale: a core at 50% frequency moves through its trace
half as fast (and the engine pro-rates instruction counts accordingly).
The trace is circular, mirroring the paper's restart-on-completion rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.counters import PerformanceCounters
from repro.uarch.trace import PowerTrace


@dataclass
class Process:
    """One runnable program.

    Attributes
    ----------
    pid:
        Small integer id, unique within a workload.
    benchmark:
        Benchmark name (matches the trace).
    trace:
        The power trace this process replays.
    position:
        Current fractional position in full-speed samples.
    counters:
        Performance counters attributed to this process, accumulated
        across whichever cores it runs on.
    migrations:
        How many times this process has been migrated.
    """

    pid: int
    benchmark: str
    trace: PowerTrace
    position: float = 0.0
    counters: PerformanceCounters = field(default_factory=PerformanceCounters)
    migrations: int = 0

    def __post_init__(self):
        if self.pid < 0:
            raise ValueError(f"pid must be >= 0: {self.pid}")
        if self.benchmark != self.trace.benchmark:
            raise ValueError(
                f"benchmark {self.benchmark!r} does not match trace "
                f"{self.trace.benchmark!r}"
            )

    def advance(self, sample_fraction: float) -> None:
        """Move forward by ``sample_fraction`` full-speed samples."""
        if sample_fraction < 0:
            raise ValueError(f"cannot advance backwards: {sample_fraction}")
        self.position += sample_fraction

    @property
    def completed_passes(self) -> int:
        """How many full passes through the trace have completed."""
        return int(self.position) // self.trace.n_samples

    def __repr__(self) -> str:
        return (
            f"Process(pid={self.pid}, benchmark={self.benchmark!r}, "
            f"position={self.position:.1f})"
        )
