"""Operating-system substrate.

The paper's migration policies live in the OS: timer interrupts arrive
every ~10 ms, the OS tracks per-thread performance counters and thermal
profiles, and migrations are executed by the scheduler at a 100 us cost
per involved core. This package models exactly that layer:

* :mod:`repro.osmodel.process` — runnable processes bound to power traces;
* :mod:`repro.osmodel.scheduler` — the process-to-core mapping and
  migration mechanics;
* :mod:`repro.osmodel.timer` — periodic timer interrupts;
* :mod:`repro.osmodel.thermal_table` — the OS-managed thread-core thermal
  trend table of Figure 6 (sensor-based migration).
"""

from repro.osmodel.process import Process
from repro.osmodel.scheduler import MigrationRecord, Scheduler
from repro.osmodel.thermal_table import ThreadCoreThermalTable
from repro.osmodel.timer import PeriodicTimer

__all__ = [
    "MigrationRecord",
    "PeriodicTimer",
    "Process",
    "Scheduler",
    "ThreadCoreThermalTable",
]
