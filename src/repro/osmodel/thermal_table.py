"""The OS-managed thread-core thermal trend table (paper Figure 6).

Sensor-based migration cannot read a thread's heat intensity directly: a
thread "will appear to have different temperature gradients when running
on different cores due to different external factors, such as being
located closer to the edge of the chip", and any DVFS scaling in effect
time-dilates the observed trends. The OS therefore maintains a grid of
observed, *normalised* thermal trends per (thread, core, hotspot unit):

* raw trends (deg C per second) are recorded from PI-controller feedback;
* each observation is divided by the cube of the average frequency scale
  over the observation window (the paper's cubic power relation), mapping
  it back to a full-speed-equivalent intensity;
* unobserved (thread, core) combinations are estimated additively from
  the thread's mean intensity and the core's mean bias, once enough
  profiling data exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Minimum frequency scale used when normalising (guards the division).
_MIN_SCALE = 0.05


@dataclass
class _CellStats:
    """Running mean of normalised observations for one table cell."""

    total: float = 0.0
    count: int = 0

    def add(self, value: float) -> None:
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class ThreadCoreThermalTable:
    """Grid of estimated hotspot intensities per thread-core pair.

    Keys are ``(pid, core, unit)`` where ``unit`` is a hotspot unit name
    (``"intreg"`` or ``"fpreg"`` in the paper's configuration).
    """

    def __init__(self, n_cores: int, units: Sequence[str]):
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1: {n_cores}")
        if not units:
            raise ValueError("at least one hotspot unit is required")
        self.n_cores = n_cores
        self.units = tuple(units)
        self._cells: Dict[Tuple[int, int, str], _CellStats] = {}
        self._threads_seen: set = set()

    # -- recording -------------------------------------------------------

    def record(
        self,
        pid: int,
        core: int,
        unit: str,
        observation: float,
        avg_scale: float,
        exponent: float = 3.0,
    ) -> None:
        """Record one observed thermal-intensity sample.

        ``observation`` is the raw thermal signal observed while ``pid``
        ran on ``core`` (the engine uses the hotspot's elevation over the
        chip's coolest sensor plus a gradient term); ``avg_scale`` is the
        mean effective scale over the window — the PI-controller output
        average under DVFS, the duty fraction under stop-go. Observations
        are normalised by ``avg_scale ** exponent``: the paper's cubic
        power relation for DVFS (``exponent=3``), linear for stop-go duty
        (``exponent=1``, since average power scales directly with duty).
        """
        if unit not in self.units:
            raise KeyError(f"unknown hotspot unit {unit!r}; table has {self.units}")
        if not 0 <= core < self.n_cores:
            raise IndexError(f"core {core} out of range")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0: {exponent}")
        scale = max(_MIN_SCALE, min(1.0, avg_scale))
        normalised = observation / scale ** exponent
        self._cells.setdefault((pid, core, unit), _CellStats()).add(normalised)
        self._threads_seen.add(pid)

    # -- sufficiency (Figure 6 decision diamond) -----------------------------

    def observed_cores_of(self, pid: int) -> List[int]:
        """Cores on which ``pid`` has at least one observation."""
        return sorted(
            {c for (p, c, _u), s in self._cells.items() if p == pid and s.count}
        )

    def observed_threads_on(self, core: int) -> List[int]:
        """Threads that have at least one observation on ``core``."""
        return sorted(
            {p for (p, c, _u), s in self._cells.items() if c == core and s.count}
        )

    def is_sufficient(self, pids: Sequence[int]) -> bool:
        """Whether all thread-core trends can be estimated.

        The paper's criterion: "each core needs to be run and dynamically
        tested with at least two threads, and each thread needs to have
        recorded sensor data from running on at least one core."
        """
        for core in range(self.n_cores):
            if len(self.observed_threads_on(core)) < 2:
                return False
        for pid in pids:
            if not self.observed_cores_of(pid):
                return False
        return True

    def profiling_candidates(self, pids: Sequence[int]) -> List[Tuple[int, int]]:
        """All ``(pid, core)`` pairings that would fill table gaps.

        Used to "set migration targets to profile more to fill thermal
        table": pairs are ordered by how much they help — cores with the
        fewest distinct observed threads first, and within a core, threads
        with the fewest observations anywhere first.
        """
        out: List[Tuple[int, int]] = []
        cores_by_need = sorted(
            range(self.n_cores), key=lambda c: len(self.observed_threads_on(c))
        )
        for core in cores_by_need:
            seen_here = set(self.observed_threads_on(core))
            candidates = [p for p in pids if p not in seen_here]
            candidates.sort(key=lambda p: len(self.observed_cores_of(p)))
            out.extend((p, core) for p in candidates)
        return out

    def most_needed_profiling(self, pids: Sequence[int]) -> Optional[Tuple[int, int]]:
        """The single best profiling pairing (first candidate), if any."""
        candidates = self.profiling_candidates(pids)
        return candidates[0] if candidates else None

    # -- estimation -----------------------------------------------------------

    def _thread_mean(self, pid: int, unit: str) -> Optional[float]:
        values = [
            s.mean
            for (p, _c, u), s in self._cells.items()
            if p == pid and u == unit and s.count
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def _core_bias(self, core: int, unit: str) -> float:
        """Mean deviation of observations on ``core`` from thread means."""
        deviations = []
        for (p, c, u), s in self._cells.items():
            if c != core or u != unit or not s.count:
                continue
            t_mean = self._thread_mean(p, u)
            if t_mean is not None:
                deviations.append(s.mean - t_mean)
        if not deviations:
            return 0.0
        return sum(deviations) / len(deviations)

    def estimate(self, pid: int, core: int, unit: str) -> Optional[float]:
        """Estimated full-speed intensity of ``pid``'s ``unit`` on ``core``.

        Direct observations win; otherwise the additive model
        ``thread_mean + core_bias`` is used. Returns ``None`` when the
        thread has never been observed anywhere.
        """
        if unit not in self.units:
            raise KeyError(f"unknown hotspot unit {unit!r}")
        cell = self._cells.get((pid, core, unit))
        if cell is not None and cell.count:
            return cell.mean
        t_mean = self._thread_mean(pid, unit)
        if t_mean is None:
            return None
        return t_mean + self._core_bias(core, unit)

    def n_observations(self) -> int:
        """Total recorded observations (for tests/diagnostics)."""
        return sum(s.count for s in self._cells.values())
