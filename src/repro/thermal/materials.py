"""Material thermal properties used by the RC-network builder.

Values are the standard ones HotSpot 2.0 ships with (silicon and copper
bulk properties, a representative thermal-interface paste), expressed in
SI units: conductivity in W/(m*K) and volumetric heat capacity in
J/(m^3*K).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Material:
    """Thermal conductivity and volumetric heat capacity of a material."""

    name: str
    conductivity: float  # W / (m K)
    volumetric_heat_capacity: float  # J / (m^3 K)

    def __post_init__(self):
        """Reject non-physical (non-positive) material constants."""
        if not self.conductivity > 0:
            raise ValueError(f"conductivity must be positive: {self.conductivity}")
        if not self.volumetric_heat_capacity > 0:
            raise ValueError(
                f"volumetric heat capacity must be positive: "
                f"{self.volumetric_heat_capacity}"
            )


#: Bulk silicon near operating temperature.
SILICON = Material("silicon", conductivity=100.0, volumetric_heat_capacity=1.75e6)

#: Copper (heat spreader and heatsink base).
COPPER = Material("copper", conductivity=400.0, volumetric_heat_capacity=3.55e6)

#: Thermal interface material between die and spreader.
INTERFACE = Material("tim", conductivity=4.0, volumetric_heat_capacity=4.0e6)
