"""Leakage-temperature coupling helpers.

Leakage power depends on temperature, and temperature depends on total
power — the circular dependency the paper's Figure 2 draws between its
"dynamic leakage" box and HotSpot. During transients the engine breaks
the loop with a one-step lag; for *steady states* (warm starts, Table 1
initialisation, standalone analyses) the fixed point must be solved
explicitly. This module centralises that solve.

The iteration ``T -> steady_state(P_dyn + P_leak(T))`` is a contraction
for physical parameter ranges (the loop gain ``dP_leak/dT * R_thermal``
is well below 1), so plain fixed-point iteration converges in a handful
of rounds; :func:`coupled_steady_state` iterates to an explicit tolerance
instead of a hard-coded round count and reports divergence.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.thermal.leakage import LeakageModel
from repro.thermal.model import ThermalModel

#: Default convergence tolerance (deg C, max-norm over nodes).
DEFAULT_TOLERANCE_C = 1e-6

#: Iteration cap; physical configurations converge in < 10 rounds.
DEFAULT_MAX_ITERATIONS = 50


class LeakageCouplingError(RuntimeError):
    """The leakage fixed point failed to converge.

    Physically this is thermal runaway: the leakage-temperature loop gain
    exceeds one, so no steady state exists below meltdown. Reachable only
    with pathological parameters (enormous leakage or thermal resistance).
    """


def coupled_steady_state(
    model: ThermalModel,
    leakage: LeakageModel,
    dynamic_power_w: np.ndarray,
    tolerance_c: float = DEFAULT_TOLERANCE_C,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[np.ndarray, int]:
    """Steady-state temperatures with self-consistent leakage.

    Args:
        model: The thermal network.
        leakage: Its leakage model (same floorplan).
        dynamic_power_w: Per-block dynamic power (W).
        tolerance_c: Convergence threshold on the max temperature change
            per round.
        max_iterations: Safety cap; exceeding it raises
            :class:`LeakageCouplingError`.

    Returns:
        ``(temperatures, iterations)`` — the full node-temperature
        vector and the rounds needed.
    """
    p_dyn = np.asarray(dynamic_power_w, dtype=float)
    n_blocks = model.network.n_blocks
    if p_dyn.shape != (n_blocks,):
        raise ValueError(
            f"expected {n_blocks} block powers, got shape {p_dyn.shape}"
        )
    if not tolerance_c > 0:
        raise ValueError(f"tolerance_c must be positive: {tolerance_c}")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1: {max_iterations}")

    temps = model.steady_state(p_dyn)
    for iteration in range(1, max_iterations + 1):
        total = p_dyn + leakage.power(temps[:n_blocks])
        if not np.isfinite(total).all():
            raise LeakageCouplingError(
                "leakage power overflowed during the fixed-point solve — "
                "thermal runaway (loop gain above 1)"
            )
        new_temps = model.steady_state(total)
        delta = float(np.max(np.abs(new_temps - temps)))
        temps = new_temps
        if delta <= tolerance_c:
            return temps, iteration
    raise LeakageCouplingError(
        f"leakage fixed point did not converge within {max_iterations} "
        f"iterations (last delta {delta:.3g} C) — thermal runaway?"
    )


def initialize_coupled_steady(
    model: ThermalModel,
    leakage: LeakageModel,
    dynamic_power_w: np.ndarray,
    tolerance_c: float = DEFAULT_TOLERANCE_C,
) -> np.ndarray:
    """Set ``model``'s state to the coupled steady point; returns temps."""
    temps, _ = coupled_steady_state(model, leakage, dynamic_power_w, tolerance_c)
    model.set_temperatures(temps)
    return temps


def loop_gain_estimate(
    model: ThermalModel,
    leakage: LeakageModel,
    temperatures_c: Optional[np.ndarray] = None,
) -> float:
    """Upper-bound estimate of the leakage-temperature loop gain.

    ``gain = max_block(dP_leak/dT) * R_thermal_total`` evaluated at the
    given (or current) temperatures. Values well below 1 guarantee the
    fixed point converges; near or above 1 signals thermal-runaway risk.
    """
    n_blocks = model.network.n_blocks
    temps = (
        model.temperatures[:n_blocks]
        if temperatures_c is None
        else np.asarray(temperatures_c, dtype=float)[:n_blocks]
    )
    # dP/dT of the exponential model, summed over the chip.
    dp_dt = float((leakage.beta * leakage.power(temps)).sum())
    # Worst-case thermal resistance: hottest block response to 1 W chip-wide
    # uniform heating is bounded by the external path, estimated from the
    # ambient tie plus the spreader path.
    g_amb = model.network.ambient_conductance
    r_total = 1.0 / g_amb
    return dp_dt * r_total
