"""Transient and steady-state thermal solver.

The network ODE ``C dT/dt = -G T + u`` is linear and time-invariant, so
for a fixed step ``dt`` with power held constant across the step (exactly
our situation: power traces are piecewise constant at the sample period)
the update

    T[k+1] = T_ss(u) + A_d (T[k] - T_ss(u)),   A_d = expm(-C^-1 G dt)

is *exact*, unconditionally stable, and — rewritten in the affine form

    T[k+1] = A_d T[k] + B_d p[k] + c_amb

with ``B_d = (I - A_d) G^-1`` restricted to the power-injecting block
columns and ``c_amb`` the folded ambient boundary term — costs exactly
two dense mat-vecs and one vector add per step after a one-time ``expm``
and matrix solve. ``T_ss(u) = G^-1 u`` is the steady state under input
``u``. See ``docs/PERFORMANCE.md`` for the full derivation.

The matrix side of that machinery (network assembly, LU factorization,
propagator cache) is stateless with respect to any particular chip's
temperature trajectory, so it lives in :class:`ThermalKernel` and can be
shared by any number of :class:`ThermalModel` instances over the same
floorplan and package — the fleet engine stacks hundreds of chips on one
kernel and pays for ``expm`` exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
from scipy.linalg import expm, lu_factor, lu_solve

from repro.thermal.floorplan import Floorplan
from repro.thermal.package import ThermalPackage
from repro.thermal.rc_network import RCNetwork, build_rc_network


class StepOperator:
    """Precomputed affine propagator for one step size.

    Applies the exact exponential-integrator update
    ``T' = a_d @ T + b_d @ p + c_amb`` where ``p`` is the block power
    vector. Instances are immutable and cached per ``dt`` by
    :meth:`ThermalKernel.operator_for`; the engine's fused and stepwise
    paths both advance temperatures exclusively through :meth:`apply`,
    which is what makes their trajectories bit-identical.

    Both :meth:`apply` and the vectorised :meth:`apply_batch` evaluate
    the mat-vecs with ``np.einsum`` rather than BLAS ``@``: einsum's
    sum-of-products loop is shape-invariant, so row ``i`` of a batched
    ``(m, n)`` application is **bitwise equal** to a scalar application
    of row ``i`` for every batch size ``m`` — the contract the fleet
    engine's batch-equals-scalar guarantee rests on. BLAS gemm/gemv
    pick different blocking per shape and break that equality at the
    last ulp (~1e-13 here), which is why ``@`` is not used even though
    a lone gemv is ~2x faster than a lone einsum.

    Attributes:
        dt: Step size (seconds) this operator integrates over.
        a_d: Homogeneous propagator ``expm(-C^-1 G dt)``, ``(n, n)``.
        b_d: Input map ``(I - a_d) G^-1`` restricted to block columns,
            ``(n, n_blocks)``.
        c_amb: Folded constant ambient-boundary contribution, ``(n,)``.
    """

    __slots__ = ("dt", "a_d", "b_d", "c_amb")

    def __init__(self, dt: float, a_d: np.ndarray, b_d: np.ndarray, c_amb: np.ndarray):
        """Wrap precomputed matrices; see :meth:`ThermalKernel.operator_for`."""
        self.dt = float(dt)
        self.a_d = a_d
        self.b_d = b_d
        self.c_amb = c_amb

    def apply(self, temperatures: np.ndarray, block_power_w: np.ndarray) -> np.ndarray:
        """One exact ``dt`` step; returns the new node-temperature vector.

        Args:
            temperatures: Current node temperatures, shape ``(n_nodes,)``.
            block_power_w: Power held constant over the step, shape
                ``(n_blocks,)``. Not validated — hot-path callers own
                their buffers; go through :meth:`ThermalModel.step` for a
                validated entry point.

        Returns:
            A freshly allocated ``(n_nodes,)`` array (inputs untouched).
        """
        return (
            np.einsum("ij,j->i", self.a_d, temperatures)
            + np.einsum("ij,j->i", self.b_d, block_power_w)
            + self.c_amb
        )

    def apply_batch(
        self, temperatures: np.ndarray, block_power_w: np.ndarray
    ) -> np.ndarray:
        """One exact ``dt`` step for a whole batch of independent chips.

        Args:
            temperatures: ``(m, n_nodes)`` C-contiguous stack, one row
                per chip.
            block_power_w: ``(m, n_blocks)`` power rows, constant over
                the step.

        Returns:
            ``(m, n_nodes)`` array whose row ``i`` is bitwise equal to
            ``apply(temperatures[i], block_power_w[i])`` — einsum's
            summation order per output element does not depend on the
            batch size (see class docstring), so batched stepping is
            exact, not merely close.
        """
        return (
            np.einsum("ij,mj->mi", self.a_d, temperatures)
            + np.einsum("ij,mj->mi", self.b_d, block_power_w)
            + self.c_amb
        )


def _dt_key(dt: float) -> str:
    """Exact cache key for a step size.

    Keyed on the float's bit pattern (``float.hex``) so near-equal but
    distinct ``dt`` values can never alias to one propagator — the old
    ``round(dt, 15)`` key collapsed any two steps within 5e-16 of each
    other onto whichever was computed first.
    """
    return float(dt).hex()


class ThermalKernel:
    """Shared, temperature-free thermal machinery for one floorplan/package.

    Owns the RC network, its LU factorization and the per-``dt``
    propagator cache. A kernel carries no transient state, so one
    instance can back any number of :class:`ThermalModel` chips — every
    model handed the same kernel reuses the same :class:`StepOperator`
    objects (one ``expm`` per distinct step size, ever) and therefore
    steps through literally the same matrices.
    """

    def __init__(self, floorplan: Floorplan, package: ThermalPackage):
        """Build and factor the network; propagators are built lazily."""
        self.floorplan = floorplan
        self.package = package
        self.network: RCNetwork = build_rc_network(floorplan, package)
        self._g_lu = lu_factor(self.network.conductance)
        self._c_inv = 1.0 / self.network.capacitance
        self._propagators: Dict[str, StepOperator] = {}

    def operator_for(self, dt: float) -> StepOperator:
        """The cached affine :class:`StepOperator` for a step size.

        Builds ``a_d = expm(-C^-1 G dt)``, the input map
        ``b_d = (I - a_d) G^-1`` (block columns only — spreader and sink
        inject no power), and the constant ambient term
        ``c_amb = (I - a_d) G^-1 e_sink g_amb T_amb`` on first use.
        """
        if not dt > 0:
            raise ValueError(f"dt must be positive, got {dt}")
        key = _dt_key(dt)
        cached = self._propagators.get(key)
        if cached is None:
            dt = float(dt)
            n = self.network.n_nodes
            a_d = expm(-(self._c_inv[:, None] * self.network.conductance) * dt)
            # (I - A) G^-1, one column solve per node, reusing the LU
            # factorization steady_state already carries.
            g_inv = lu_solve(self._g_lu, np.eye(n))
            input_map = (np.eye(n) - a_d) @ g_inv
            c_amb = input_map[:, -1] * (
                self.network.ambient_conductance * self.network.ambient_c
            )
            cached = StepOperator(
                dt, a_d, input_map[:, : self.network.n_blocks].copy(), c_amb
            )
            self._propagators[key] = cached
        return cached

    def cached_dt_keys(self) -> List[str]:
        """Bit-pattern keys of every propagator built so far (test hook)."""
        return list(self._propagators)

    def steady_state(self, block_power_w: Sequence[float]) -> np.ndarray:
        """Steady-state node temperatures under constant block powers."""
        u = self.network.input_vector(np.asarray(block_power_w, dtype=float))
        return lu_solve(self._g_lu, u)


class ThermalModel:
    """Stateful thermal simulator over a floorplan + package.

    Args:
        floorplan: Geometry; the RC network is built internally.
        package: The vertical materials stack and cooling solution.
        dt: Default transient step (seconds). Steps of other sizes are
            supported but recompute the propagator (cached per exact
            size).
        kernel: Optional pre-built :class:`ThermalKernel` to share. Must
            have been built from the same floorplan and package objects;
            when omitted, a private kernel is constructed. Sharing a
            kernel shares only matrices — the temperature state is always
            per-model.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        package: ThermalPackage,
        dt: float,
        kernel: Optional[ThermalKernel] = None,
    ):
        """Attach (or build) the kernel and start at the ambient state."""
        if not dt > 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if kernel is None:
            kernel = ThermalKernel(floorplan, package)
        elif kernel.floorplan is not floorplan or kernel.package is not package:
            raise ValueError(
                "kernel was built for a different floorplan/package; "
                "share kernels only between models of the same chip"
            )
        self.floorplan = floorplan
        self.package = package
        self.dt = float(dt)
        self.kernel = kernel
        self.network: RCNetwork = kernel.network
        self._g_lu = kernel._g_lu
        self._c_inv = kernel._c_inv
        self.operator_for(self.dt)
        #: Current node temperatures (deg C), initialized to ambient.
        self.temperatures = np.full(
            self.network.n_nodes, self.network.ambient_c, dtype=float
        )

    # -- propagator management ---------------------------------------------

    @property
    def _propagators(self) -> Dict[str, StepOperator]:
        """The kernel's propagator cache (shared when the kernel is)."""
        return self.kernel._propagators

    def operator_for(self, dt: float) -> StepOperator:
        """The cached affine :class:`StepOperator` for a step size.

        Delegates to the (possibly shared) kernel's per-``dt`` cache.
        """
        return self.kernel.operator_for(dt)

    def _propagator_for(self, dt: float) -> np.ndarray:
        """The homogeneous propagator matrix ``A_d`` for ``dt`` (cached)."""
        return self.operator_for(dt).a_d

    def _checked_power(self, block_power_w: Sequence[float]) -> np.ndarray:
        """Validate and coerce a block power vector."""
        p = np.asarray(block_power_w, dtype=float)
        if p.shape != (self.network.n_blocks,):
            raise ValueError(
                f"expected {self.network.n_blocks} block powers, got {p.shape}"
            )
        return p

    # -- solvers -------------------------------------------------------------

    def steady_state(self, block_power_w: Sequence[float]) -> np.ndarray:
        """Steady-state node temperatures under constant block powers."""
        return self.kernel.steady_state(block_power_w)

    def step(self, block_power_w: Sequence[float], dt: Optional[float] = None) -> np.ndarray:
        """Advance the transient state by one step of ``dt`` seconds.

        ``block_power_w`` is held constant over the step. Returns (a copy
        of) the new node temperatures.
        """
        op = self.operator_for(self.dt if dt is None else float(dt))
        p = self._checked_power(block_power_w)
        self.temperatures = op.apply(self.temperatures, p)
        return self.temperatures.copy()

    def step_n(
        self,
        block_power_w: Sequence[float],
        n: int,
        dt: Optional[float] = None,
    ) -> np.ndarray:
        """Advance ``n`` steps of ``dt`` with power held constant throughout.

        The fused propagation applies the identical per-step affine update
        ``n`` times, so the result is bit-identical to calling
        :meth:`step` ``n`` times with the same arguments — it just skips
        ``n - 1`` rounds of validation and state copy-out. Returns (a copy
        of) the final node temperatures.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        op = self.operator_for(self.dt if dt is None else float(dt))
        p = self._checked_power(block_power_w)
        temps = self.temperatures
        for _ in range(n):
            temps = op.apply(temps, p)
        self.temperatures = temps
        return temps.copy()

    def run(
        self,
        power_schedule: Iterable[Sequence[float]],
        dt: Optional[float] = None,
    ) -> np.ndarray:
        """Step through a sequence of power vectors; return the trajectory.

        The result has shape ``(n_steps, n_nodes)`` — the temperature
        *after* each step.
        """
        rows: List[np.ndarray] = [
            self.step(p, dt) for p in power_schedule
        ]
        return np.array(rows)

    # -- state management ------------------------------------------------------

    def set_temperatures(self, temperatures: Sequence[float]) -> None:
        """Overwrite the full node-temperature state."""
        temps = np.asarray(temperatures, dtype=float)
        if temps.shape != (self.network.n_nodes,):
            raise ValueError(
                f"expected {self.network.n_nodes} temperatures, got {temps.shape}"
            )
        self.temperatures = temps.copy()

    def initialize_steady(self, block_power_w: Sequence[float]) -> np.ndarray:
        """Set the state to the steady point of ``block_power_w``.

        Experiments start from a warmed-up chip rather than a cold one, as
        on real hardware (the paper waits for the machine to reach a stable
        idle temperature before each measurement).
        """
        self.temperatures = self.steady_state(block_power_w)
        return self.temperatures.copy()

    # -- queries ------------------------------------------------------------------

    def temperature_of(self, name: str) -> float:
        """Current temperature of a named node."""
        return float(self.temperatures[self.network.index(name)])

    def block_temperatures(self) -> np.ndarray:
        """Temperatures of the silicon blocks only, floorplan order."""
        return self.temperatures[: self.network.n_blocks].copy()

    def hottest_block(self) -> str:
        """Name of the hottest silicon block right now."""
        idx = int(np.argmax(self.temperatures[: self.network.n_blocks]))
        return self.network.node_names[idx]

    def max_block_temperature(self) -> float:
        """Temperature of the hottest silicon block."""
        return float(self.temperatures[: self.network.n_blocks].max())

    def time_constants(self) -> np.ndarray:
        """Open-network time constants (s): ``1 / eigvals(C^-1 G)``, sorted.

        Useful for sanity-checking that block-level constants sit in the
        millisecond range the paper relies on.
        """
        eigvals = np.linalg.eigvals(self._c_inv[:, None] * self.network.conductance)
        eigvals = np.real(eigvals)
        eigvals = eigvals[eigvals > 0]
        return np.sort(1.0 / eigvals)
