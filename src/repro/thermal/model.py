"""Transient and steady-state thermal solver.

The network ODE ``C dT/dt = -G T + u`` is linear and time-invariant, so
for a fixed step ``dt`` with power held constant across the step (exactly
our situation: power traces are piecewise constant at the sample period)
the update

    T[k+1] = T_ss(u) + A_d (T[k] - T_ss(u)),   A_d = expm(-C^-1 G dt)

is *exact*, unconditionally stable, and costs two dense mat-vecs per step
after a one-time ``expm``. ``T_ss(u) = G^-1 u`` is the steady state under
input ``u``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
from scipy.linalg import expm, lu_factor, lu_solve

from repro.thermal.floorplan import Floorplan
from repro.thermal.package import ThermalPackage
from repro.thermal.rc_network import RCNetwork, build_rc_network


class ThermalModel:
    """Stateful thermal simulator over a floorplan + package.

    Parameters
    ----------
    floorplan, package:
        Geometry and vertical stack; the RC network is built internally.
    dt:
        Default transient step (seconds). Steps of other sizes are
        supported but recompute the propagator (cached per size).
    """

    def __init__(
        self,
        floorplan: Floorplan,
        package: ThermalPackage,
        dt: float,
    ):
        if not dt > 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.floorplan = floorplan
        self.package = package
        self.dt = float(dt)
        self.network: RCNetwork = build_rc_network(floorplan, package)
        self._g_lu = lu_factor(self.network.conductance)
        self._c_inv = 1.0 / self.network.capacitance
        self._propagators: Dict[float, np.ndarray] = {}
        self._propagator_for(self.dt)
        #: Current node temperatures (deg C), initialized to ambient.
        self.temperatures = np.full(
            self.network.n_nodes, self.network.ambient_c, dtype=float
        )

    # -- propagator management ---------------------------------------------

    def _propagator_for(self, dt: float) -> np.ndarray:
        key = round(float(dt), 15)
        cached = self._propagators.get(key)
        if cached is None:
            a = -(self._c_inv[:, None] * self.network.conductance) * dt
            cached = expm(a)
            self._propagators[key] = cached
        return cached

    # -- solvers -------------------------------------------------------------

    def steady_state(self, block_power_w: Sequence[float]) -> np.ndarray:
        """Steady-state node temperatures under constant block powers."""
        u = self.network.input_vector(np.asarray(block_power_w, dtype=float))
        return lu_solve(self._g_lu, u)

    def step(self, block_power_w: Sequence[float], dt: Optional[float] = None) -> np.ndarray:
        """Advance the transient state by one step of ``dt`` seconds.

        ``block_power_w`` is held constant over the step. Returns (a copy
        of) the new node temperatures.
        """
        dt = self.dt if dt is None else float(dt)
        a_d = self._propagator_for(dt)
        t_ss = self.steady_state(block_power_w)
        self.temperatures = t_ss + a_d @ (self.temperatures - t_ss)
        return self.temperatures.copy()

    def run(
        self,
        power_schedule: Iterable[Sequence[float]],
        dt: Optional[float] = None,
    ) -> np.ndarray:
        """Step through a sequence of power vectors; return the trajectory.

        The result has shape ``(n_steps, n_nodes)`` — the temperature
        *after* each step.
        """
        rows: List[np.ndarray] = [
            self.step(p, dt) for p in power_schedule
        ]
        return np.array(rows)

    # -- state management ------------------------------------------------------

    def set_temperatures(self, temperatures: Sequence[float]) -> None:
        """Overwrite the full node-temperature state."""
        temps = np.asarray(temperatures, dtype=float)
        if temps.shape != (self.network.n_nodes,):
            raise ValueError(
                f"expected {self.network.n_nodes} temperatures, got {temps.shape}"
            )
        self.temperatures = temps.copy()

    def initialize_steady(self, block_power_w: Sequence[float]) -> np.ndarray:
        """Set the state to the steady point of ``block_power_w``.

        Experiments start from a warmed-up chip rather than a cold one, as
        on real hardware (the paper waits for the machine to reach a stable
        idle temperature before each measurement).
        """
        self.temperatures = self.steady_state(block_power_w)
        return self.temperatures.copy()

    # -- queries ------------------------------------------------------------------

    def temperature_of(self, name: str) -> float:
        """Current temperature of a named node."""
        return float(self.temperatures[self.network.index(name)])

    def block_temperatures(self) -> np.ndarray:
        """Temperatures of the silicon blocks only, floorplan order."""
        return self.temperatures[: self.network.n_blocks].copy()

    def hottest_block(self) -> str:
        """Name of the hottest silicon block right now."""
        idx = int(np.argmax(self.temperatures[: self.network.n_blocks]))
        return self.network.node_names[idx]

    def max_block_temperature(self) -> float:
        """Temperature of the hottest silicon block."""
        return float(self.temperatures[: self.network.n_blocks].max())

    def time_constants(self) -> np.ndarray:
        """Open-network time constants (s): ``1 / eigvals(C^-1 G)``, sorted.

        Useful for sanity-checking that block-level constants sit in the
        millisecond range the paper relies on.
        """
        eigvals = np.linalg.eigvals(self._c_inv[:, None] * self.network.conductance)
        eigvals = np.real(eigvals)
        eigvals = eigvals[eigvals > 0]
        return np.sort(1.0 / eigvals)
