"""HotSpot-equivalent compact thermal model.

Temperature is computed by the thermal-electrical duality HotSpot uses:
every floorplan block is an RC node, lateral resistances couple adjacent
silicon blocks, and a vertical path (bulk silicon -> thermal interface
material -> heat spreader -> heatsink -> convection) carries heat to the
ambient. The resulting linear ODE ``C dT/dt = -G T + u`` is advanced with
a precomputed exponential integrator, which is exact for the
piecewise-constant power inputs our trace-driven simulation produces and
unconditionally stable at any step size.

Public surface:

* :class:`repro.thermal.floorplan.Floorplan` / ``Block`` — geometry;
* :func:`repro.thermal.layouts.build_cmp_floorplan` — the 4-core chip;
* :class:`repro.thermal.package.ThermalPackage` — TIM/spreader/sink;
* :class:`repro.thermal.model.ThermalModel` — transient + steady solver;
* :class:`repro.thermal.leakage.LeakageModel` — temperature-dependent
  leakage power;
* :class:`repro.thermal.sensors.SensorBank` — quantized, noisy sensors.
"""

from repro.thermal.coupling import (
    LeakageCouplingError,
    coupled_steady_state,
    initialize_coupled_steady,
)
from repro.thermal.floorplan import Block, Floorplan
from repro.thermal.grid_model import GridThermalModel
from repro.thermal.layouts import (
    build_cmp_floorplan,
    build_core_floorplan,
    build_mobile_floorplan,
    core_block_name,
)
from repro.thermal.leakage import LeakageModel
from repro.thermal.model import ThermalModel
from repro.thermal.package import ThermalPackage
from repro.thermal.rc_network import RCNetwork
from repro.thermal.sensors import SensorBank, ThermalSensor

__all__ = [
    "Block",
    "Floorplan",
    "GridThermalModel",
    "LeakageCouplingError",
    "LeakageModel",
    "RCNetwork",
    "SensorBank",
    "ThermalModel",
    "ThermalPackage",
    "ThermalSensor",
    "build_cmp_floorplan",
    "build_core_floorplan",
    "coupled_steady_state",
    "initialize_coupled_steady",
    "build_mobile_floorplan",
    "core_block_name",
]
