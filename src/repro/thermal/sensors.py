"""On-chip thermal sensor model.

Every DTM policy in the paper acts on thermal sensor readings, not on the
model's true temperatures. Real sensors quantize (the paper's ACPI diode
reports whole degrees), carry a calibration offset, add noise, and lag the
silicon slightly; the paper notes the sensor delay is small relative to
thermal time scales, and we model it as a configurable one-sample
exponential lag.

Quantization rule: readings snap to the grid with an explicit
**round-half-up** rule (see :func:`quantize_half_up`) rather than
Python's banker's rounding, so the ``x.5`` boundary behaviour is
documented and pinned rather than an accident of ``round()``.

Dynamic faults: a bank accepts an optional ``fault_filter`` — a callable
``(time_s, block, value) -> value`` applied to each reading *after* the
static degradation pipeline — which is how the fault-injection subsystem
(:mod:`repro.faults`) corrupts standalone sensor banks. The engine's
fast path applies the equivalent hook to its vectorised sensor matrix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.thermal.model import ThermalModel
from repro.util.rng import RngStream


def quantize_half_up(value: float, grid: float) -> float:
    """Snap ``value`` to multiples of ``grid``, ties rounding up.

    The rule is ``floor(value / grid + 0.5) * grid``: a reading exactly
    halfway between two grid points reports the *higher* one (toward
    +inf, so ``-0.5 -> 0.0`` on a unit grid). This matches how a
    thermal readout comparator ladder resolves a tie — and, for a
    safety-critical signal, erring hot is the conservative direction.
    Contrast Python's ``round()``/NumPy's ``np.round()``, which round
    ties to the nearest *even* multiple (``0.5 -> 0.0``, ``1.5 -> 2.0``).
    """
    if not grid > 0:
        raise ValueError(f"grid must be positive: {grid}")
    return math.floor(value / grid + 0.5) * grid


@dataclass
class ThermalSensor:
    """One sensor attached to a named floorplan block.

    Attributes:
        block: Floorplan block whose temperature the sensor observes.
        offset_c: Static calibration error added to every reading.
        noise_std_c: Standard deviation of white Gaussian read noise.
        quantization_c: Reading granularity (0 disables quantization;
            the Table 1 experiment uses 1.0 to match the ACPI
            interface). Ties round half-up — see
            :func:`quantize_half_up`.
        lag: First-order smoothing weight in [0, 1): 0 means the sensor
            tracks silicon instantly, larger values blend in the
            previous reading. The smoothing state seeds from the *true*
            temperature on the first read (a sensor powered up against
            settled silicon), so the first sample is un-lagged but still
            carries offset, noise and quantization.
    """

    block: str
    offset_c: float = 0.0
    noise_std_c: float = 0.0
    quantization_c: float = 0.0
    lag: float = 0.0

    def __post_init__(self):
        """Reject out-of-range noise, quantization and lag parameters."""
        if not 0.0 <= self.lag < 1.0:
            raise ValueError(f"lag must be in [0, 1): {self.lag}")
        if self.noise_std_c < 0:
            raise ValueError(f"noise_std_c must be >= 0: {self.noise_std_c}")
        if self.quantization_c < 0:
            raise ValueError(f"quantization_c must be >= 0: {self.quantization_c}")


class SensorBank:
    """A set of sensors read together once per control step.

    Readings are deterministic given the bank's RNG stream, so simulations
    are exactly reproducible — and :meth:`reset` rewinds the stream along
    with the smoothing state, so a reused bank reproduces bit-identical
    readings across back-to-back runs.
    """

    def __init__(
        self,
        sensors: Sequence[ThermalSensor],
        rng: Optional[RngStream] = None,
        fault_filter: Optional[Callable[[float, str, float], float]] = None,
    ):
        """Attach ``sensors`` to a (default fresh) RNG stream."""
        if not sensors:
            raise ValueError("a sensor bank needs at least one sensor")
        names = [s.block for s in sensors]
        if len(set(names)) != len(names):
            raise ValueError("duplicate sensors on the same block")
        self.sensors: List[ThermalSensor] = list(sensors)
        rng = rng or RngStream(0, "sensors")
        # Remember the stream's identity so reset() can rewind it.
        self._rng_root_seed = rng.root_seed
        self._rng_labels = rng.labels
        self._rng = rng
        self.fault_filter = fault_filter
        self._smoothed: Optional[np.ndarray] = None
        self._last_reading: Dict[str, float] = {}

    @property
    def blocks(self) -> List[str]:
        """Monitored block names, in sensor order."""
        return [s.block for s in self.sensors]

    def read(self, model: ThermalModel, time_s: float = 0.0) -> Dict[str, float]:
        """Sample every sensor against the model's current temperatures.

        ``time_s`` is only consulted by the optional ``fault_filter``
        (fault activation windows live in silicon time).
        """
        true_temps = np.array(
            [model.temperature_of(s.block) for s in self.sensors]
        )
        if self._smoothed is None:
            self._smoothed = true_temps.copy()
        readings: Dict[str, float] = {}
        for i, sensor in enumerate(self.sensors):
            self._smoothed[i] = (
                sensor.lag * self._smoothed[i] + (1.0 - sensor.lag) * true_temps[i]
            )
            value = self._smoothed[i] + sensor.offset_c
            if sensor.noise_std_c > 0:
                value += float(self._rng.normal(0.0, sensor.noise_std_c))
            if sensor.quantization_c > 0:
                value = quantize_half_up(value, sensor.quantization_c)
            value = float(value)
            if self.fault_filter is not None:
                value = float(self.fault_filter(time_s, sensor.block, value))
            readings[sensor.block] = value
        self._last_reading = readings
        return readings

    @property
    def last_reading(self) -> Dict[str, float]:
        """The most recent set of readings (empty before the first read)."""
        return dict(self._last_reading)

    def reset(self) -> None:
        """Restore the bank to its just-constructed state.

        Forgets the smoothing state and last reading *and rewinds the
        noise RNG stream to its origin*, so a bank reused across
        back-to-back runs reproduces bit-identical reading sequences.
        """
        self._rng = RngStream(self._rng_root_seed, *self._rng_labels)
        self._smoothed = None
        self._last_reading = {}


def ideal_sensor_bank(blocks: Sequence[str]) -> SensorBank:
    """Noise-free, instantaneous sensors on the given blocks.

    The paper's simulated policies assume accurate sensors (it cites the
    POWER5's low sensor delay); the main experiments use this bank, and
    the sensor-fidelity ablation swaps in degraded ones.
    """
    return SensorBank([ThermalSensor(block=b) for b in blocks])
