"""On-chip thermal sensor model.

Every DTM policy in the paper acts on thermal sensor readings, not on the
model's true temperatures. Real sensors quantize (the paper's ACPI diode
reports whole degrees), carry a calibration offset, add noise, and lag the
silicon slightly; the paper notes the sensor delay is small relative to
thermal time scales, and we model it as a configurable one-sample
exponential lag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.thermal.model import ThermalModel
from repro.util.rng import RngStream


@dataclass
class ThermalSensor:
    """One sensor attached to a named floorplan block.

    Attributes
    ----------
    block:
        Floorplan block whose temperature the sensor observes.
    offset_c:
        Static calibration error added to every reading.
    noise_std_c:
        Standard deviation of white Gaussian read noise.
    quantization_c:
        Reading granularity (0 disables quantization; the Table 1
        experiment uses 1.0 to match the ACPI interface).
    lag:
        First-order smoothing weight in [0, 1): 0 means the sensor tracks
        silicon instantly, larger values blend in the previous reading.
    """

    block: str
    offset_c: float = 0.0
    noise_std_c: float = 0.0
    quantization_c: float = 0.0
    lag: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.lag < 1.0:
            raise ValueError(f"lag must be in [0, 1): {self.lag}")
        if self.noise_std_c < 0:
            raise ValueError(f"noise_std_c must be >= 0: {self.noise_std_c}")
        if self.quantization_c < 0:
            raise ValueError(f"quantization_c must be >= 0: {self.quantization_c}")


class SensorBank:
    """A set of sensors read together once per control step.

    Readings are deterministic given the bank's RNG stream, so simulations
    are exactly reproducible.
    """

    def __init__(
        self,
        sensors: Sequence[ThermalSensor],
        rng: Optional[RngStream] = None,
    ):
        if not sensors:
            raise ValueError("a sensor bank needs at least one sensor")
        names = [s.block for s in sensors]
        if len(set(names)) != len(names):
            raise ValueError("duplicate sensors on the same block")
        self.sensors: List[ThermalSensor] = list(sensors)
        self._rng = rng or RngStream(0, "sensors")
        self._smoothed: Optional[np.ndarray] = None
        self._last_reading: Dict[str, float] = {}

    @property
    def blocks(self) -> List[str]:
        """Monitored block names, in sensor order."""
        return [s.block for s in self.sensors]

    def read(self, model: ThermalModel) -> Dict[str, float]:
        """Sample every sensor against the model's current temperatures."""
        true_temps = np.array(
            [model.temperature_of(s.block) for s in self.sensors]
        )
        if self._smoothed is None:
            self._smoothed = true_temps.copy()
        readings: Dict[str, float] = {}
        for i, sensor in enumerate(self.sensors):
            self._smoothed[i] = (
                sensor.lag * self._smoothed[i] + (1.0 - sensor.lag) * true_temps[i]
            )
            value = self._smoothed[i] + sensor.offset_c
            if sensor.noise_std_c > 0:
                value += float(self._rng.normal(0.0, sensor.noise_std_c))
            if sensor.quantization_c > 0:
                value = (
                    round(value / sensor.quantization_c) * sensor.quantization_c
                )
            readings[sensor.block] = float(value)
        self._last_reading = readings
        return readings

    @property
    def last_reading(self) -> Dict[str, float]:
        """The most recent set of readings (empty before the first read)."""
        return dict(self._last_reading)

    def reset(self) -> None:
        """Forget smoothing state (e.g. between independent runs)."""
        self._smoothed = None
        self._last_reading = {}


def ideal_sensor_bank(blocks: Sequence[str]) -> SensorBank:
    """Noise-free, instantaneous sensors on the given blocks.

    The paper's simulated policies assume accurate sensors (it cites the
    POWER5's low sensor delay); the main experiments use this bank, and
    the sensor-fidelity ablation swaps in degraded ones.
    """
    return SensorBank([ThermalSensor(block=b) for b in blocks])
