"""Grid-mode thermal solver (HotSpot's second operating mode).

The block model used by the trace-driven engine lumps each floorplan unit
into one RC node — fast, and faithful at the granularity the DTM policies
sense. HotSpot also offers a *grid* mode that discretises the die into a
regular mesh for higher spatial fidelity. This module provides the same:
the die's bounding box becomes an ``nx x ny`` cell grid, block powers are
deposited area-weighted into cells, lateral conduction couples neighbour
cells, and each cell has a vertical path into the shared package stack.

It serves two purposes here:

* **accuracy cross-check** — ``tests/thermal/test_grid_model.py`` verifies
  the block model's hotspot temperatures against grid solutions (the
  block lumping error is the classic HotSpot criticism; quantifying it is
  part of owning the substrate);
* **visualisation** — :meth:`GridThermalModel.temperature_map` renders a
  thermal map of the die for the examples.

The engine's 18,000-step transient loop stays on the block model (two
51-node mat-vecs per step); the grid's transient mode (implicit Euler on
a pre-factorised sparse system) exists for offline high-resolution
studies, not the policy loop.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy.linalg import lu_factor, lu_solve
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import splu

from repro.thermal.floorplan import Floorplan
from repro.thermal.package import ThermalPackage
from repro.util.units import mm_to_m


class GridThermalModel:
    """Steady-state thermal solver on a regular die mesh.

    Args:
        floorplan: Same geometry input as the block model.
        package: Same package/materials input as the block model.
        nx: Horizontal mesh resolution; cells are ``width/nx`` wide over
            the floorplan's bounding box.
        ny: Vertical mesh resolution; cells are ``height/ny`` tall.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        package: ThermalPackage,
        nx: int = 32,
        ny: int = 24,
    ):
        """Rasterise the floorplan onto the mesh and assemble the system."""
        if nx < 2 or ny < 2:
            raise ValueError(f"grid must be at least 2x2, got {nx}x{ny}")
        self.floorplan = floorplan
        self.package = package
        self.nx = int(nx)
        self.ny = int(ny)

        x0, y0, x1, y1 = floorplan.bounding_box
        self._x0, self._y0 = x0, y0
        self._cell_w_mm = (x1 - x0) / nx
        self._cell_h_mm = (y1 - y0) / ny
        self._n_cells = nx * ny

        self._coverage = self._block_cell_coverage()
        self._assemble()

    # -- construction -------------------------------------------------------

    def _cell_index(self, ix: int, iy: int) -> int:
        return iy * self.nx + ix

    def _block_cell_coverage(self) -> np.ndarray:
        """Fraction of each block's area landing in each cell.

        Shape ``(n_blocks, n_cells)``; rows sum to 1 (blocks lie inside
        the bounding box by construction).
        """
        n_blocks = len(self.floorplan)
        cov = np.zeros((n_blocks, self._n_cells))
        for b, block in enumerate(self.floorplan.blocks):
            ix_lo = int(np.floor((block.x - self._x0) / self._cell_w_mm))
            ix_hi = int(np.ceil((block.x2 - self._x0) / self._cell_w_mm))
            iy_lo = int(np.floor((block.y - self._y0) / self._cell_h_mm))
            iy_hi = int(np.ceil((block.y2 - self._y0) / self._cell_h_mm))
            for iy in range(max(0, iy_lo), min(self.ny, iy_hi)):
                cell_y0 = self._y0 + iy * self._cell_h_mm
                cell_y1 = cell_y0 + self._cell_h_mm
                overlap_y = min(block.y2, cell_y1) - max(block.y, cell_y0)
                if overlap_y <= 0:
                    continue
                for ix in range(max(0, ix_lo), min(self.nx, ix_hi)):
                    cell_x0 = self._x0 + ix * self._cell_w_mm
                    cell_x1 = cell_x0 + self._cell_w_mm
                    overlap_x = min(block.x2, cell_x1) - max(block.x, cell_x0)
                    if overlap_x <= 0:
                        continue
                    cov[b, self._cell_index(ix, iy)] = (
                        overlap_x * overlap_y / block.area_mm2
                    )
        return cov

    def _assemble(self) -> None:
        n = self._n_cells
        spreader, sink = n, n + 1
        g = np.zeros((n + 2, n + 2))

        def add(i: int, j: int, value: float) -> None:
            """Stamp conductance ``value`` between nodes ``i`` and ``j``."""
            g[i, i] += value
            g[j, j] += value
            g[i, j] -= value
            g[j, i] -= value

        pkg = self.package
        k_si = pkg.silicon.conductivity
        t_die = pkg.die_thickness_m
        w_m = mm_to_m(self._cell_w_mm)
        h_m = mm_to_m(self._cell_h_mm)
        # Lateral conduction between neighbour cells: k * A_cross / d.
        g_x = k_si * (h_m * t_die) / w_m
        g_y = k_si * (w_m * t_die) / h_m
        for iy in range(self.ny):
            for ix in range(self.nx):
                c = self._cell_index(ix, iy)
                if ix + 1 < self.nx:
                    add(c, self._cell_index(ix + 1, iy), g_x)
                if iy + 1 < self.ny:
                    add(c, self._cell_index(ix, iy + 1), g_y)
                # Vertical path: half-die + TIM over the cell footprint.
                cell_area = w_m * h_m
                add(c, spreader, 1.0 / pkg.vertical_resistance_k_per_w(cell_area))

        add(spreader, sink, 1.0 / pkg.sink_resistance_k_per_w)
        g_amb = 1.0 / pkg.convection_resistance_k_per_w
        g[sink, sink] += g_amb

        self._g_lu = lu_factor(g)
        self._g_dense = g
        self._g_amb = g_amb
        self._spreader, self._sink = spreader, sink

        # Capacitances for the transient mode.
        c = np.full(
            n + 2,
            # Same lumping correction as the block model, so the two
            # modes share time constants.
            pkg.block_heat_capacity_j_per_k(w_m * h_m),
        )
        c[spreader] = pkg.spreader_heat_capacity_j_per_k
        c[sink] = pkg.sink_heat_capacity_j_per_k
        self._capacitance = c
        self._transient_lu = None
        self._transient_dt = None

    # -- solving ---------------------------------------------------------------

    def cell_power(self, block_power_w: Sequence[float]) -> np.ndarray:
        """Distribute per-block powers onto the mesh (area-weighted)."""
        p = np.asarray(block_power_w, dtype=float)
        if p.shape != (len(self.floorplan),):
            raise ValueError(
                f"expected {len(self.floorplan)} block powers, got {p.shape}"
            )
        return p @ self._coverage

    def steady_state(self, block_power_w: Sequence[float]) -> np.ndarray:
        """Steady cell temperatures (+ spreader, sink) in floorplan order."""
        u = np.zeros(self._n_cells + 2)
        u[: self._n_cells] = self.cell_power(block_power_w)
        u[self._sink] += self._g_amb * self.package.ambient_c
        return lu_solve(self._g_lu, u)

    def block_temperatures(self, block_power_w: Sequence[float]) -> np.ndarray:
        """Steady per-block temperatures: coverage-weighted cell averages.

        Directly comparable to ``ThermalModel.steady_state(...)[:n_blocks]``.
        """
        cells = self.steady_state(block_power_w)[: self._n_cells]
        return self._coverage @ cells

    def hotspot(self, block_power_w: Sequence[float]) -> Tuple[str, float]:
        """The hottest block and its grid-resolved temperature."""
        temps = self.block_temperatures(block_power_w)
        idx = int(np.argmax(temps))
        return self.floorplan.blocks[idx].name, float(temps[idx])

    # -- transient (implicit Euler on the sparse system) -----------------------

    def _input_vector(self, block_power_w: Sequence[float]) -> np.ndarray:
        u = np.zeros(self._n_cells + 2)
        u[: self._n_cells] = self.cell_power(block_power_w)
        u[self._sink] += self._g_amb * self.package.ambient_c
        return u

    def transient_step(
        self,
        temperatures: np.ndarray,
        block_power_w: Sequence[float],
        dt: float,
    ) -> np.ndarray:
        """One implicit-Euler step: ``(C/dt + G) T' = C/dt T + u``.

        Unconditionally stable; the sparse factorisation is cached per
        step size. Returns the new full temperature vector (cells +
        spreader + sink). Start from :meth:`steady_state` of an initial
        power, or from ambient.
        """
        if not dt > 0:
            raise ValueError(f"dt must be positive: {dt}")
        temperatures = np.asarray(temperatures, dtype=float)
        n = self._n_cells + 2
        if temperatures.shape != (n,):
            raise ValueError(f"expected {n} temperatures, got {temperatures.shape}")
        if self._transient_lu is None or self._transient_dt != dt:
            c_over_dt = self._capacitance / dt
            system = csc_matrix(self._g_dense + np.diag(c_over_dt))
            self._transient_lu = splu(system)
            self._transient_dt = dt
        rhs = self._capacitance / dt * temperatures + self._input_vector(
            block_power_w
        )
        return self._transient_lu.solve(rhs)

    def ambient_state(self) -> np.ndarray:
        """A full temperature vector at ambient (transient start point)."""
        return np.full(self._n_cells + 2, self.package.ambient_c)

    # -- visualisation -----------------------------------------------------------

    def temperature_map(
        self,
        block_power_w: Sequence[float],
        palette: str = " .:-=+*#%@",
    ) -> str:
        """An ASCII thermal map of the die (top row = top of the die)."""
        cells = self.steady_state(block_power_w)[: self._n_cells]
        grid = cells.reshape(self.ny, self.nx)
        lo, hi = float(grid.min()), float(grid.max())
        span = max(hi - lo, 1e-9)
        chars = np.asarray(list(palette))
        idx = ((grid - lo) / span * (len(chars) - 1)).round().astype(int)
        rows = ["".join(chars[row]) for row in idx[::-1]]  # y up -> top first
        legend = f"[{lo:.1f} C '{palette[0]}' .. {hi:.1f} C '{palette[-1]}']"
        return "\n".join(rows) + "\n" + legend
