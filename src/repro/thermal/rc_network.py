"""Build the thermal RC network from a floorplan and a package.

Node layout (for ``n`` floorplan blocks):

* nodes ``0 .. n-1`` — silicon blocks, in floorplan order;
* node ``n`` — heat spreader (lumped);
* node ``n+1`` — heatsink (lumped), tied to ambient through the
  convection resistance.

Conductances:

* lateral silicon conduction between adjacent blocks, using HotSpot's
  shared-edge formula ``R = (d_i + d_j) / (k_si * t_die * L_shared)``;
* vertical conduction from each block through half the die and the TIM to
  the spreader;
* spreader -> sink and sink -> ambient lumped resistances.

The network is exported as the matrices of the linear ODE

    C dT/dt = -G T + P + g_amb * T_amb * e_sink

where ``T`` is in degrees Celsius, ``P`` the per-node power injection, and
the ambient enters as a fixed-temperature boundary on the sink node.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.thermal.floorplan import Floorplan
from repro.thermal.package import ThermalPackage
from repro.util.units import mm2_to_m2, mm_to_m


@dataclass(frozen=True)
class RCNetwork:
    """The assembled thermal network.

    Attributes:
        node_names: Names of all nodes — floorplan blocks, then
            ``"spreader"`` and ``"sink"``.
        conductance: Symmetric positive-definite matrix ``G`` (W/K)
            including the ambient tie on the sink diagonal.
        capacitance: Per-node heat capacities ``C`` (J/K).
        ambient_c: Boundary temperature (deg C).
        ambient_conductance: ``g_amb`` (W/K) — the sink-to-ambient tie,
            needed to form the constant input term.
    """

    node_names: Tuple[str, ...]
    conductance: np.ndarray
    capacitance: np.ndarray
    ambient_c: float
    ambient_conductance: float

    @property
    def n_nodes(self) -> int:
        """Total node count (blocks + spreader + sink)."""
        return len(self.node_names)

    @property
    def n_blocks(self) -> int:
        """Number of silicon (power-dissipating) nodes."""
        return self.n_nodes - 2

    def index(self, name: str) -> int:
        """Index of a node by name."""
        try:
            return self.node_names.index(name)
        except ValueError:
            raise KeyError(f"no node named {name!r}") from None

    def input_vector(self, block_power_w: np.ndarray) -> np.ndarray:
        """Full input term ``u = P + g_amb * T_amb * e_sink``.

        ``block_power_w`` has one entry per silicon block; spreader and
        sink dissipate nothing themselves.
        """
        block_power_w = np.asarray(block_power_w, dtype=float)
        if block_power_w.shape != (self.n_blocks,):
            raise ValueError(
                f"expected {self.n_blocks} block powers, got {block_power_w.shape}"
            )
        u = np.zeros(self.n_nodes)
        u[: self.n_blocks] = block_power_w
        u[-1] += self.ambient_conductance * self.ambient_c
        return u


#: Memoised assemblies keyed by floorplan *object* (weak, so a discarded
#: plan frees its networks) then by the (hashable, frozen) package.
#: Floorplans and built networks are treated as immutable everywhere, and
#: memoised floorplans (see :func:`repro.thermal.layouts.build_cmp_floorplan`)
#: make repeated simulator construction hit this cache.
_NETWORK_CACHE: "weakref.WeakKeyDictionary[Floorplan, dict]" = (
    weakref.WeakKeyDictionary()
)


def build_rc_network(floorplan: Floorplan, package: ThermalPackage) -> RCNetwork:
    """Assemble the :class:`RCNetwork` for ``floorplan`` under ``package``.

    Repeated calls with the same floorplan instance and an equal package
    return a shared, memoised network.
    """
    per_plan = _NETWORK_CACHE.get(floorplan)
    if per_plan is not None:
        cached = per_plan.get(package)
        if cached is not None:
            return cached
    n = len(floorplan)
    n_total = n + 2
    spreader = n
    sink = n + 1

    g = np.zeros((n_total, n_total))
    c = np.zeros(n_total)

    def add_conductance(i: int, j: int, value: float) -> None:
        """Stamp conductance ``value`` between nodes ``i`` and ``j``."""
        g[i, i] += value
        g[j, j] += value
        g[i, j] -= value
        g[j, i] -= value

    # Lateral silicon conduction between adjacent blocks.
    k_si = package.silicon.conductivity
    t_die = package.die_thickness_m
    for i, j, shared_mm, di_mm, dj_mm in floorplan.adjacent_pairs():
        shared_m = mm_to_m(shared_mm)
        d_m = mm_to_m(di_mm + dj_mm)
        resistance = d_m / (k_si * t_die * shared_m)
        add_conductance(i, j, 1.0 / resistance)

    # Vertical path: block -> spreader, and block capacitances.
    for i, block in enumerate(floorplan.blocks):
        area_m2 = mm2_to_m2(block.area_mm2)
        add_conductance(i, spreader, 1.0 / package.vertical_resistance_k_per_w(area_m2))
        c[i] = package.block_heat_capacity_j_per_k(area_m2)

    # Spreader -> sink -> ambient.
    add_conductance(spreader, sink, 1.0 / package.sink_resistance_k_per_w)
    g_amb = 1.0 / package.convection_resistance_k_per_w
    g[sink, sink] += g_amb

    c[spreader] = package.spreader_heat_capacity_j_per_k
    c[sink] = package.sink_heat_capacity_j_per_k

    names = tuple(floorplan.names) + ("spreader", "sink")
    network = RCNetwork(
        node_names=names,
        conductance=g,
        capacitance=c,
        ambient_c=package.ambient_c,
        ambient_conductance=g_amb,
    )
    _NETWORK_CACHE.setdefault(floorplan, {})[package] = network
    return network
