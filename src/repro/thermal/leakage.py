"""Temperature-dependent leakage power.

The paper feeds HotSpot temperatures into "a leakage model based on an
empirical equation from [Heo, Barr & Asanovic, ISLPED'03]": leakage grows
exponentially with temperature. We use the same functional form,

    P_leak(T) = P_ref * exp(beta * (T - T_ref)),

evaluated per block with the previous step's temperature (the standard
one-step-lag linearization of the leakage <-> temperature loop shown in
the paper's Figure 2).

``beta = 0.028 / K`` doubles leakage roughly every 25 degrees, in line with
published 90 nm subthreshold behaviour. Reference leakage is apportioned
to blocks by area, modulated by a per-unit-type density factor (SRAM-heavy
structures leak more per area than random logic at matched temperature).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.thermal.floorplan import Floorplan
from repro.thermal.layouts import parse_block_name

#: Exponential temperature coefficient (1/K).
DEFAULT_BETA = 0.028

#: Reference temperature at which block reference leakage is specified.
DEFAULT_T_REF_C = 85.0

#: Relative leakage density by unit type (dimensionless multipliers).
_UNIT_LEAKAGE_DENSITY: Dict[str, float] = {
    "icache": 1.2,
    "dcache": 1.2,
    "bpred": 1.1,
    "decode": 0.9,
    "iq": 1.0,
    "lsu": 0.9,
    "fxu": 1.0,
    "intreg": 1.3,
    "bxu": 0.9,
    "fpreg": 1.3,
    "fpu": 1.0,
    "xbar": 0.5,
}

#: L2 SRAM leaks densely but is held at a lower activity corner.
_L2_LEAKAGE_DENSITY = 0.8


class LeakageModel:
    """Per-block exponential leakage model.

    Args:
        floorplan: Geometry; determines block areas and unit types.
        total_reference_w: Chip-wide leakage at the reference
            temperature. The default calibration (see
            ``repro.uarch.power``) puts leakage near 20% of peak chip
            power at 85 C, the commonly-cited 90 nm share.
        beta: Exponential coefficient (1/K).
        t_ref_c: Temperature at which ``total_reference_w`` is specified.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        total_reference_w: float,
        beta: float = DEFAULT_BETA,
        t_ref_c: float = DEFAULT_T_REF_C,
    ):
        """Distribute the reference budget over blocks by area and density."""
        if not total_reference_w >= 0:
            raise ValueError(f"total_reference_w must be >= 0: {total_reference_w}")
        if not beta >= 0:
            raise ValueError(f"beta must be >= 0: {beta}")
        self.floorplan = floorplan
        self.beta = float(beta)
        self.t_ref_c = float(t_ref_c)
        weights = np.array(
            [self._density(b.name) * b.area_mm2 for b in floorplan.blocks]
        )
        total_weight = weights.sum()
        if total_weight <= 0:
            raise ValueError("floorplan has no leaking area")
        #: Per-block leakage at the reference temperature (W).
        self.reference_w = total_reference_w * weights / total_weight

    @staticmethod
    def _density(block_name: str) -> float:
        _, unit = parse_block_name(block_name)
        if unit.startswith("l2"):
            return _L2_LEAKAGE_DENSITY
        return _UNIT_LEAKAGE_DENSITY.get(unit, 1.0)

    #: Evaluation clamp (deg C). The empirical exponential is a fit over
    #: the operating range; extrapolating it far above damages nothing
    #: physical but creates a spurious >1 leakage-temperature loop gain
    #: (numerical thermal runaway) in steady-state solves of deliberately
    #: unsustainable operating points. Real silicon leakage saturates.
    max_eval_temp_c = 150.0

    def power(self, block_temperatures_c: Sequence[float]) -> np.ndarray:
        """Leakage power per block (W) at the given block temperatures."""
        temps = np.asarray(block_temperatures_c, dtype=float)
        if temps.shape != self.reference_w.shape:
            raise ValueError(
                f"expected {self.reference_w.shape[0]} temperatures, "
                f"got {temps.shape}"
            )
        temps = np.minimum(temps, self.max_eval_temp_c)
        return self.reference_w * np.exp(self.beta * (temps - self.t_ref_c))

    def power_fast(self, block_temperatures_c: np.ndarray) -> np.ndarray:
        """Leakage power per block, skipping input validation.

        Performs the identical floating-point operations as
        :meth:`power` — callers get bit-identical results — but assumes
        ``block_temperatures_c`` is already a correctly-shaped float
        array. Exists for the simulation engine's step loop, which calls
        this once per simulated step.

        Args:
            block_temperatures_c: Block temperatures, shape
                ``(n_blocks,)``, dtype float64.

        Returns:
            Freshly allocated per-block leakage power (W).
        """
        temps = np.minimum(block_temperatures_c, self.max_eval_temp_c)
        return self.reference_w * np.exp(self.beta * (temps - self.t_ref_c))

    def total_power(self, block_temperatures_c: Sequence[float]) -> float:
        """Chip-wide leakage (W)."""
        return float(self.power(block_temperatures_c).sum())

    def scaled(self, voltage_scale: float) -> np.ndarray:
        """Reference leakage under a supply-voltage scale factor.

        Leakage varies superlinearly with supply voltage; we apply the
        commonly-used quadratic dependence. Returns the scaled reference
        vector (does not mutate the model).
        """
        if not 0 < voltage_scale <= 1.0:
            raise ValueError(f"voltage_scale must be in (0, 1]: {voltage_scale}")
        return self.reference_w * voltage_scale ** 2
