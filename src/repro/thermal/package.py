"""Package model: die thickness, TIM, heat spreader, heatsink, convection.

The values parallel HotSpot 2.0's defaults for a high-performance package,
lightly adapted so that (a) block-level thermal time constants land in the
single-digit-millisecond range the paper cites for heating/cooling, and
(b) a core running flat out stabilizes 10-20 degrees above the 84.2 C
emergency threshold, which is the regime in which the paper's policies
operate (full speed is thermally unsustainable, ~50-80% of full power is
sustainable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.thermal.materials import COPPER, INTERFACE, SILICON, Material


@dataclass(frozen=True)
class ThermalPackage:
    """Vertical thermal stack and boundary conditions.

    Attributes:
        die_thickness_m: Silicon bulk thickness under the active layer.
        tim_thickness_m: Thermal-interface-material bond line.
        spreader_side_m: Copper integrated-heat-spreader edge length.
        spreader_thickness_m: Copper integrated-heat-spreader thickness.
        sink_resistance_k_per_w: Lumped conduction resistance from
            spreader to heatsink body.
        convection_resistance_k_per_w: Heatsink-to-air convection
            resistance (fan included).
        sink_heat_capacity_j_per_k: Lumped heatsink capacitance; large,
            so the sink is quasi-static over a 0.5 s experiment (runs
            start from a warmed-up steady state).
        ambient_c: Air temperature inside the chassis.
        silicon: Die material.
        tim: Thermal-interface material.
        spreader_material: Heat-spreader material.
    """

    die_thickness_m: float = 0.3e-3
    tim_thickness_m: float = 40e-6
    spreader_side_m: float = 30e-3
    spreader_thickness_m: float = 1.0e-3
    sink_resistance_k_per_w: float = 0.08
    convection_resistance_k_per_w: float = 0.22
    sink_heat_capacity_j_per_k: float = 60.0
    ambient_c: float = 45.0
    silicon: Material = field(default=SILICON)
    tim: Material = field(default=INTERFACE)
    spreader_material: Material = field(default=COPPER)

    def __post_init__(self):
        """Reject non-physical (non-positive) dimensions and resistances."""
        for name in (
            "die_thickness_m",
            "tim_thickness_m",
            "spreader_side_m",
            "spreader_thickness_m",
            "sink_resistance_k_per_w",
            "convection_resistance_k_per_w",
            "sink_heat_capacity_j_per_k",
        ):
            if not getattr(self, name) > 0:
                raise ValueError(f"{name} must be positive")

    @property
    def spreader_heat_capacity_j_per_k(self) -> float:
        """Lumped capacitance of the spreader plate."""
        volume = self.spreader_side_m ** 2 * self.spreader_thickness_m
        return volume * self.spreader_material.volumetric_heat_capacity

    def vertical_resistance_k_per_w(self, area_m2: float) -> float:
        """Block-to-spreader conduction resistance for a block of ``area_m2``.

        Half the die thickness (heat is generated at the active layer and
        the block node sits at mid-die) plus the TIM bond line, both over
        the block's own footprint.
        """
        if not area_m2 > 0:
            raise ValueError(f"area must be positive, got {area_m2}")
        r_si = (self.die_thickness_m / 2.0) / (self.silicon.conductivity * area_m2)
        r_tim = self.tim_thickness_m / (self.tim.conductivity * area_m2)
        return r_si + r_tim

    def block_heat_capacity_j_per_k(self, area_m2: float) -> float:
        """Lumped capacitance of one silicon block (die volume under it).

        HotSpot scales the raw silicon capacitance up to absorb the
        distributed-RC-to-lumped-RC error; we apply the same style of
        constant factor, chosen so block time constants sit at a few ms.
        """
        lumped_correction = 6.0
        volume = area_m2 * self.die_thickness_m
        return lumped_correction * volume * self.silicon.volumetric_heat_capacity


#: Package used for the 4-core high-performance chip in all main results.
HIGH_PERFORMANCE_PACKAGE = ThermalPackage()

#: Package used for the Table 1 mobile (Pentium M-like) measurements:
#: smaller notebook cooling solution with higher external resistance, and a
#: cooler chassis interior.
MOBILE_PACKAGE = ThermalPackage(
    spreader_side_m=22e-3,
    spreader_thickness_m=0.8e-3,
    sink_resistance_k_per_w=0.4,
    convection_resistance_k_per_w=1.6,
    sink_heat_capacity_j_per_k=40.0,
    ambient_c=38.0,
)
