"""Concrete floorplans: the paper's 4-core CMP and a mobile chip.

The single-core mobile chip serves the Table 1 reproduction.

The per-core layout follows the out-of-order PowerPC-style floorplans used
in the paper's lineage (HotSpot's EV6-style plans, and Li et al. HPCA'05):
caches along the bottom, front-end in the middle band, execution units and
the two register files — the paper's hotspots — in the top band. The chip
places four such cores in a row over a crossbar strip and a 4 MB shared L2
split into four banks, so that cores have distinct lateral surroundings
(edge cores vs. inner cores), which the sensor-based migration policy must
learn (Section 6.3 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.thermal.floorplan import Block, Floorplan

#: Units inside one core. ``intreg`` and ``fpreg`` are the paper's two
#: monitored hotspots ("integer register logic", "FP register logic").
CORE_UNITS: Tuple[str, ...] = (
    "icache",
    "dcache",
    "bpred",
    "decode",
    "iq",
    "lsu",
    "fxu",
    "intreg",
    "bxu",
    "fpreg",
    "fpu",
)

#: The two per-core hotspot units watched by thermal sensors.
HOTSPOT_UNITS: Tuple[str, str] = ("intreg", "fpreg")

#: Fractional layout of a core (x, y, width, height in the unit square).
_CORE_LAYOUT: Dict[str, Tuple[float, float, float, float]] = {
    "icache": (0.00, 0.00, 0.50, 0.35),
    "dcache": (0.50, 0.00, 0.50, 0.35),
    "bpred": (0.00, 0.35, 0.25, 0.30),
    "decode": (0.25, 0.35, 0.25, 0.30),
    "iq": (0.50, 0.35, 0.25, 0.30),
    "lsu": (0.75, 0.35, 0.25, 0.30),
    "fxu": (0.00, 0.65, 0.22, 0.35),
    "intreg": (0.22, 0.65, 0.13, 0.35),
    "bxu": (0.35, 0.65, 0.13, 0.35),
    "fpreg": (0.48, 0.65, 0.13, 0.35),
    "fpu": (0.61, 0.65, 0.39, 0.35),
}

#: A core layout as immutable ``(unit, (x, y, w, h))`` items — the
#: hashable form scenario tables carry (dicts cannot live in frozen
#: dataclasses or memoisation keys).
LayoutItems = Tuple[Tuple[str, Tuple[float, float, float, float]], ...]

#: The paper's out-of-order core layout in :data:`LayoutItems` form.
DEFAULT_CORE_LAYOUT: LayoutItems = tuple(_CORE_LAYOUT.items())

#: Default core edge length (mm) for the 90 nm 4-core chip.
DEFAULT_CORE_SIZE_MM = 4.0

#: Height (mm) of the crossbar/interconnect strip between cores and L2.
XBAR_HEIGHT_MM = 0.8

#: Height (mm) of the shared L2 region (4 MB, spanning the chip width).
L2_HEIGHT_MM = 5.2

#: Height (mm) of one mesh tile's private L2 bank.
MESH_L2_HEIGHT_MM = 1.6

#: Width (mm) of the mesh NoC spine (the single ``xbar`` block).
MESH_NOC_WIDTH_MM = 0.8


def core_block_name(core_index: int, unit: str) -> str:
    """Canonical name of a unit inside a core, e.g. ``core2.fpreg``."""
    return f"core{core_index}.{unit}"


def parse_block_name(name: str) -> Tuple[int, str]:
    """Inverse of :func:`core_block_name`.

    Returns ``(core_index, unit)``; shared blocks (L2 banks, crossbar)
    return core index ``-1``.
    """
    if name.startswith("core") and "." in name:
        prefix, unit = name.split(".", 1)
        return int(prefix[4:]), unit
    return -1, name


def _layout_items(
    layout: object,
) -> LayoutItems:
    """Normalise a core layout (mapping or items) into :data:`LayoutItems`.

    Validates that the layout covers exactly :data:`CORE_UNITS` so every
    core, whatever its class, exposes the same block-name contract the
    engine's power-index partition relies on.
    """
    if hasattr(layout, "items"):
        items = tuple(
            (str(u), tuple(float(v) for v in box))
            for u, box in layout.items()  # type: ignore[attr-defined]
        )
    else:
        items = tuple(
            (str(u), tuple(float(v) for v in box)) for u, box in layout
        )
    if tuple(sorted(u for u, _ in items)) != tuple(sorted(CORE_UNITS)):
        raise ValueError(
            "core layout must define exactly the units "
            f"{sorted(CORE_UNITS)}, got {sorted(u for u, _ in items)}"
        )
    return items  # type: ignore[return-value]


def build_core_floorplan(
    core_size_mm: float = DEFAULT_CORE_SIZE_MM,
    origin: Tuple[float, float] = (0.0, 0.0),
    prefix: str = "",
    layout: Optional[LayoutItems] = None,
) -> Floorplan:
    """One out-of-order core, optionally name-prefixed and translated.

    ``layout`` selects an alternative fractional unit layout (e.g. the
    cache-heavy efficiency-core plan from :mod:`repro.scenarios`); the
    default is the paper's out-of-order plan.
    """
    if not core_size_mm > 0:
        raise ValueError(f"core_size_mm must be positive, got {core_size_mm}")
    items = DEFAULT_CORE_LAYOUT if layout is None else _layout_items(layout)
    ox, oy = origin
    blocks = [
        Block(
            prefix + unit,
            ox + fx * core_size_mm,
            oy + fy * core_size_mm,
            fw * core_size_mm,
            fh * core_size_mm,
        )
        for unit, (fx, fy, fw, fh) in items
    ]
    return Floorplan(blocks)


#: Memoised chips: geometry construction is pure and every simulator run
#: rebuilds the same default plan, so identical parameters share one
#: (immutable by convention) Floorplan instance. Keys carry every
#: geometry-affecting parameter — two scenarios sharing ``n_cores`` but
#: differing in sizes or per-core layouts must never alias one plan.
_CMP_CACHE: Dict[Tuple, Floorplan] = {}

#: Memoised mesh chips, keyed on the full (rows, cols, per-tile
#: size+layout) geometry — same aliasing rule as :data:`_CMP_CACHE`.
_MESH_CACHE: Dict[Tuple, Floorplan] = {}


def _layouts_key(
    n_cores: int, core_layouts: Optional[Sequence[Optional[LayoutItems]]]
) -> Optional[Tuple]:
    """Hashable per-core layout component of a floorplan memo key."""
    if core_layouts is None:
        return None
    layouts = list(core_layouts)
    if len(layouts) != n_cores:
        raise ValueError(
            f"core_layouts must have {n_cores} entries, got {len(layouts)}"
        )
    return tuple(
        None if lay is None else _layout_items(lay) for lay in layouts
    )


def build_cmp_floorplan(
    n_cores: int = 4,
    core_size_mm: float = DEFAULT_CORE_SIZE_MM,
    core_sizes_mm: Optional[Sequence[float]] = None,
    core_layouts: Optional[Sequence[Optional[LayoutItems]]] = None,
) -> Floorplan:
    """The paper's chip: ``n_cores`` cores over a crossbar and L2 banks.

    Core ``i`` occupies a square column above the crossbar; the L2 is
    split into one bank per core column so the thermal model resolves
    lateral gradients along the chip.

    ``core_sizes_mm`` enables the *asymmetric cores* axis the paper names
    as a possible extension: per-core edge lengths (same microarchitecture
    and power, different silicon area — a larger core runs the same
    workload at lower power density and therefore cooler).

    ``core_layouts`` optionally gives each core its own fractional unit
    layout (heterogeneous big.LITTLE rows from :mod:`repro.scenarios`);
    ``None`` entries fall back to the default layout.

    Calls with equal parameters return a shared, memoised instance;
    floorplans are treated as immutable everywhere in the codebase.
    """
    key = (
        int(n_cores),
        float(core_size_mm),
        None if core_sizes_mm is None else tuple(float(s) for s in core_sizes_mm),
        _layouts_key(int(n_cores), core_layouts),
    )
    cached = _CMP_CACHE.get(key)
    if cached is not None:
        return cached
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    if core_sizes_mm is None:
        sizes = [core_size_mm] * n_cores
    else:
        sizes = [float(s) for s in core_sizes_mm]
        if len(sizes) != n_cores:
            raise ValueError(
                f"core_sizes_mm must have {n_cores} entries, got {len(sizes)}"
            )
        if any(not s > 0 for s in sizes):
            raise ValueError(f"core sizes must be positive: {sizes}")
    layouts: List[Optional[LayoutItems]] = (
        [None] * n_cores if core_layouts is None else list(core_layouts)
    )
    blocks: List[Block] = []
    xbar_bottom = L2_HEIGHT_MM
    core_bottom = L2_HEIGHT_MM + XBAR_HEIGHT_MM
    x = 0.0
    for i, size in enumerate(sizes):
        core = build_core_floorplan(
            size,
            origin=(x, core_bottom),
            prefix=f"core{i}.",
            layout=layouts[i],
        )
        blocks.extend(core.blocks)
        x += size
    chip_width = sum(sizes)
    blocks.append(Block("xbar", 0.0, xbar_bottom, chip_width, XBAR_HEIGHT_MM))
    x = 0.0
    for i, size in enumerate(sizes):
        blocks.append(Block(f"l2_{i}", x, 0.0, size, L2_HEIGHT_MM))
        x += size
    plan = Floorplan(blocks)
    _CMP_CACHE[key] = plan
    return plan


def build_mesh_floorplan(
    rows: int,
    cols: int,
    core_classes: Optional[Sequence] = None,
    core_size_mm: float = DEFAULT_CORE_SIZE_MM,
) -> Floorplan:
    """A ``rows × cols`` tiled many-core mesh over an L2/NoC fabric.

    Tile ``i = r * cols + c`` (row-major, row 0 at the bottom) holds a
    private L2 bank (``l2_{i}``, full tile width) under core ``i``'s unit
    blocks. A single vertical NoC spine along the right edge plays the
    ``xbar`` role so the engine's three power-index families (core units,
    per-core L2 banks, one shared interconnect) partition the block set
    exactly as on the paper's 4-core chip.

    ``core_classes`` is an optional length ``rows*cols`` sequence of
    objects with ``size_mm`` and ``layout`` attributes (duck-typed so this
    module stays import-independent of :mod:`repro.scenarios`, which
    imports it). Heterogeneous rows — e.g. a big row under a LITTLE row —
    get per-row heights; columns share a uniform pitch sized for the
    largest core so tiles never overlap. Gaps between small tiles and the
    pitch boundary are legal floorplan whitespace.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"mesh needs rows, cols >= 1, got {rows}x{cols}")
    n_cores = rows * cols
    if core_classes is not None and len(core_classes) != n_cores:
        raise ValueError(
            f"core_classes must have {n_cores} entries, got {len(core_classes)}"
        )

    def _tile(i: int) -> Tuple[float, LayoutItems]:
        if core_classes is None:
            return float(core_size_mm), DEFAULT_CORE_LAYOUT
        cls = core_classes[i]
        return float(cls.size_mm), _layout_items(cls.layout)

    tiles = [_tile(i) for i in range(n_cores)]
    key = ("mesh", int(rows), int(cols), tuple(tiles))
    cached = _MESH_CACHE.get(key)
    if cached is not None:
        return cached
    if any(not size > 0 for size, _ in tiles):
        raise ValueError("mesh core sizes must be positive")
    tile_w = max(size for size, _ in tiles)
    row_heights = [
        MESH_L2_HEIGHT_MM
        + max(tiles[r * cols + c][0] for c in range(cols))
        for r in range(rows)
    ]
    blocks: List[Block] = []
    y = 0.0
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            size, layout = tiles[i]
            x = c * tile_w
            blocks.append(
                Block(f"l2_{i}", x, y, tile_w, MESH_L2_HEIGHT_MM)
            )
            core = build_core_floorplan(
                size,
                origin=(x, y + MESH_L2_HEIGHT_MM),
                prefix=f"core{i}.",
                layout=layout,
            )
            blocks.extend(core.blocks)
        y += row_heights[r]
    blocks.append(Block("xbar", cols * tile_w, 0.0, MESH_NOC_WIDTH_MM, y))
    plan = Floorplan(blocks)
    _MESH_CACHE[key] = plan
    return plan


def build_mobile_floorplan(core_size_mm: float = 6.0) -> Floorplan:
    """A single-core mobile chip (the Table 1 Pentium M stand-in).

    One core above a 1 MB L2 block; the ACPI-style thermal diode sits at
    the edge of the die (see :func:`mobile_sensor_block`).
    """
    l2_height = core_size_mm * 0.6
    core = build_core_floorplan(
        core_size_mm, origin=(0.0, l2_height), prefix="core0."
    )
    l2 = Block("l2_0", 0.0, 0.0, core_size_mm, l2_height)
    return Floorplan(list(core.blocks) + [l2])


def mobile_sensor_block() -> str:
    """Block holding the mobile chip's single edge thermal diode.

    The Pentium M's ACPI diode sits at the edge of the processor. We read
    the L2 region, which reaches the die's bottom edge and integrates
    total chip power the way a package-edge diode does (the Table 1
    experiment reads this block through 1 °C quantisation).
    """
    return "l2_0"


def core_names(n_cores: int) -> List[str]:
    """``["core0", ..., "core{n-1}"]`` — used for labeling results."""
    return [f"core{i}" for i in range(n_cores)]


def hotspot_blocks(core_index: int) -> List[str]:
    """The monitored hotspot block names of one core."""
    return [core_block_name(core_index, unit) for unit in HOTSPOT_UNITS]


def all_core_blocks(core_index: int) -> List[str]:
    """All block names belonging to one core."""
    return [core_block_name(core_index, unit) for unit in CORE_UNITS]
