"""Floorplan geometry: rectangular blocks and their adjacency.

A floorplan is a set of non-overlapping axis-aligned rectangles (in
millimeters, for readability of the layout code). The RC-network builder
needs, for every pair of blocks, the length of their shared edge and the
center-to-edge distances perpendicular to it; those queries live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Two edges closer than this (mm) are considered touching. Floorplans are
#: specified with exact arithmetic so a tight tolerance suffices.
ADJACENCY_TOLERANCE_MM = 1e-9


@dataclass(frozen=True)
class Block:
    """An axis-aligned rectangle: lower-left corner plus extent, in mm."""

    name: str
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self):
        """Reject degenerate (zero/negative extent) rectangles."""
        if not self.width > 0 or not self.height > 0:
            raise ValueError(
                f"block {self.name!r} must have positive extent "
                f"({self.width} x {self.height})"
            )

    @property
    def x2(self) -> float:
        """Right edge."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge."""
        return self.y + self.height

    @property
    def area_mm2(self) -> float:
        """Area in square millimeters."""
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        """Center point (mm)."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def translated(self, dx: float, dy: float, rename: Optional[str] = None) -> "Block":
        """A copy of this block shifted by ``(dx, dy)``."""
        return Block(rename or self.name, self.x + dx, self.y + dy,
                     self.width, self.height)

    def overlaps(self, other: "Block") -> bool:
        """Whether the two rectangles share interior area."""
        eps = ADJACENCY_TOLERANCE_MM
        return (
            self.x < other.x2 - eps
            and other.x < self.x2 - eps
            and self.y < other.y2 - eps
            and other.y < self.y2 - eps
        )

    def shared_edge(self, other: "Block") -> Tuple[float, float, float]:
        """Shared-edge geometry with another block.

        Returns ``(length, d_self, d_other)`` where ``length`` is the
        overlap length of the touching edges (0 if not adjacent) and the
        distances are from each block's center to the shared edge — the
        quantities HotSpot's lateral-resistance formula needs.
        """
        eps = ADJACENCY_TOLERANCE_MM
        # Vertical shared edge (side by side).
        if abs(self.x2 - other.x) < eps or abs(other.x2 - self.x) < eps:
            length = min(self.y2, other.y2) - max(self.y, other.y)
            if length > eps:
                return (length, self.width / 2.0, other.width / 2.0)
        # Horizontal shared edge (stacked).
        if abs(self.y2 - other.y) < eps or abs(other.y2 - self.y) < eps:
            length = min(self.x2, other.x2) - max(self.x, other.x)
            if length > eps:
                return (length, self.height / 2.0, other.height / 2.0)
        return (0.0, 0.0, 0.0)


class Floorplan:
    """An ordered collection of named, non-overlapping blocks."""

    def __init__(self, blocks: Sequence[Block]):
        """Validate uniqueness and geometry of ``blocks`` and index them."""
        names = [b.name for b in blocks]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate block names: {dupes}")
        self.blocks: List[Block] = list(blocks)
        self._index: Dict[str, int] = {b.name: i for i, b in enumerate(self.blocks)}
        self._check_no_overlap()

    def _check_no_overlap(self) -> None:
        for i, a in enumerate(self.blocks):
            for b in self.blocks[i + 1:]:
                if a.overlaps(b):
                    raise ValueError(f"blocks {a.name!r} and {b.name!r} overlap")

    def __len__(self) -> int:
        """Number of blocks."""
        return len(self.blocks)

    def __iter__(self) -> Iterator[Block]:
        """Iterate blocks in floorplan (node) order."""
        return iter(self.blocks)

    def __contains__(self, name: str) -> bool:
        """Whether a block named ``name`` exists."""
        return name in self._index

    @property
    def names(self) -> List[str]:
        """Block names in floorplan order."""
        return [b.name for b in self.blocks]

    def block(self, name: str) -> Block:
        """Look up a block by name."""
        try:
            return self.blocks[self._index[name]]
        except KeyError:
            raise KeyError(f"no block named {name!r} in floorplan") from None

    def index(self, name: str) -> int:
        """Position of the named block in floorplan order."""
        if name not in self._index:
            raise KeyError(f"no block named {name!r} in floorplan")
        return self._index[name]

    @property
    def total_area_mm2(self) -> float:
        """Sum of all block areas (mm^2)."""
        return sum(b.area_mm2 for b in self.blocks)

    @property
    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` over all blocks."""
        return (
            min(b.x for b in self.blocks),
            min(b.y for b in self.blocks),
            max(b.x2 for b in self.blocks),
            max(b.y2 for b in self.blocks),
        )

    def adjacent_pairs(self) -> List[Tuple[int, int, float, float, float]]:
        """All adjacent block pairs.

        Returns tuples ``(i, j, shared_length, d_i, d_j)`` with ``i < j``,
        shared length in mm and center-to-edge distances in mm.
        """
        pairs = []
        for i, a in enumerate(self.blocks):
            for j in range(i + 1, len(self.blocks)):
                length, da, db = a.shared_edge(self.blocks[j])
                if length > 0:
                    pairs.append((i, j, length, da, db))
        return pairs

    def merged_with(self, other: "Floorplan") -> "Floorplan":
        """A new floorplan containing the blocks of both."""
        return Floorplan(self.blocks + other.blocks)
