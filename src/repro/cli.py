"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro list                      # workloads, policies, benchmarks
    python -m repro run -w workload7 -p distributed-dvfs-sensor -d 0.1
    python -m repro run --scenario mesh16 -p distributed-dvfs-none -d 0.05
    python -m repro run -p dvfs-dist-none --events-out events.jsonl --profile
    python -m repro run -p global-dvfs-none --fault-spec faults.json
    python -m repro run -p dvfs-dist-none --sample-period 1e-3 --telemetry-out out/run
    python -m repro report out/run [--html dash.html]
    python -m repro report --diff out/runA out/runB
    python -m repro compare -w workload7 -d 0.1 [-o results.json]
    python -m repro --jobs 4 experiment table5 [-d 0.2]
    python -m repro --jobs 4 robustness -d 0.1 [--guards] [-o table.txt]
    python -m repro profile -w workload7 -d 0.05
    python -m repro trace gzip -o gzip.npz [-d 0.25]
    python -m repro trace spans.json [--chrome-out chrome.json]
    python -m repro cache [--clear]
    python -m repro bench [--short] [--check BENCH_engine.json]
    python -m repro serve [--port 8023] [--serve-workers 4]
    python -m repro serve-bench [--check BENCH_serve.json]

``run`` simulates one (workload, policy) pair, optionally under a JSON
fault specification (see ``docs/MODELING.md`` section 8) and optionally
on a named chip scenario (``--scenario cmp4|mesh16|mesh64|biglittle4+4``,
see ``docs/SCENARIOS.md``; the workload mix tiles across the scenario's
cores); ``compare``
runs all 12 taxonomy cells on one workload and prints the comparison;
``experiment`` regenerates one of the paper's tables/figures;
``robustness`` sweeps injected-fault severities across the policy
taxonomy and prints the degradation table; ``profile`` times the
engine's step sections per policy; ``trace`` generates and saves a
benchmark power trace — or, given a span JSON file saved from the serve
``/jobs/<id>/trace`` endpoint, renders the distributed trace as an
ASCII waterfall (``--chrome-out`` additionally exports it for
Perfetto); ``cache`` inspects or clears the on-disk result
cache; ``bench`` measures engine throughput (steps/second per policy)
and writes — or regression-checks against — the tracked
``BENCH_engine.json`` baseline (see ``docs/PERFORMANCE.md``);
``serve`` runs the async thermal-simulation-as-a-service HTTP server
(job queue + worker pool over the same runner/cache substrate) and
``serve-bench`` load-tests one server process and writes — or
regression-checks against — the tracked ``BENCH_serve.json`` latency
artifact (see ``docs/SERVING.md``).

Observability: ``run --events-out FILE`` exports the run's typed event
log (DVFS transitions, stop-go trips, migrations, OS ticks, PROCHOT
trips, emergencies) as JSONL and prints the per-type counts;
``run --profile`` prints the engine section-timing table (add
``--trace-out FILE`` for a Perfetto-loadable Chrome trace);
``run --sample-period S`` attaches the fusion-aware telemetry sampler
and ``--telemetry-out PREFIX`` writes the run's observability bundle
(result + time series + Prometheus snapshot + events); ``report``
renders a bundle as an ASCII or ``--html`` dashboard and ``report
--diff A B`` compares two bundles metric-by-metric; ``compare
--trace-out FILE`` exports the batch's per-worker spans as a Chrome
trace; the global ``--log-level debug|info|warning|error`` flag turns
on structured logging on stderr. See ``docs/OBSERVABILITY.md``.

The global ``--jobs N`` flag fans independent simulations out over N
worker processes (``--jobs 0`` = all cores), and results are cached
on disk (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-dtm``) keyed by
configuration + policy + workload + code version, so re-running a
command only simulates changed points. ``--no-cache`` disables the disk
cache for one invocation. Parallel runs produce bit-identical output to
serial ones. ``--backend fleet`` batches all compatible points of a
sweep into one vectorised in-process engine instead of a process pool —
same results bit-for-bit, typically an order of magnitude faster for
policy/threshold sweeps and fault/noise campaigns (the engine replays
each member's private RNG streams in step order); ``--fleet-chunk N``
streams oversized campaigns through the engine N points at a time.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.taxonomy import ALL_POLICY_SPECS, spec_by_key
from repro.experiments.common import get_default_runner, set_default_runner
from repro.experiments.robustness import SEVERITIES as ROBUSTNESS_SEVERITIES
from repro.faults import load_fault_spec_file
from repro.obs import (
    LOG_LEVELS,
    RunEventLog,
    StepProfiler,
    configure_logging,
    get_logger,
)
from repro.sim.bench import add_bench_arguments, run_from_args as run_bench
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.report import comparison_report, save_results
from repro.sim.runner import ParallelRunner, ResultCache
from repro.scenarios import SCENARIOS, get_scenario, scenario_names
from repro.sim.workloads import ALL_WORKLOADS, get_workload, tile_workload
from repro.uarch.benchmarks import ALL_BENCHMARKS
from repro.uarch.tracegen import generate_trace
from repro.uarch.trace_io import save_trace

logger = get_logger(__name__)

#: Experiment modules addressable from the CLI.
EXPERIMENTS = (
    "table1", "table5", "table6", "table7", "table8",
    "figure3", "figure5", "figure7", "ablations", "extensions",
    "robustness", "manycore",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Techniques for Multicore Thermal Management' "
            "(Donald & Martonosi, ISCA 2006)"
        ),
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for independent simulations (0 = all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--backend", choices=("pool", "fleet"), default="pool",
        help="execution backend for independent simulations: 'pool' "
             "fans points out over worker processes; 'fleet' steps all "
             "compatible points of a batch together in one vectorised "
             "in-process engine (bit-identical results; incompatible "
             "points fall back to the pool automatically)",
    )
    parser.add_argument(
        "--fleet-chunk", type=int, default=None, metavar="N",
        help="with --backend fleet, stream eligible points through the "
             "batched engine in chunks of N (default: one unbounded "
             "batch); bounds campaign memory without changing results",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="warning",
        help="structured-logging verbosity on stderr (default: warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, policies and benchmarks")

    run = sub.add_parser("run", help="simulate one workload under one policy")
    run.add_argument("-w", "--workload", default="workload7")
    run.add_argument(
        "-p", "--policy", default="distributed-dvfs-sensor",
        help="policy key (see 'repro list'), or 'none' for unthrottled",
    )
    run.add_argument("-d", "--duration", type=float, default=0.1,
                     help="silicon seconds to simulate")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--scenario", default=None, choices=scenario_names(),
        help="simulate a named chip scenario (docs/SCENARIOS.md) instead "
             "of the paper's 4-core CMP; the workload mix is tiled "
             "across the scenario's cores",
    )
    run.add_argument(
        "--events-out", default=None, metavar="FILE",
        help="capture the run's typed event log and write it as JSONL",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="time the engine's step sections and print the table",
    )
    run.add_argument(
        "--sample-period", type=float, default=None, metavar="SECONDS",
        help="attach the telemetry sampler at this silicon-time period "
             "(fusion-aware: sampled runs keep the fused fast path)",
    )
    run.add_argument(
        "--telemetry-out", default=None, metavar="PREFIX",
        help="write the run's observability bundle (result + telemetry "
             "series + Prometheus snapshot [+ events]) under PREFIX; "
             "implies --sample-period 1e-3 unless given",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the profiled engine sections as Chrome trace-event "
             "JSON (requires --profile)",
    )
    run.add_argument(
        "--fault-spec", default=None, metavar="FILE",
        help="inject faults from a JSON fault specification "
             "(docs/MODELING.md section 8); prints the fault/guard "
             "accounting after the run",
    )

    profile = sub.add_parser(
        "profile", help="time the engine's step sections per policy"
    )
    profile.add_argument("-w", "--workload", default="workload7")
    profile.add_argument("-d", "--duration", type=float, default=0.05)
    profile.add_argument(
        "-p", "--policies", nargs="*", default=None, metavar="KEY",
        help="policy keys to profile ('none' = unthrottled; default: a "
             "representative policy from each taxonomy class)",
    )

    report = sub.add_parser(
        "report",
        help="render a run-observability bundle as a dashboard, or diff "
             "two bundles",
    )
    report.add_argument(
        "prefix", nargs="?", default=None,
        help="bundle prefix written by 'run --telemetry-out PREFIX'",
    )
    report.add_argument(
        "--html", default=None, metavar="FILE",
        help="write a self-contained HTML dashboard instead of ASCII",
    )
    report.add_argument(
        "--diff", nargs=2, default=None, metavar=("A", "B"),
        help="compare two bundle prefixes metric-by-metric",
    )
    report.add_argument(
        "--tolerance", type=float, default=1e-9,
        help="relative tolerance before a --diff metric is flagged "
             "(default: 1e-9)",
    )
    report.add_argument(
        "--width", type=int, default=60,
        help="sparkline width of the ASCII dashboard (default: 60)",
    )

    compare = sub.add_parser(
        "compare", help="run all 12 policies on one workload"
    )
    compare.add_argument("-w", "--workload", default="workload7")
    compare.add_argument("-d", "--duration", type=float, default=0.1)
    compare.add_argument("-o", "--output", default=None,
                         help="save per-run results as JSON")
    compare.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="export the batch's per-worker execution spans as Chrome "
             "trace-event JSON",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("-d", "--duration", type=float, default=None,
                            help="override the simulation horizon")

    robustness = sub.add_parser(
        "robustness",
        help="sweep injected-fault severities across the policy taxonomy",
    )
    robustness.add_argument("-w", "--workload", default="workload7")
    robustness.add_argument("-d", "--duration", type=float, default=0.1)
    robustness.add_argument(
        "-p", "--policies", nargs="*", default=None, metavar="KEY",
        help="policy keys to sweep (default: all 12 taxonomy cells)",
    )
    robustness.add_argument(
        "--severities", nargs="+", default=None, metavar="LEVEL",
        choices=ROBUSTNESS_SEVERITIES,
        help=f"severity levels to run (default: {' '.join(ROBUSTNESS_SEVERITIES)})",
    )
    robustness.add_argument(
        "--guards", action="store_true",
        help="also run every faulted point with the sensor-sanity guard "
             "layer enabled and print the guarded table",
    )
    robustness.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="also write the rendered degradation table to FILE",
    )

    trace = sub.add_parser(
        "trace",
        help="generate and save a power trace, or render a distributed "
             "trace (a span file from /jobs/<id>/trace) as a waterfall",
    )
    trace.add_argument(
        "benchmark", metavar="BENCHMARK|SPANS",
        help="a benchmark name (generates a power trace; requires -o) "
             "or the path of a span JSON file fetched from the serve "
             "endpoint /jobs/<id>/trace",
    )
    trace.add_argument(
        "-o", "--output", default=None,
        help="output .npz path (power-trace mode only)",
    )
    trace.add_argument("-d", "--duration", type=float, default=0.25)
    trace.add_argument(
        "--chrome-out", default=None, metavar="FILE",
        help="also export the rendered spans as Chrome trace-event JSON",
    )
    trace.add_argument(
        "--width", type=int, default=48, metavar="COLS",
        help="waterfall bar width in columns (default: 48)",
    )

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cached result")

    bench = sub.add_parser(
        "bench",
        help="measure engine throughput (steps/s per policy) and write "
             "or check BENCH_engine.json",
    )
    add_bench_arguments(bench)

    serve = sub.add_parser(
        "serve",
        help="run the async HTTP job server (thermal simulation as a "
             "service; see docs/SERVING.md)",
    )
    from repro.serve.server import add_serve_arguments

    add_serve_arguments(serve)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="load-test a serve process (cold vs warm cache) and write "
             "or check BENCH_serve.json",
    )
    from repro.serve.bench import add_serve_bench_arguments

    add_serve_bench_arguments(serve_bench)

    return parser


def _cmd_list() -> int:
    print("Workloads (paper Table 4):")
    for w in ALL_WORKLOADS:
        print(f"  {w.name:12s} {w.label}")
    print("\nPolicies (paper Table 2) — use the key with 'repro run -p':")
    for spec in ALL_POLICY_SPECS:
        marker = "  <- baseline" if spec.is_baseline else ""
        print(f"  {spec.key:35s} {spec.name}{marker}")
    print("\nBenchmarks (synthetic SPEC CPU2000 profiles):")
    print("  " + ", ".join(sorted(ALL_BENCHMARKS)))
    print("\nScenarios (docs/SCENARIOS.md) — use with 'repro run --scenario':")
    for s in SCENARIOS.values():
        classes = "+".join(
            sorted({c.name for c in s.core_classes})
        )
        print(
            f"  {s.name:14s} {s.rows}x{s.cols} {s.topology:4s} "
            f"{classes:12s} {s.tech.name}"
        )
    return 0


def _config(duration: float, seed: Optional[int] = None) -> SimulationConfig:
    kwargs = {"duration_s": duration}
    if seed is not None:
        kwargs["seed"] = seed
    return SimulationConfig(**kwargs)


def _cmd_run(args) -> int:
    from dataclasses import replace

    from repro.obs import TelemetrySampler

    if args.trace_out and not args.profile:
        print("error: --trace-out requires --profile", file=sys.stderr)
        return 2
    workload = get_workload(args.workload)
    spec = None if args.policy == "none" else spec_by_key(args.policy)
    config = _config(args.duration, args.seed)
    if args.scenario:
        scenario = get_scenario(args.scenario)
        config = replace(
            config,
            machine=scenario.machine_config(),
            scenario=scenario,
        )
        workload = tile_workload(workload, scenario.n_cores)
    if args.fault_spec:
        plan, guard = load_fault_spec_file(args.fault_spec)
        config = replace(config, fault_plan=plan, guard=guard)
    event_log = RunEventLog() if args.events_out else None
    profiler = StepProfiler() if args.profile else None
    sample_period = args.sample_period
    if sample_period is None and args.telemetry_out:
        sample_period = 1e-3
    sampler = (
        TelemetrySampler(sample_period) if sample_period is not None else None
    )
    if event_log is not None or profiler is not None or sampler is not None:
        # Observability capture needs the simulation to actually run, so
        # instrumented runs execute inline instead of consulting the
        # result cache (results are identical either way).
        result = run_workload(
            workload, spec, config,
            event_log=event_log, profiler=profiler, telemetry=sampler,
        )
    else:
        result = get_default_runner().run_workload(workload, spec, config)
    print(result.summary())
    print(
        f"  instructions={result.instructions:.3e}  "
        f"emergencies={result.emergency_s * 1000:.2f} ms  "
        f"transitions={result.dvfs_transitions}  trips={result.stopgo_trips}"
    )
    if result.faults is not None:
        f = result.faults
        print(
            f"  faults: sensor-samples={f.sensor_faulted_samples}  "
            f"dvfs-rejected={f.dvfs_rejected}  dvfs-delayed={f.dvfs_delayed}  "
            f"migrations-dropped={f.migrations_dropped}"
        )
        print(
            f"  guards: trips={f.guard_trips}  "
            f"fallback={f.guard_fallback_s * 1000:.2f} ms"
        )
    if sampler is not None:
        summary = sampler.summary()
        print(
            f"  telemetry: {summary.samples} samples @ "
            f"{summary.sample_period_s:g} s, "
            f"{summary.instruments} instruments"
        )
    if event_log is not None:
        path = event_log.write_jsonl(args.events_out)
        counts = event_log.counts()
        print(f"\nevents: {len(event_log)} captured -> {path}")
        for name in sorted(counts):
            print(f"  {name:20s} {counts[name]}")
    if profiler is not None:
        from repro.obs import render_engine_sections

        print()
        print(render_engine_sections(profiler.totals(),
                                     title="engine sections:"))
    if args.trace_out:
        from repro.obs import profile_trace_events, write_chrome_trace

        write_chrome_trace(
            profile_trace_events(
                profiler.as_dict(),
                label=f"{args.policy} on {args.workload}",
            ),
            args.trace_out,
        )
        print(f"\nengine trace -> {args.trace_out}")
    if args.telemetry_out:
        from repro.obs import write_bundle

        paths = write_bundle(args.telemetry_out, result, sampler, event_log)
        print(f"\ntelemetry bundle ({len(paths)} files):")
        for p in paths:
            print(f"  {p}")
        print(f"render it with: repro report {args.telemetry_out}")
    return 0


#: Default policy set for ``repro profile``: one representative from each
#: taxonomy class (plus the unthrottled reference).
PROFILE_DEFAULT_POLICIES = (
    "none",
    "global-stop-go-none",
    "distributed-dvfs-none",
    "distributed-stop-go-counter",
    "distributed-dvfs-sensor",
)


def _cmd_profile(args) -> int:
    workload = get_workload(args.workload)
    keys = (
        list(args.policies)
        if args.policies
        else list(PROFILE_DEFAULT_POLICIES)
    )
    from repro.obs import render_engine_sections

    config = _config(args.duration)
    print(
        f"engine step sections on {workload.name} "
        f"({args.duration:g} s of silicon time), canonical order:\n"
    )
    for key in keys:
        spec = None if key == "none" else spec_by_key(key)
        profiler = StepProfiler()
        run_workload(workload, spec, config, profiler=profiler)
        print(render_engine_sections(
            profiler.totals(), title=f"{spec.key if spec else 'unthrottled'}:"
        ))
        print()
    return 0


def _cmd_report(args) -> int:
    from repro.obs import (
        diff_metrics,
        load_bundle,
        render_ascii,
        render_diff,
        render_html,
    )

    if args.diff:
        a, b = (load_bundle(p) for p in args.diff)
        deltas = diff_metrics(a.result, b.result, rel_tol=args.tolerance)
        print(render_diff(deltas, a.label, b.label), end="")
        return 0
    if not args.prefix:
        print(
            "error: report needs a bundle prefix (or --diff A B)",
            file=sys.stderr,
        )
        return 2
    bundle = load_bundle(args.prefix)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(bundle))
        print(f"dashboard -> {args.html}")
        return 0
    print(render_ascii(bundle, width=args.width), end="")
    return 0


def _cmd_compare(args) -> int:
    from repro.sim.runner import RunPoint

    workload = get_workload(args.workload)
    config = _config(args.duration)
    results = get_default_runner().run_points(
        [RunPoint(workload, spec, config) for spec in ALL_POLICY_SPECS]
    )
    for result in results:
        print(result.summary())
    print()
    print(
        comparison_report(
            results, title=f"All 12 policies on {workload.label}"
        )
    )
    if args.output:
        path = save_results(results, args.output)
        print(f"\nresults saved to {path}")
    if args.trace_out:
        from repro.obs import runner_trace_events, write_chrome_trace

        events = runner_trace_events(get_default_runner().stats.reports)
        write_chrome_trace(events, args.trace_out)
        print(
            f"runner trace ({len(events)} events) -> {args.trace_out}"
        )
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    if args.duration is not None:
        from repro.experiments.common import default_config

        config = default_config(duration_s=args.duration)
        if args.name in ("ablations", "extensions"):
            # These expose multiple studies; main() handles its own config,
            # so fall through with a note.
            print(f"(duration override ignored for {args.name}; using module default)")
            module.main()
        elif args.name == "table1":
            print(module.render(module.compute()))
        else:
            print(module.render(module.compute(config)))
        return 0
    module.main()
    return 0


def _cmd_robustness(args) -> int:
    from repro.experiments import robustness
    from repro.experiments.common import default_config

    workload = get_workload(args.workload)
    specs = (
        [spec_by_key(k) for k in args.policies]
        if args.policies
        else None
    )
    severities = (
        tuple(args.severities) if args.severities else robustness.SEVERITIES
    )
    report = robustness.compute(
        config=default_config(duration_s=args.duration),
        specs=specs,
        severities=severities,
        workload=workload,
        include_guards=args.guards,
    )
    text = robustness.render(report)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"\ndegradation table saved to {args.output}")
    return 0


def _cmd_trace(args) -> int:
    # Both rejection paths raise SystemExit(2), matching what argparse
    # itself did before this subcommand became dual-mode (`choices=` on
    # the positional, `required=True` on -o).
    if args.benchmark in ALL_BENCHMARKS:
        if not args.output:
            print(
                "error: -o/--output is required when generating a power "
                "trace",
                file=sys.stderr,
            )
            raise SystemExit(2)
        trace = generate_trace(args.benchmark, duration_s=args.duration)
        path = save_trace(trace, args.output)
        print(
            f"{args.benchmark}: {trace.n_samples} samples, "
            f"{trace.duration_s * 1000:.1f} ms, mean core power "
            f"{trace.mean_core_power_w:.1f} W -> {path}"
        )
        return 0
    import os.path

    if os.path.exists(args.benchmark):
        return _render_span_file(args)
    print(
        f"error: {args.benchmark!r} is neither a benchmark "
        f"({', '.join(sorted(ALL_BENCHMARKS))}) nor a span file",
        file=sys.stderr,
    )
    raise SystemExit(2)


def _render_span_file(args) -> int:
    """Render a ``/jobs/<id>/trace`` span document as an ASCII waterfall."""
    import json

    from repro.obs.tracing import (
        render_waterfall,
        spans_from_payload,
        validate_trace,
    )

    with open(args.benchmark, encoding="utf-8") as fh:
        payload = json.load(fh)
    try:
        spans = spans_from_payload(payload)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_waterfall(spans, width=args.width), end="")
    problems = validate_trace(spans)
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    if args.chrome_out:
        from repro.obs import span_trace_events, write_chrome_trace

        write_chrome_trace(span_trace_events(spans), args.chrome_out)
        print(f"chrome trace -> {args.chrome_out}")
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache()
    print(f"cache directory: {cache.root}")
    if args.clear:
        print(f"cleared {cache.clear()} cached results")
    else:
        print(f"cached results: {len(cache)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0 (0 = all cores), got {args.jobs}")
    configure_logging(args.log_level)
    logger.debug("command=%s argv=%s", args.command, argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "report":
        # Pure file rendering: no simulations, no runner, no cache.
        return _cmd_report(args)
    if args.command == "bench":
        # Timed inline runs: never touches the result cache or the
        # parallel runner (timings must come from this process).
        return run_bench(args)
    if args.command == "serve":
        # The server owns its runners and (sharded) cache; it must not
        # inherit this process's default runner.
        from repro.serve.server import run_server, serve_config_from_args

        return run_server(serve_config_from_args(args))
    if args.command == "serve-bench":
        from repro.serve.bench import run_from_args as run_serve_bench

        return run_serve_bench(args)

    runner = ParallelRunner(
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(),
        backend=args.backend,
        fleet_chunk=args.fleet_chunk,
    )
    previous = set_default_runner(runner)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "robustness":
            return _cmd_robustness(args)
        if args.command == "trace":
            return _cmd_trace(args)
        raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
    finally:
        set_default_runner(previous)
        stats = runner.stats
        if stats.points:
            print(
                f"[runner] {stats.summary()} "
                f"(jobs={runner.jobs}, cache="
                f"{'off' if runner.cache is None else runner.cache.root})",
                file=sys.stderr,
            )
        if stats.section_totals:
            print(stats.profile_summary(), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
