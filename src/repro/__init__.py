"""repro — a reproduction of "Techniques for Multicore Thermal
Management: Classification and New Exploration" (Donald & Martonosi,
ISCA 2006).

The package implements the paper's full stack in Python:

* :mod:`repro.uarch` — a Turandot/PowerTimer-style performance & power
  substrate producing per-unit power traces for 22 synthetic SPEC CPU2000
  benchmark models;
* :mod:`repro.thermal` — a HotSpot-style compact thermal RC model
  (floorplans, package, transient/steady solvers, leakage, sensors);
* :mod:`repro.control` — formal control tools (transfer functions, c2d,
  stability, the paper's PI design);
* :mod:`repro.osmodel` — processes, scheduler, timer interrupts and the
  thread-core thermal table;
* :mod:`repro.core` — the DTM policy taxonomy: stop-go and PI-DVFS
  throttling (global/distributed) and counter-/sensor-based migration;
* :mod:`repro.sim` — the thermal/timing simulation engine and the Table 4
  workloads;
* :mod:`repro.experiments` — regeneration of every table and figure in
  the paper's evaluation.

Quickstart::

    from repro import SimulationConfig, run_workload, get_workload, spec_by_key

    workload = get_workload("workload7")           # gzip-twolf-ammp-lucas
    spec = spec_by_key("distributed-dvfs-sensor")  # best policy in the paper
    result = run_workload(workload, spec, SimulationConfig(duration_s=0.1))
    print(result.summary())
"""

from repro.core.taxonomy import (
    ALL_POLICY_SPECS,
    BASELINE_SPEC,
    MigrationKind,
    PolicySpec,
    Scope,
    ThrottleKind,
    build_policy,
    spec_by_key,
)
from repro.obs import (
    RunEventLog,
    StepProfiler,
    configure_logging,
    get_logger,
)
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator, run_workload
from repro.sim.results import RunResult, TimeSeries
from repro.sim.runner import ParallelRunner, ResultCache, RunPoint, config_hash
from repro.sim.workloads import ALL_WORKLOADS, Workload, get_workload

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICY_SPECS",
    "ALL_WORKLOADS",
    "BASELINE_SPEC",
    "MigrationKind",
    "ParallelRunner",
    "PolicySpec",
    "ResultCache",
    "RunEventLog",
    "RunPoint",
    "RunResult",
    "Scope",
    "StepProfiler",
    "SimulationConfig",
    "ThermalTimingSimulator",
    "ThrottleKind",
    "TimeSeries",
    "Workload",
    "__version__",
    "build_policy",
    "config_hash",
    "configure_logging",
    "get_logger",
    "get_workload",
    "run_workload",
    "spec_by_key",
]
