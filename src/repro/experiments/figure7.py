"""Figure 7: per-workload performance delta of the two migration policies
in conjunction with distributed DVFS ("best-performing practical policy of
the original four"), versus the non-migration distributed DVFS policy.

The paper's bars range from about -2% to +8%: migration helps most of the
mixed workloads a little and hurts a few, because both mechanisms are
approximation algorithms whose assumptions sometimes misfire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.taxonomy import MigrationKind, PolicySpec, Scope, ThrottleKind
from repro.experiments.common import default_config, run_matrix
from repro.sim.engine import SimulationConfig
from repro.sim.workloads import ALL_WORKLOADS, Workload
from repro.util.ascii_plot import bar_chart
from repro.util.tables import render_table

_BASE = PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.NONE)
_COUNTER = PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.COUNTER)
_SENSOR = PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.SENSOR)


@dataclass(frozen=True)
class Figure7Row:
    """One workload's two bars (percent deltas vs. non-migration)."""

    workload: str
    label: str
    counter_delta_pct: float
    sensor_delta_pct: float


def compute(
    config: Optional[SimulationConfig] = None,
    workloads: Optional[Sequence[Workload]] = None,
) -> List[Figure7Row]:
    """Per-workload migration deltas on distributed DVFS."""
    config = config or default_config()
    workloads = list(workloads) if workloads is not None else list(ALL_WORKLOADS)
    grid = run_matrix([_BASE, _COUNTER, _SENSOR], workloads, config)
    rows = []
    for w in workloads:
        base = grid[_BASE.key][w.name].bips
        rows.append(
            Figure7Row(
                workload=w.name,
                label=w.label,
                counter_delta_pct=100.0 * (grid[_COUNTER.key][w.name].bips / base - 1.0),
                sensor_delta_pct=100.0 * (grid[_SENSOR.key][w.name].bips / base - 1.0),
            )
        )
    return rows


def render(rows: Sequence[Figure7Row]) -> str:
    """The figure's data as a table plus a delta chart."""
    table = render_table(
        ["workload", "counter-based delta", "sensor-based delta"],
        [
            [r.label, f"{r.counter_delta_pct:+.2f}%", f"{r.sensor_delta_pct:+.2f}%"]
            for r in rows
        ],
        title=(
            "Figure 7: per-workload gains/losses of migration policies on "
            "distributed DVFS"
        ),
    )
    shift = max(abs(r.sensor_delta_pct) for r in rows) + 1.0
    chart = bar_chart(
        [r.workload for r in rows],
        [r.sensor_delta_pct + shift for r in rows],
        reference=shift,
        unit="",
    )
    return (
        table
        + f"\n\nsensor-based deltas, shifted by +{shift:.1f} "
        "(| marks zero):\n" + chart
    )


def main() -> str:
    """Compute and print the figure data."""
    text = render(compute())
    print(text)
    return text


if __name__ == "__main__":
    main()
