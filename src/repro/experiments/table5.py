"""Table 5: average BIPS, duty cycle and relative throughput of the four
non-migration policies across all 12 workloads.

Paper values for reference: global stop-go 2.79 BIPS / 19.77% / 0.62X;
distributed stop-go 4.53 / 32.57% / 1.00X; global DVFS 9.36 / 66.49% /
2.07X; distributed DVFS 11.36 / 81.02% / 2.51X.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.taxonomy import (
    MigrationKind,
    PolicySpec,
    Scope,
    ThrottleKind,
)
from repro.experiments.common import (
    PolicyAverages,
    average_metrics,
    default_config,
    run_matrix,
)
from repro.sim.engine import SimulationConfig
from repro.sim.workloads import Workload
from repro.util.tables import render_table

#: The four non-migration policies, in the paper's row order.
TABLE5_SPECS = (
    PolicySpec(ThrottleKind.STOP_GO, Scope.GLOBAL, MigrationKind.NONE),
    PolicySpec(ThrottleKind.STOP_GO, Scope.DISTRIBUTED, MigrationKind.NONE),
    PolicySpec(ThrottleKind.DVFS, Scope.GLOBAL, MigrationKind.NONE),
    PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.NONE),
)

#: The paper's published row values, keyed like our rows (for EXPERIMENTS.md).
PAPER_VALUES = {
    "global-stop-go-none": (2.79, 0.1977, 0.62),
    "distributed-stop-go-none": (4.53, 0.3257, 1.00),
    "global-dvfs-none": (9.36, 0.6649, 2.07),
    "distributed-dvfs-none": (11.36, 0.8102, 2.51),
}


def compute(
    config: Optional[SimulationConfig] = None,
    workloads: Optional[Sequence[Workload]] = None,
) -> List[PolicyAverages]:
    """Run (or fetch) the Table 5 grid and return one row per policy."""
    config = config or default_config()
    grid = run_matrix(list(TABLE5_SPECS), workloads, config)
    baseline = grid["distributed-stop-go-none"]
    return [
        average_metrics(grid[s.key], baseline, s) for s in TABLE5_SPECS
    ]


def render(rows: Sequence[PolicyAverages]) -> str:
    """Paper-style Table 5."""
    return render_table(
        ["policy", "BIPS", "duty cycle", "relative throughput"],
        [
            [r.policy_name, f"{r.bips:.2f}", f"{r.duty_cycle:.2%}",
             f"{r.relative_throughput:.2f}"]
            for r in rows
        ],
        title="Table 5: average throughput and duty cycle, non-migration policies",
    )


def main() -> str:
    """Compute and print the table (entry point for scripts)."""
    text = render(compute())
    print(text)
    return text


if __name__ == "__main__":
    main()
