"""Extension study: asymmetric cores (the paper's named future axis).

Section 9 of the paper: "SMT and asymmetric cores are two possible
extensions" to the taxonomy. This module explores the asymmetric-cores
axis with the machinery already in place: cores that share one
microarchitecture (identical traces and power) but occupy different
silicon areas, so a big core runs a given thread at lower power density —
and therefore cooler — than a small one.

Two questions, each answered by a function:

* :func:`placement_sensitivity` — with *no* migration, how much does it
  matter whether the hot threads start on the big cores or the small
  ones?
* :func:`asymmetric_migration_study` — can the migration policies recover
  a bad initial placement? Sensor-based migration is the interesting
  case: its thread-core thermal table learns per-core biases, which on an
  asymmetric chip are large and real (counter-based intensity is
  core-blind by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.taxonomy import MigrationKind, PolicySpec, Scope, ThrottleKind
from repro.experiments.common import default_config
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.workloads import Workload
from repro.util.tables import render_table

#: Big-big-small-small configuration with the same total core area as
#: four uniform 4 mm cores (2 * 5.0^2 + 2 * 2.65^2 ~ 64 mm^2).
ASYMMETRIC_SIZES: Tuple[float, ...] = (5.0, 5.0, 2.65, 2.65)

#: The study workload: two hot programs (gzip, sixtrack) + two cool ones.
STUDY_BENCHMARKS: Tuple[str, ...] = ("gzip", "sixtrack", "mcf", "swim")

_DDV = PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.NONE)
_DDV_SENSOR = PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.SENSOR)
_DDV_COUNTER = PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.COUNTER)


@dataclass(frozen=True)
class ExtensionRow:
    """One configuration of the asymmetric-cores study."""

    label: str
    bips: float
    duty_cycle: float
    migrations: int
    max_temp_c: float


def _run(benchmarks: Sequence[str], spec, config: SimulationConfig,
         label: str) -> ExtensionRow:
    workload = Workload("asym-study", tuple(benchmarks))
    result = run_workload(workload, spec, config)
    return ExtensionRow(
        label=label,
        bips=result.bips,
        duty_cycle=result.duty_cycle,
        migrations=result.migrations,
        max_temp_c=result.max_temp_c,
    )


def placement_sensitivity(
    config: Optional[SimulationConfig] = None,
) -> List[ExtensionRow]:
    """Hot-threads-on-big-cores vs. hot-threads-on-small-cores, no migration.

    On the symmetric chip the two placements are equivalent by symmetry
    (up to edge effects); on the asymmetric chip the good placement runs
    the hot threads at lower density and wins.
    """
    config = config or default_config(duration_s=0.2)
    asym = replace(config, core_sizes_mm=ASYMMETRIC_SIZES)
    good = STUDY_BENCHMARKS  # hot programs on cores 0/1 (the big ones)
    bad = (
        STUDY_BENCHMARKS[2], STUDY_BENCHMARKS[3],
        STUDY_BENCHMARKS[0], STUDY_BENCHMARKS[1],
    )
    return [
        _run(good, _DDV, config, "symmetric, hot on cores 0/1"),
        _run(bad, _DDV, config, "symmetric, hot on cores 2/3"),
        _run(good, _DDV, asym, "asymmetric, hot on BIG cores"),
        _run(bad, _DDV, asym, "asymmetric, hot on SMALL cores"),
    ]


def asymmetric_migration_study(
    config: Optional[SimulationConfig] = None,
) -> List[ExtensionRow]:
    """Can migration recover a hot-on-small placement?

    All rows start from the *bad* placement (hot threads on the small
    cores) on the asymmetric chip.
    """
    config = config or default_config(duration_s=0.2)
    asym = replace(config, core_sizes_mm=ASYMMETRIC_SIZES)
    bad = (
        STUDY_BENCHMARKS[2], STUDY_BENCHMARKS[3],
        STUDY_BENCHMARKS[0], STUDY_BENCHMARKS[1],
    )
    return [
        _run(bad, _DDV, asym, "no migration"),
        _run(bad, _DDV_COUNTER, asym, "counter-based migration"),
        _run(bad, _DDV_SENSOR, asym, "sensor-based migration"),
    ]


#: SMT-2 chip: two cores holding the same total area as four 4 mm cores.
SMT_CORE_SIZES: Tuple[float, ...] = (5.657, 5.657)


def smt_study(
    config: Optional[SimulationConfig] = None,
) -> List[ExtensionRow]:
    """CMP-4 vs. 2-way-SMT-2 at equal silicon area (paper Section 9).

    Four threads (gzip, sixtrack, mcf, swim) run either one-per-core on
    the 4-core chip, or as merged pairs on a 2-core chip of equal total
    core area. Two pairings are studied:

    * *complementary* — each hot thread shares its core with a cool one
      (gzip+swim, sixtrack+mcf);
    * *aligned* — the hot threads share one core (gzip+sixtrack) and the
      cool threads the other (mcf+swim).

    The thermal hazard SMT introduces is visible in the merged profiles:
    an int+fp pair stresses both register files of one core at once,
    leaving no cool unit for the DTM policies to exploit.
    """
    from dataclasses import replace as dc_replace

    from repro.sim.engine import ThermalTimingSimulator
    from repro.uarch.benchmarks import get_benchmark
    from repro.uarch.config import MachineConfig
    from repro.uarch.smt import merge_profiles

    config = config or default_config(duration_s=0.2)
    rows = [
        _run(STUDY_BENCHMARKS, _DDV, config, "CMP-4: one thread per core")
    ]

    smt_machine = MachineConfig(n_cores=2)
    smt_config = dc_replace(
        config, machine=smt_machine, core_sizes_mm=SMT_CORE_SIZES
    )
    gzip, sixtrack, mcf, swim = (
        get_benchmark(n) for n in STUDY_BENCHMARKS
    )
    pairings = [
        ("SMT-2, complementary pairs",
         [merge_profiles(gzip, swim), merge_profiles(sixtrack, mcf)]),
        ("SMT-2, aligned pairs (hot+hot)",
         [merge_profiles(gzip, sixtrack), merge_profiles(mcf, swim)]),
    ]
    for label, profiles in pairings:
        sim = ThermalTimingSimulator(profiles, _DDV, smt_config)
        result = sim.run()
        rows.append(
            ExtensionRow(
                label=label,
                bips=result.bips,
                duty_cycle=result.duty_cycle,
                migrations=result.migrations,
                max_temp_c=result.max_temp_c,
            )
        )
    return rows


def render(rows: Sequence[ExtensionRow], title: str) -> str:
    """Render one study as a table."""
    return render_table(
        ["configuration", "BIPS", "duty cycle", "migrations", "max T (C)"],
        [
            [r.label, f"{r.bips:.2f}", f"{r.duty_cycle:.2%}",
             str(r.migrations), f"{r.max_temp_c:.1f}"]
            for r in rows
        ],
        title=title,
    )


def main() -> str:
    """Run both studies at a reduced horizon and print them."""
    config = default_config(duration_s=0.2)
    parts = [
        render(
            placement_sensitivity(config),
            "Extension: asymmetric cores — placement sensitivity",
        ),
        render(
            asymmetric_migration_study(config),
            "Extension: asymmetric cores — migration recovery",
        ),
        render(
            smt_study(config),
            "Extension: SMT vs CMP at equal area",
        ),
    ]
    text = "\n\n".join(parts)
    print(text)
    return text


if __name__ == "__main__":
    main()
