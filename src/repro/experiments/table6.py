"""Table 6: counter-based migration on top of each base policy.

Paper values: stop-go + migration 5.34 BIPS / 37.93% / 1.18X / 1.91
speedup over non-migration; dist stop-go 9.15 / 65.12% / 2.02X / 2.02;
global DVFS 9.88 / 70.05% / 2.18X / 1.06; dist DVFS 11.62 / 82.42% /
2.57X / 1.02.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.taxonomy import MigrationKind, PolicySpec, Scope, ThrottleKind
from repro.experiments.common import (
    average_metrics,
    default_config,
    run_matrix,
)
from repro.sim.engine import SimulationConfig
from repro.sim.workloads import Workload
from repro.util.tables import render_table

#: Base (non-migration) policies in the paper's Table 6 row order.
BASE_SPECS = (
    PolicySpec(ThrottleKind.STOP_GO, Scope.GLOBAL, MigrationKind.NONE),
    PolicySpec(ThrottleKind.STOP_GO, Scope.DISTRIBUTED, MigrationKind.NONE),
    PolicySpec(ThrottleKind.DVFS, Scope.GLOBAL, MigrationKind.NONE),
    PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.NONE),
)


def with_migration(spec: PolicySpec, kind: MigrationKind) -> PolicySpec:
    """The same base policy with a migration mechanism added."""
    return PolicySpec(spec.throttle, spec.scope, kind)


@dataclass(frozen=True)
class MigrationRow:
    """One Table 6/7 row: a migration policy and its speedups."""

    policy_name: str
    spec_key: str
    bips: float
    duty_cycle: float
    relative_throughput: float
    speedup_over_base: float
    migrations: float


def compute(
    config: Optional[SimulationConfig] = None,
    workloads: Optional[Sequence[Workload]] = None,
    kind: MigrationKind = MigrationKind.COUNTER,
) -> List[MigrationRow]:
    """Rows for migration policy ``kind`` over each base policy."""
    config = config or default_config()
    migration_specs = [with_migration(s, kind) for s in BASE_SPECS]
    grid = run_matrix(list(BASE_SPECS) + migration_specs, workloads, config)
    baseline = grid["distributed-stop-go-none"]
    rows = []
    for base, mig in zip(BASE_SPECS, migration_specs):
        avg = average_metrics(grid[mig.key], baseline, mig)
        base_avg = average_metrics(grid[base.key], baseline, base)
        rows.append(
            MigrationRow(
                policy_name=mig.name,
                spec_key=mig.key,
                bips=avg.bips,
                duty_cycle=avg.duty_cycle,
                relative_throughput=avg.relative_throughput,
                speedup_over_base=avg.bips / base_avg.bips,
                migrations=avg.migrations,
            )
        )
    return rows


def render(rows: Sequence[MigrationRow]) -> str:
    """Paper-style Table 6."""
    return render_table(
        [
            "policy",
            "BIPS",
            "duty cycle",
            "relative throughput",
            "speedup over non-migration",
        ],
        [
            [
                r.policy_name,
                f"{r.bips:.2f}",
                f"{r.duty_cycle:.2%}",
                f"{r.relative_throughput:.2f}",
                f"{r.speedup_over_base:.2f}",
            ]
            for r in rows
        ],
        title="Table 6: performance counter-based migration policies",
    )


def main() -> str:
    """Compute and print the table."""
    text = render(compute())
    print(text)
    return text


if __name__ == "__main__":
    main()
