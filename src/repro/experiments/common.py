"""Shared machinery for the experiment modules.

All of the paper's main tables and figures are views over the same grid
of simulations: 12 workloads x 12 policies. :func:`run_matrix` executes
and caches those runs so that computing Table 5, Table 6, Table 7,
Figure 3, Figure 7 and Table 8 in one session costs one pass over the
grid.

Two cache layers cooperate:

* a module-level in-memory dict (keyed by workload, policy and
  configuration) deduplicates runs within one session, exactly as
  before;
* the session's default :class:`~repro.sim.runner.ParallelRunner` —
  swappable via :func:`set_default_runner` and configured by the CLI's
  ``--jobs``/``--no-cache`` flags — optionally adds a process pool and a
  content-addressed on-disk cache underneath, so misses fan out across
  cores and survive across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.taxonomy import BASELINE_SPEC, PolicySpec
from repro.obs.logconfig import get_logger
from repro.sim.engine import SimulationConfig
from repro.sim.results import RunResult
from repro.sim.runner import ParallelRunner, RunPoint
from repro.sim.workloads import ALL_WORKLOADS, Workload

logger = get_logger(__name__)

_CACHE: Dict[Tuple, RunResult] = {}

#: Session-wide execution backend; ``jobs=1``/no disk cache by default,
#: which preserves the historical in-process serial behaviour.
_RUNNER = ParallelRunner()


def get_default_runner() -> ParallelRunner:
    """The runner every experiment driver routes its simulations through."""
    return _RUNNER


def set_default_runner(runner: ParallelRunner) -> ParallelRunner:
    """Install ``runner`` as the session default; returns the previous one."""
    global _RUNNER
    previous = _RUNNER
    _RUNNER = runner
    return previous


def default_config(duration_s: float = 0.5, **overrides) -> SimulationConfig:
    """The paper's experimental configuration (0.5 s of silicon time)."""
    return SimulationConfig(duration_s=duration_s, **overrides)


def _config_key(config: SimulationConfig) -> Tuple:
    """Cache key covering EVERY configuration field.

    ``SimulationConfig`` is a frozen dataclass of frozen dataclasses, so
    the instance itself is hashable and equality-complete — using it
    directly makes it impossible for a newly added field to silently
    alias two different configurations in the cache.
    """
    return (config,)


def _memory_key(
    workload: Workload, spec: Optional[PolicySpec], config: SimulationConfig
) -> Tuple:
    return (workload.name, spec.key if spec else "unthrottled", _config_key(config))


def clear_result_cache() -> int:
    """Drop every in-memory cached run; returns how many were discarded.

    The default runner's on-disk cache (if any) is untouched — use
    ``get_default_runner().cache.clear()`` for that.
    """
    n = len(_CACHE)
    _CACHE.clear()
    return n


def run_cached(
    workload: Workload, spec: Optional[PolicySpec], config: SimulationConfig
) -> RunResult:
    """Run (or fetch) one (workload, policy) simulation."""
    key = _memory_key(workload, spec, config)
    if key not in _CACHE:
        _CACHE[key] = _RUNNER.run_workload(workload, spec, config)
    return _CACHE[key]


def run_matrix(
    specs: Sequence[Optional[PolicySpec]],
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[SimulationConfig] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run a policy x workload grid.

    Returns ``{spec_key: {workload_name: RunResult}}``; ``None`` in
    ``specs`` denotes the unthrottled reference run. Grid cells missing
    from the in-memory cache are submitted to the default runner as one
    flat batch, so a parallel runner fans the whole remainder out at
    once instead of cell by cell.
    """
    workloads = list(workloads) if workloads is not None else list(ALL_WORKLOADS)
    config = config or default_config()
    cells = [(spec, w) for spec in specs for w in workloads]
    missing = [
        (spec, w)
        for spec, w in cells
        if _memory_key(w, spec, config) not in _CACHE
    ]
    if missing:
        logger.info(
            "run_matrix: %d of %d grid cells missing from the in-memory "
            "cache; submitting to the runner",
            len(missing),
            len(cells),
        )
        points = [RunPoint(w, spec, config) for spec, w in missing]
        for (spec, w), result in zip(missing, _RUNNER.run_points(points)):
            _CACHE[_memory_key(w, spec, config)] = result
    out: Dict[str, Dict[str, RunResult]] = {}
    for spec in specs:
        key = spec.key if spec else "unthrottled"
        out[key] = {
            w.name: _CACHE[_memory_key(w, spec, config)] for w in workloads
        }
    return out


@dataclass(frozen=True)
class PolicyAverages:
    """Workload-averaged metrics of one policy (a Table 5/6/7 row)."""

    spec_key: str
    policy_name: str
    bips: float
    duty_cycle: float
    relative_throughput: float
    emergency_s: float
    migrations: float


def average_metrics(
    results: Dict[str, RunResult],
    baseline: Dict[str, RunResult],
    spec: Optional[PolicySpec],
) -> PolicyAverages:
    """Average one policy's per-workload results against a baseline."""
    names = sorted(results)
    if sorted(baseline) != names:
        raise ValueError("results and baseline must cover the same workloads")
    n = len(names)
    if n == 0:
        raise ValueError("no workloads to average")
    bips = sum(results[w].bips for w in names) / n
    base_bips = sum(baseline[w].bips for w in names) / n
    return PolicyAverages(
        spec_key=spec.key if spec else "unthrottled",
        policy_name=spec.name if spec else "unthrottled",
        bips=bips,
        duty_cycle=sum(results[w].duty_cycle for w in names) / n,
        relative_throughput=bips / base_bips if base_bips else float("nan"),
        emergency_s=sum(results[w].emergency_s for w in names) / n,
        migrations=sum(results[w].migrations for w in names) / n,
    )


def baseline_results(
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[SimulationConfig] = None,
) -> Dict[str, RunResult]:
    """Distributed stop-go (the paper's baseline) across the workloads."""
    return run_matrix([BASELINE_SPEC], workloads, config)[BASELINE_SPEC.key]
