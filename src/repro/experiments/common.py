"""Shared machinery for the experiment modules.

All of the paper's main tables and figures are views over the same grid
of simulations: 12 workloads x 12 policies. :func:`run_matrix` executes
and caches those runs (module-level, keyed by workload, policy and
configuration) so that computing Table 5, Table 6, Table 7, Figure 3,
Figure 7 and Table 8 in one session costs one pass over the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.taxonomy import ALL_POLICY_SPECS, BASELINE_SPEC, PolicySpec
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.results import RunResult
from repro.sim.workloads import ALL_WORKLOADS, Workload

_CACHE: Dict[Tuple, RunResult] = {}


def default_config(duration_s: float = 0.5, **overrides) -> SimulationConfig:
    """The paper's experimental configuration (0.5 s of silicon time)."""
    return SimulationConfig(duration_s=duration_s, **overrides)


def _config_key(config: SimulationConfig) -> Tuple:
    """Cache key covering EVERY configuration field.

    ``SimulationConfig`` is a frozen dataclass of frozen dataclasses, so
    the instance itself is hashable and equality-complete — using it
    directly makes it impossible for a newly added field to silently
    alias two different configurations in the cache.
    """
    return (config,)


def clear_result_cache() -> int:
    """Drop every cached run; returns how many were discarded."""
    n = len(_CACHE)
    _CACHE.clear()
    return n


def run_cached(
    workload: Workload, spec: Optional[PolicySpec], config: SimulationConfig
) -> RunResult:
    """Run (or fetch) one (workload, policy) simulation."""
    key = (workload.name, spec.key if spec else "unthrottled", _config_key(config))
    if key not in _CACHE:
        _CACHE[key] = run_workload(workload, spec, config)
    return _CACHE[key]


def run_matrix(
    specs: Sequence[Optional[PolicySpec]],
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[SimulationConfig] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run a policy x workload grid.

    Returns ``{spec_key: {workload_name: RunResult}}``; ``None`` in
    ``specs`` denotes the unthrottled reference run.
    """
    workloads = list(workloads) if workloads is not None else list(ALL_WORKLOADS)
    config = config or default_config()
    out: Dict[str, Dict[str, RunResult]] = {}
    for spec in specs:
        key = spec.key if spec else "unthrottled"
        out[key] = {
            w.name: run_cached(w, spec, config) for w in workloads
        }
    return out


@dataclass(frozen=True)
class PolicyAverages:
    """Workload-averaged metrics of one policy (a Table 5/6/7 row)."""

    spec_key: str
    policy_name: str
    bips: float
    duty_cycle: float
    relative_throughput: float
    emergency_s: float
    migrations: float


def average_metrics(
    results: Dict[str, RunResult],
    baseline: Dict[str, RunResult],
    spec: Optional[PolicySpec],
) -> PolicyAverages:
    """Average one policy's per-workload results against a baseline."""
    names = sorted(results)
    if sorted(baseline) != names:
        raise ValueError("results and baseline must cover the same workloads")
    n = len(names)
    if n == 0:
        raise ValueError("no workloads to average")
    bips = sum(results[w].bips for w in names) / n
    base_bips = sum(baseline[w].bips for w in names) / n
    return PolicyAverages(
        spec_key=spec.key if spec else "unthrottled",
        policy_name=spec.name if spec else "unthrottled",
        bips=bips,
        duty_cycle=sum(results[w].duty_cycle for w in names) / n,
        relative_throughput=bips / base_bips if base_bips else float("nan"),
        emergency_s=sum(results[w].emergency_s for w in names) / n,
        migrations=sum(results[w].migrations for w in names) / n,
    )


def baseline_results(
    workloads: Optional[Sequence[Workload]] = None,
    config: Optional[SimulationConfig] = None,
) -> Dict[str, RunResult]:
    """Distributed stop-go (the paper's baseline) across the workloads."""
    return run_matrix([BASELINE_SPEC], workloads, config)[BASELINE_SPEC.key]
