"""Table 8: the summary grid — relative instruction throughput of all 12
taxonomy combinations.

Paper values::

                 no migration    counter-based    sensor-based
                 stop-go  DVFS   stop-go  DVFS    stop-go  DVFS
    Global        0.62X   2.1X    1.2X    2.2X     1.2X    2.1X
    Distributed  baseline 2.5X    2X      2.6X     2.1X    2.6X
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.taxonomy import (
    ALL_POLICY_SPECS,
    MigrationKind,
    PolicySpec,
    Scope,
    ThrottleKind,
)
from repro.experiments.common import default_config, run_matrix
from repro.sim.engine import SimulationConfig
from repro.sim.workloads import Workload
from repro.util.tables import render_grid

#: Paper's grid for EXPERIMENTS.md comparison (spec key -> relative X).
PAPER_VALUES = {
    "global-stop-go-none": 0.62,
    "global-dvfs-none": 2.1,
    "global-stop-go-counter": 1.2,
    "global-dvfs-counter": 2.2,
    "global-stop-go-sensor": 1.2,
    "global-dvfs-sensor": 2.1,
    "distributed-stop-go-none": 1.0,
    "distributed-dvfs-none": 2.5,
    "distributed-stop-go-counter": 2.0,
    "distributed-dvfs-counter": 2.6,
    "distributed-stop-go-sensor": 2.1,
    "distributed-dvfs-sensor": 2.6,
}


@dataclass(frozen=True)
class Table8Grid:
    """Relative throughput of every taxonomy cell."""

    relative: Dict[str, float]  # spec key -> X over distributed stop-go

    def cell(self, scope: Scope, throttle: ThrottleKind, migration: MigrationKind) -> float:
        """Look up one cell."""
        return self.relative[PolicySpec(throttle, scope, migration).key]

    @property
    def best_key(self) -> str:
        """Spec key of the best-performing combination."""
        return max(self.relative, key=lambda k: self.relative[k])


def compute(
    config: Optional[SimulationConfig] = None,
    workloads: Optional[Sequence[Workload]] = None,
) -> Table8Grid:
    """Run the full 12-policy grid and compute relative throughput."""
    config = config or default_config()
    grid = run_matrix(list(ALL_POLICY_SPECS), workloads, config)

    def avg_bips(key: str) -> float:
        results = grid[key]
        return sum(r.bips for r in results.values()) / len(results)

    base = avg_bips("distributed-stop-go-none")
    return Table8Grid(
        relative={s.key: avg_bips(s.key) / base for s in ALL_POLICY_SPECS}
    )


def render(grid: Table8Grid) -> str:
    """Paper-style Table 8."""
    col_labels = [
        "no-mig stop-go",
        "no-mig DVFS",
        "counter stop-go",
        "counter DVFS",
        "sensor stop-go",
        "sensor DVFS",
    ]
    rows = []
    for scope in (Scope.GLOBAL, Scope.DISTRIBUTED):
        row = []
        for migration in (MigrationKind.NONE, MigrationKind.COUNTER, MigrationKind.SENSOR):
            for throttle in (ThrottleKind.STOP_GO, ThrottleKind.DVFS):
                value = grid.cell(scope, throttle, migration)
                if scope is Scope.DISTRIBUTED and throttle is ThrottleKind.STOP_GO \
                        and migration is MigrationKind.NONE:
                    row.append("baseline")
                else:
                    row.append(f"{value:.2f}X")
        rows.append(row)
    return render_grid(
        ["Global", "Distributed"],
        col_labels,
        rows,
        corner="scope",
        title="Table 8: relative instruction throughput of all policy combinations",
    )


def main() -> str:
    """Compute and print the grid."""
    text = render(compute())
    print(text)
    return text


if __name__ == "__main__":
    main()
