"""Sensitivity studies backing the paper's side claims and our own design
choices (DESIGN.md calls these out as ablation benches).

* :func:`threshold_sweep` — Section 5.3: "raising the temperature
  threshold to 100 C increased the duty cycles ... by 10 to 15%.
  Nonetheless, the relative performance tradeoffs remain as presented."
* :func:`sensor_fidelity_sweep` — the policies act on sensors, not true
  temperatures; this quantifies what quantisation and noise cost.
* :func:`pi_gain_sweep` — Section 4.1: "these constants can actually
  deviate significantly while still achieving the intended goals."
* :func:`migration_period_sweep` — the 10 ms OS cadence against faster
  and slower outer loops.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.control.pi import PAPER_KI, PAPER_KP, design_pi
from repro.core.dvfs import DVFSPolicy
from repro.core.taxonomy import MigrationKind, PolicySpec, Scope, ThrottleKind
from repro.experiments.common import default_config, run_cached
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator
from repro.sim.workloads import get_workload
from repro.util.tables import render_table

_DSG = PolicySpec(ThrottleKind.STOP_GO, Scope.DISTRIBUTED, MigrationKind.NONE)
_DDV = PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.NONE)
_DSG_CTR = PolicySpec(ThrottleKind.STOP_GO, Scope.DISTRIBUTED, MigrationKind.COUNTER)

#: Hot workloads used for the focused sweeps (full grid not needed).
SWEEP_WORKLOADS = ("workload3", "workload7", "workload8")


@dataclass(frozen=True)
class SweepPoint:
    """One configuration point of a sweep."""

    label: str
    bips: float
    duty_cycle: float
    emergency_s: float


def _avg(spec: PolicySpec, config: SimulationConfig,
         workloads: Sequence[str]) -> SweepPoint:
    results = [run_cached(get_workload(w), spec, config) for w in workloads]
    n = len(results)
    return SweepPoint(
        label="",
        bips=sum(r.bips for r in results) / n,
        duty_cycle=sum(r.duty_cycle for r in results) / n,
        emergency_s=sum(r.emergency_s for r in results) / n,
    )


def threshold_sweep(
    thresholds=(84.2, 92.0, 100.0),
    config: Optional[SimulationConfig] = None,
    workloads: Sequence[str] = SWEEP_WORKLOADS,
) -> List[SweepPoint]:
    """Duty cycle of dist stop-go and dist DVFS versus thermal limit."""
    config = config or default_config()
    points = []
    for threshold in thresholds:
        cfg = replace(config, threshold_c=float(threshold))
        for spec in (_DSG, _DDV):
            point = _avg(spec, cfg, workloads)
            points.append(
                replace(point, label=f"{spec.name} @ {threshold:.1f}C")
            )
    return points


def sensor_fidelity_sweep(
    config: Optional[SimulationConfig] = None,
    workloads: Sequence[str] = SWEEP_WORKLOADS,
) -> List[SweepPoint]:
    """Dist DVFS under degraded sensors (noise and ACPI-style rounding)."""
    config = config or default_config()
    variants = [
        ("ideal", 0.0, 0.0),
        ("noise 0.5C", 0.5, 0.0),
        ("noise 2.0C", 2.0, 0.0),
        ("quantized 1C", 0.0, 1.0),
        ("noise 1C + quantized 1C", 1.0, 1.0),
    ]
    points = []
    for label, noise, quant in variants:
        cfg = replace(
            config, sensor_noise_std_c=noise, sensor_quantization_c=quant
        )
        points.append(replace(_avg(_DDV, cfg, workloads), label=label))
    return points


def sensor_bias_sweep(
    config: Optional[SimulationConfig] = None,
    workloads: Sequence[str] = SWEEP_WORKLOADS,
) -> List[SweepPoint]:
    """Miscalibrated sensors, with and without the hardware failsafe.

    A sensor reading a few degrees *low* makes the PI controller steer the
    true silicon past the threshold — the one fault mode closed-loop DTM
    cannot see. The PROCHOT-style hardware trip (an independent analog
    circuit reading true silicon) bounds the damage at a small throughput
    cost. This motivates why real processors pair digital control sensors
    with a dedicated trip circuit.
    """
    config = config or default_config()
    variants = [
        ("calibrated", 0.0, False),
        ("reads 3C low", -3.0, False),
        ("reads 3C low + hardware trip", -3.0, True),
        ("reads 3C high", 3.0, False),
    ]
    points = []
    for label, offset, trip in variants:
        cfg = replace(
            config, sensor_offset_c=offset, hardware_trip=trip
        )
        points.append(replace(_avg(_DDV, cfg, workloads), label=label))
    return points


def pi_gain_sweep(
    gain_factors=(0.25, 0.5, 1.0, 2.0, 4.0),
    config: Optional[SimulationConfig] = None,
    workload_name: str = "workload7",
) -> List[SweepPoint]:
    """Dist DVFS with the PI gains scaled around the paper's values.

    Built directly on the simulator (the policy needs a non-default
    controller design, which the taxonomy factory does not parameterise).
    """
    config = config or default_config()
    workload = get_workload(workload_name)
    points = []
    for factor in gain_factors:
        sim = ThermalTimingSimulator(workload.benchmarks, _DDV, config)
        design = design_pi(
            PAPER_KP * factor, PAPER_KI * factor, sim.dt
        )
        sim.throttle = DVFSPolicy(
            sim.n_cores,
            dt=sim.dt,
            scope="distributed",
            design=design,
            threshold_c=config.threshold_c,
        )
        result = sim.run()
        points.append(
            SweepPoint(
                label=f"gains x{factor}",
                bips=result.bips,
                duty_cycle=result.duty_cycle,
                emergency_s=result.emergency_s,
            )
        )
    return points


def migration_period_sweep(
    periods_s=(5e-3, 10e-3, 20e-3, 40e-3),
    config: Optional[SimulationConfig] = None,
    workloads: Sequence[str] = SWEEP_WORKLOADS,
) -> List[SweepPoint]:
    """Dist stop-go + counter migration versus the OS decision cadence."""
    config = config or default_config()
    points = []
    for period in periods_s:
        cfg = replace(config, migration_period_s=float(period))
        points.append(
            replace(
                _avg(_DSG_CTR, cfg, workloads),
                label=f"period {period * 1000:.0f} ms",
            )
        )
    return points


def render(points: Sequence[SweepPoint], title: str) -> str:
    """Render one sweep as a table."""
    return render_table(
        ["configuration", "BIPS", "duty cycle", "emergency (s)"],
        [
            [p.label, f"{p.bips:.2f}", f"{p.duty_cycle:.2%}", f"{p.emergency_s:.4f}"]
            for p in points
        ],
        title=title,
    )


def main() -> str:
    """Run all sweeps at a reduced horizon and print them."""
    config = default_config(duration_s=0.2)
    parts = [
        render(threshold_sweep(config=config), "Ablation: thermal threshold"),
        render(sensor_fidelity_sweep(config=config), "Ablation: sensor fidelity"),
        render(sensor_bias_sweep(config=config), "Ablation: sensor bias + hardware trip"),
        render(pi_gain_sweep(config=config), "Ablation: PI gain scaling"),
        render(
            migration_period_sweep(config=config), "Ablation: migration period"
        ),
    ]
    text = "\n\n".join(parts)
    print(text)
    return text


if __name__ == "__main__":
    main()
