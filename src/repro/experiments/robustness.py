"""Robustness harness: how gracefully does each DTM policy degrade?

The paper ranks its 12 policies under ideal dynamics. This harness
re-ranks them under injected faults (:mod:`repro.faults`): for each
policy it simulates a ladder of fault *severities* on one workload and
reports, per severity, throughput relative to the policy's own no-fault
run and the change in thermal-violation time. A policy that tolerates a
drifting sensor or a lost migration request gracefully keeps its
relative throughput near 1.0 and its violation delta near zero; a
brittle one collapses or cooks.

Severity ladder (deterministic pure functions of the run duration, so
the fault spec hashes into the result-cache key like any config field):

* ``none`` — the reference run (empty plan);
* ``mild`` — one slow positive sensor drift plus stretched DVFS
  transitions: annoying, in the *safe* direction;
* ``moderate`` — adds warm spikes, a core of dropped-out sensors, a
  lossy DVFS actuator and a lossy migration path;
* ``severe`` — the dangerous cases: a chip-wide cool-side calibration
  step, a hot core whose sensor sticks at a cool value, NaN dropouts,
  cold spikes, and mostly-dead actuation.

With ``include_guards=True`` every faulted point is also run with the
sensor-sanity guard layer enabled, so the degradation table shows what
graceful-degradation hardware buys (and costs) per policy.

All points execute as one flat batch through the session's
:class:`~repro.sim.runner.ParallelRunner`, so ``repro --jobs N
robustness`` fans the whole sweep out and serial vs. parallel sweeps are
bit-identical. ``repro robustness --backend fleet`` steps the whole
severity x policy campaign through the batched
:class:`~repro.sim.fleet.FleetEngine` instead: fault plans and sensor
noise are fleet-eligible (the engine replays each member's private RNG
streams in step order), so the entire Monte-Carlo campaign rides the
vectorised path — only guarded points (``include_guards=True``) fall
back to the pool — and every backend produces the same degradation
table bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.taxonomy import ALL_POLICY_SPECS, PolicySpec
from repro.experiments.common import default_config, get_default_runner
from repro.faults.guards import GuardConfig
from repro.faults.models import (
    CalibrationStepFault,
    DriftFault,
    DropoutFault,
    DVFSLatencyFault,
    DVFSRejectFault,
    FaultPlan,
    MigrationDropFault,
    SpikeFault,
    StuckAtFault,
)
from repro.sim.engine import SimulationConfig
from repro.sim.results import RunResult
from repro.sim.runner import ParallelRunner, RunPoint
from repro.sim.workloads import Workload, get_workload
from repro.util.tables import render_table

#: Severity ladder, mildest first. ``none`` is the per-policy baseline.
SEVERITIES: Tuple[str, ...] = ("none", "mild", "moderate", "severe")


def severity_plan(
    severity: str, duration_s: float, n_cores: int = 4
) -> Optional[FaultPlan]:
    """The fault plan for one severity level.

    Windows are fixed fractions of the run, so the same severity scales
    to any horizon; construction is pure (all randomness lives in the
    per-fault runtime streams).
    """
    d = float(duration_s)
    if severity == "none":
        return None
    if severity == "mild":
        return FaultPlan(
            name="mild",
            faults=(
                # A diode walking warm: the safe direction — the policy
                # throttles more than it must.
                DriftFault(
                    core=0, unit="intreg",
                    start_s=0.2 * d, end_s=d, rate_c_per_s=10.0,
                ),
                # Every PLL re-lock takes 3x nominal.
                DVFSLatencyFault(start_s=0.0, end_s=d, extra_penalty_s=20e-6),
            ),
        )
    if severity == "moderate":
        return FaultPlan(
            name="moderate",
            faults=(
                DriftFault(
                    core=0, unit="intreg",
                    start_s=0.2 * d, end_s=d, rate_c_per_s=10.0,
                ),
                SpikeFault(start_s=0.0, end_s=d, magnitude_c=12.0, prob=0.005),
                DropoutFault(
                    core=1 % n_cores,
                    start_s=0.3 * d, end_s=0.7 * d, mode="last-good",
                ),
                DVFSRejectFault(
                    core=0, start_s=0.25 * d, end_s=0.75 * d, prob=0.5
                ),
                MigrationDropFault(start_s=0.0, end_s=d, prob=0.5),
                DVFSLatencyFault(start_s=0.0, end_s=d, extra_penalty_s=20e-6),
            ),
        )
    if severity == "severe":
        return FaultPlan(
            name="severe",
            faults=(
                # Chip-wide cool-side miscalibration: every core looks
                # 4 C cooler than it is — the failure mode that cooks.
                CalibrationStepFault(start_s=0.2 * d, end_s=d, offset_c=-4.0),
                # A hot core's critical sensor sticks at a cool value.
                StuckAtFault(
                    core=0, unit="intreg", start_s=0.3 * d, end_s=d,
                    value_c=70.0,
                ),
                DropoutFault(
                    core=2 % n_cores,
                    start_s=0.3 * d, end_s=0.8 * d, mode="nan",
                ),
                SpikeFault(start_s=0.0, end_s=d, magnitude_c=-15.0, prob=0.01),
                DVFSRejectFault(start_s=0.2 * d, end_s=0.9 * d, prob=0.8),
                DVFSLatencyFault(start_s=0.0, end_s=d, extra_penalty_s=100e-6),
                MigrationDropFault(start_s=0.0, end_s=d, prob=0.8),
            ),
        )
    raise ValueError(f"unknown severity {severity!r}; known: {SEVERITIES}")


@dataclass(frozen=True)
class DegradationCell:
    """One (policy, severity) outcome."""

    severity: str
    bips: float
    #: Throughput relative to the same policy's no-fault run.
    relative_bips: float
    #: Thermal-violation time beyond the no-fault run (seconds).
    emergency_delta_s: float
    #: Injected fault occurrences (sensor samples + actuation).
    injected: int
    guard_trips: int
    guard_fallback_s: float


@dataclass(frozen=True)
class RobustnessRow:
    """One policy's degradation ladder."""

    spec_key: str
    policy_name: str
    #: Unguarded cells, aligned with the report's severity tuple.
    cells: Tuple[DegradationCell, ...]
    #: Guard-enabled cells when the sweep included guards.
    guarded_cells: Optional[Tuple[DegradationCell, ...]] = None


@dataclass(frozen=True)
class RobustnessReport:
    """The full sweep: severity ladder x policies on one workload."""

    workload: str
    duration_s: float
    severities: Tuple[str, ...]
    guarded: bool
    rows: Tuple[RobustnessRow, ...]


def _cell(
    severity: str, result: RunResult, baseline: RunResult
) -> DegradationCell:
    faults = result.faults
    return DegradationCell(
        severity=severity,
        bips=result.bips,
        relative_bips=(
            result.bips / baseline.bips if baseline.bips else float("nan")
        ),
        emergency_delta_s=result.emergency_s - baseline.emergency_s,
        injected=faults.total_injected if faults else 0,
        guard_trips=faults.guard_trips if faults else 0,
        guard_fallback_s=faults.guard_fallback_s if faults else 0.0,
    )


def compute(
    config: Optional[SimulationConfig] = None,
    specs: Optional[Sequence[PolicySpec]] = None,
    severities: Sequence[str] = SEVERITIES,
    workload: Optional[Workload] = None,
    include_guards: bool = False,
    runner: Optional[ParallelRunner] = None,
) -> RobustnessReport:
    """Run the sweep and fold it into a :class:`RobustnessReport`.

    The per-policy no-fault baseline is always simulated, whether or not
    ``"none"`` appears in ``severities`` (relative numbers need it).
    """
    config = config or default_config(duration_s=0.1)
    specs = list(specs) if specs is not None else list(ALL_POLICY_SPECS)
    workload = workload or get_workload("workload7")
    runner = runner or get_default_runner()
    severities = tuple(severities)
    for severity in severities:
        severity_plan(severity, 1.0, config.machine.n_cores)  # validate names

    n_cores = config.machine.n_cores
    plans: Dict[str, Optional[FaultPlan]] = {
        severity: severity_plan(severity, config.duration_s, n_cores)
        for severity in dict.fromkeys(("none",) + severities)
    }

    # One flat batch: [spec x severity (x guarded)] in a fixed order.
    points: List[RunPoint] = []
    index: Dict[Tuple[str, str, bool], int] = {}
    for spec in specs:
        for severity, plan in plans.items():
            variants = (False, True) if include_guards else (False,)
            for guarded in variants:
                cfg = replace(
                    config,
                    fault_plan=plan,
                    guard=GuardConfig() if guarded else None,
                )
                index[(spec.key, severity, guarded)] = len(points)
                points.append(RunPoint(workload, spec, cfg))
    results = runner.run_points(points)

    rows: List[RobustnessRow] = []
    for spec in specs:
        baseline = results[index[(spec.key, "none", False)]]
        cells = tuple(
            _cell(sev, results[index[(spec.key, sev, False)]], baseline)
            for sev in severities
        )
        guarded_cells = (
            tuple(
                _cell(sev, results[index[(spec.key, sev, True)]], baseline)
                for sev in severities
            )
            if include_guards
            else None
        )
        rows.append(
            RobustnessRow(
                spec_key=spec.key,
                policy_name=spec.name,
                cells=cells,
                guarded_cells=guarded_cells,
            )
        )
    return RobustnessReport(
        workload=workload.name,
        duration_s=config.duration_s,
        severities=severities,
        guarded=include_guards,
        rows=tuple(rows),
    )


def _degradation_table(
    report: RobustnessReport, guarded: bool, title: str
) -> str:
    headers = ["policy"]
    for severity in report.severities:
        headers.append(f"{severity} BIPSx")
        headers.append(f"{severity} dTV ms")
    rows = []
    for row in report.rows:
        cells = row.guarded_cells if guarded else row.cells
        line: List[object] = [row.spec_key]
        for cell in cells:
            line.append(f"{cell.relative_bips:.3f}")
            line.append(f"{cell.emergency_delta_s * 1e3:+.2f}")
        rows.append(line)
    return render_table(headers, rows, title=title)


def render(report: RobustnessReport) -> str:
    """The degradation table(s) as aligned plain text.

    ``BIPSx`` is throughput relative to the policy's own no-fault run;
    ``dTV ms`` is the change in thermal-violation (emergency) time in
    milliseconds — positive means the faults made the chip spend longer
    above the envelope.
    """
    parts = [
        _degradation_table(
            report,
            guarded=False,
            title=(
                f"Degradation under injected faults — {report.workload}, "
                f"{report.duration_s:g} s "
                f"(BIPSx: relative throughput vs. no-fault; "
                f"dTV: thermal-violation delta)"
            ),
        )
    ]
    if report.guarded:
        parts.append("")
        parts.append(
            _degradation_table(
                report,
                guarded=True,
                title="Same sweep with the sensor-sanity guard layer enabled:",
            )
        )
    return "\n".join(parts)


def main() -> None:
    print(render(compute()))


if __name__ == "__main__":
    main()
