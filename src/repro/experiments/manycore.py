"""Many-core threshold sweep: the taxonomy re-run at 16 and 64 cores.

The paper evaluates its policy taxonomy on a 4-core chip; the ROADMAP
asks which conclusions survive scale and heterogeneity. This experiment
re-runs a representative slice of the taxonomy across the preset
scenarios (``mesh16``, ``mesh64``, ``biglittle4+4`` — see
``docs/SCENARIOS.md``) and a small emergency-threshold sweep, reporting
per-scenario throughput relative to the unthrottled reference at the
same threshold. Points are submitted to the session's default runner as
one flat batch, so ``--backend fleet`` steps each scenario's members in
lockstep on one shared :class:`~repro.thermal.model.ThermalKernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.taxonomy import PolicySpec, spec_by_key
from repro.experiments.common import default_config, get_default_runner
from repro.scenarios import Scenario, get_scenario
from repro.sim.engine import SimulationConfig
from repro.sim.results import RunResult
from repro.sim.runner import RunPoint
from repro.sim.workloads import get_workload, tile_workload
from repro.util.tables import render_table

#: Tiled across every scenario chip (the paper's Figure 5 workload).
WORKLOAD_NAME = "workload7"

#: Default scenario slice: homogeneous 16-core, dense 64-core, and the
#: heterogeneous big.LITTLE chip.
DEFAULT_SCENARIOS: Tuple[str, ...] = ("mesh16", "mesh64", "biglittle4+4")

#: Emergency thresholds swept (the paper's 84.2 C plus one colder and
#: one hotter operating point).
DEFAULT_THRESHOLDS_C: Tuple[float, ...] = (82.0, 84.2, 86.0)

#: Representative taxonomy slice: both mechanisms, both scopes, plus the
#: best migration-augmented policy from the paper's conclusions.
DEFAULT_POLICY_KEYS: Tuple[str, ...] = (
    "global-stop-go-none",
    "distributed-stop-go-none",
    "global-dvfs-none",
    "distributed-dvfs-none",
    "distributed-dvfs-sensor",
)


@dataclass(frozen=True)
class ManycoreCell:
    """One (scenario, policy, threshold) grid cell's summary metrics."""

    scenario: str
    spec_key: str
    threshold_c: float
    bips: float
    relative_throughput: float
    emergency_s: float
    duty_cycle: float


@dataclass(frozen=True)
class ManycoreData:
    """The full sweep: cells plus the axes they were computed over."""

    scenarios: Tuple[str, ...]
    thresholds_c: Tuple[float, ...]
    policy_keys: Tuple[str, ...]
    cells: Tuple[ManycoreCell, ...]


def _scenario_config(
    base: SimulationConfig, scenario: Scenario, threshold_c: float
) -> SimulationConfig:
    """The base config rebound to one scenario chip and threshold."""
    return replace(
        base,
        machine=scenario.machine_config(),
        scenario=scenario,
        threshold_c=threshold_c,
    )


def compute(
    config: Optional[SimulationConfig] = None,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    thresholds_c: Sequence[float] = DEFAULT_THRESHOLDS_C,
    policy_keys: Sequence[str] = DEFAULT_POLICY_KEYS,
) -> ManycoreData:
    """Run the scenario x policy x threshold grid in one runner batch.

    Every (scenario, threshold) pair also runs unthrottled to anchor the
    relative-throughput column, exactly as the paper normalises its
    tables against the no-DTM reference.
    """
    base = config or default_config()
    specs: List[Optional[PolicySpec]] = [None] + [
        spec_by_key(k) for k in policy_keys
    ]
    points: List[RunPoint] = []
    labels: List[Tuple[str, str, float]] = []
    for name in scenarios:
        scenario = get_scenario(name)
        workload = tile_workload(get_workload(WORKLOAD_NAME), scenario.n_cores)
        for threshold_c in thresholds_c:
            cfg = _scenario_config(base, scenario, threshold_c)
            for spec in specs:
                points.append(RunPoint(workload, spec, cfg))
                labels.append(
                    (name, spec.key if spec else "unthrottled", threshold_c)
                )
    results = get_default_runner().run_points(points)
    by_cell: Dict[Tuple[str, str, float], RunResult] = dict(
        zip(labels, results)
    )
    cells: List[ManycoreCell] = []
    for name in scenarios:
        for threshold_c in thresholds_c:
            ref = by_cell[(name, "unthrottled", threshold_c)]
            for spec in specs:
                key = spec.key if spec else "unthrottled"
                r = by_cell[(name, key, threshold_c)]
                cells.append(
                    ManycoreCell(
                        scenario=name,
                        spec_key=key,
                        threshold_c=threshold_c,
                        bips=r.bips,
                        relative_throughput=(
                            r.bips / ref.bips if ref.bips else float("nan")
                        ),
                        emergency_s=r.emergency_s,
                        duty_cycle=r.duty_cycle,
                    )
                )
    return ManycoreData(
        scenarios=tuple(scenarios),
        thresholds_c=tuple(float(t) for t in thresholds_c),
        policy_keys=tuple(policy_keys),
        cells=tuple(cells),
    )


def render(data: ManycoreData) -> str:
    """Per-scenario tables: policy rows x threshold columns."""
    sections: List[str] = []
    keys = ("unthrottled",) + data.policy_keys
    for name in data.scenarios:
        by_key: Dict[Tuple[str, float], ManycoreCell] = {
            (c.spec_key, c.threshold_c): c
            for c in data.cells
            if c.scenario == name
        }
        rows = []
        for key in keys:
            row = [key]
            for t in data.thresholds_c:
                c = by_key[(key, t)]
                row.append(
                    f"{c.relative_throughput:.3f} "
                    f"({c.emergency_s * 1000:.1f}ms)"
                )
            rows.append(row)
        headers = ["policy"] + [f"{t:g} C" for t in data.thresholds_c]
        sections.append(
            render_table(
                headers,
                rows,
                title=(
                    f"{name}: relative throughput (emergency time) "
                    f"vs unthrottled"
                ),
            )
        )
    return "\n\n".join(sections)


def main() -> str:
    """Compute and print the many-core sweep."""
    text = render(compute())
    print(text)
    return text


if __name__ == "__main__":
    main()
