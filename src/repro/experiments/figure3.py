"""Figure 3: per-workload instruction throughput of global stop-go,
global ("synchronous") DVFS and distributed DVFS, normalised to the
distributed stop-go baseline.

The paper's bar chart shows distributed DVFS winning on every workload,
global stop-go far below 1.0 everywhere, and the spread widening on
mixed (IIFF-style) workloads where a single hot benchmark drags global
policies down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import default_config, run_matrix
from repro.experiments.table5 import TABLE5_SPECS
from repro.obs.logconfig import get_logger
from repro.sim.engine import SimulationConfig
from repro.sim.workloads import ALL_WORKLOADS, Workload
from repro.util.ascii_plot import bar_chart
from repro.util.tables import render_table

#: Figure 3 plots the three non-baseline policies.
FIGURE3_KEYS = ("global-stop-go-none", "global-dvfs-none", "distributed-dvfs-none")


@dataclass(frozen=True)
class Figure3Row:
    """One workload's bars."""

    workload: str
    label: str
    relative: Dict[str, float]  # spec key -> normalised throughput


def compute(
    config: Optional[SimulationConfig] = None,
    workloads: Optional[Sequence[Workload]] = None,
) -> List[Figure3Row]:
    """One row per workload with throughput normalised to dist stop-go."""
    config = config or default_config()
    workloads = list(workloads) if workloads is not None else list(ALL_WORKLOADS)
    get_logger(__name__).info(
        "figure3: %d workloads x %d policies at %.3g s",
        len(workloads),
        len(TABLE5_SPECS),
        config.duration_s,
    )
    grid = run_matrix(list(TABLE5_SPECS), workloads, config)
    baseline = grid["distributed-stop-go-none"]
    rows = []
    for w in workloads:
        base = baseline[w.name].bips
        rows.append(
            Figure3Row(
                workload=w.name,
                label=w.label,
                relative={
                    key: grid[key][w.name].bips / base for key in FIGURE3_KEYS
                },
            )
        )
    return rows


def render(rows: Sequence[Figure3Row]) -> str:
    """The figure's data as a table plus a bar chart of the winning series."""
    table = render_table(
        ["workload", "Global stop-go", "Global DVFS", "Dist. DVFS"],
        [
            [
                r.label,
                f"{r.relative['global-stop-go-none']:.2f}",
                f"{r.relative['global-dvfs-none']:.2f}",
                f"{r.relative['distributed-dvfs-none']:.2f}",
            ]
            for r in rows
        ],
        title=(
            "Figure 3: normalised instruction throughput per workload "
            "(relative to distributed stop-go)"
        ),
    )
    chart = bar_chart(
        [r.workload for r in rows],
        [r.relative["distributed-dvfs-none"] for r in rows],
        reference=1.0,
        unit="X",
    )
    return table + "\n\nDist. DVFS vs baseline (| marks 1.0X):\n" + chart


def main() -> str:
    """Compute and print the figure data."""
    text = render(compute())
    print(text)
    return text


if __name__ == "__main__":
    main()
