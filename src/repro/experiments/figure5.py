"""Figure 5: hotspot temperatures and DVFS control output on one core
across several migration intervals.

The paper plots, for the gzip-twolf-ammp-lucas workload under distributed
DVFS + counter-based migration, (a) the temperatures of the FP and
integer register logic on the first core as threads migrate through it
(lucas -> gzip -> lucas -> ammp in their run), and (b) the PI controller's
frequency-scale output over the same interval: the critical hotspot is
served by the controller while the other hotspot "drifts" with the
resident thread's profile.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.core.taxonomy import MigrationKind, PolicySpec, Scope, ThrottleKind
from repro.experiments.common import default_config, run_cached
from repro.sim.engine import SimulationConfig
from repro.sim.results import RunResult
from repro.sim.workloads import get_workload
from repro.util.ascii_plot import multi_series
from repro.util.tables import render_table

#: The paper uses workload7 (gzip-twolf-ammp-lucas).
WORKLOAD_NAME = "workload7"

#: Policy under which the figure is recorded.
SPEC = PolicySpec(ThrottleKind.DVFS, Scope.DISTRIBUTED, MigrationKind.COUNTER)


@dataclass(frozen=True)
class Figure5Data:
    """Time series for one core across a window containing migrations."""

    core: int
    times_ms: np.ndarray
    intreg_temp_c: np.ndarray
    fpreg_temp_c: np.ndarray
    frequency_scale: np.ndarray
    resident_benchmark: List[str]       # per sample
    migration_times_ms: List[float]     # within the window

    @property
    def resident_sequence(self) -> List[str]:
        """Distinct benchmarks in residence order (the paper's callouts)."""
        seq: List[str] = []
        for name in self.resident_benchmark:
            if not seq or seq[-1] != name:
                seq.append(name)
        return seq


def compute(
    config: Optional[SimulationConfig] = None,
    window_s: float = 0.06,
) -> Figure5Data:
    """Record the run and extract the busiest core's window.

    Chooses the core with the most thread changes and a window starting
    just before its first migration, mirroring the paper's presentation of
    "several migration intervals".
    """
    config = config or default_config()
    if not config.record_series:
        config = replace(config, record_series=True)
    workload = get_workload(WORKLOAD_NAME)
    result: RunResult = run_cached(workload, SPEC, config)
    series = result.series
    assert series is not None

    # Busiest core: most residency changes.
    changes = (np.diff(series.assignments, axis=0) != 0).sum(axis=0)
    core = int(np.argmax(changes))

    change_steps = np.flatnonzero(np.diff(series.assignments[:, core]) != 0)
    start_step = max(0, int(change_steps[0]) - 20) if change_steps.size else 0
    dt = float(series.times[1] - series.times[0]) if len(series.times) > 1 else 1.0
    n_window = min(len(series.times) - start_step, max(2, int(round(window_s / dt))))
    sl = slice(start_step, start_step + n_window)

    pid_to_benchmark = dict(enumerate(workload.benchmarks))
    resident = [
        pid_to_benchmark[int(pid)] for pid in series.assignments[sl, core]
    ]
    t0 = series.times[sl].copy()
    window_lo, window_hi = float(t0[0]), float(t0[-1])
    migrations = [
        1000.0 * (m - window_lo)
        for m in series.migration_times
        if window_lo <= m <= window_hi
    ]
    return Figure5Data(
        core=core,
        times_ms=1000.0 * (t0 - window_lo),
        intreg_temp_c=series.hotspot_temps["intreg"][sl, core].copy(),
        fpreg_temp_c=series.hotspot_temps["fpreg"][sl, core].copy(),
        frequency_scale=series.scales[sl, core].copy(),
        resident_benchmark=resident,
        migration_times_ms=migrations,
    )


def render(data: Figure5Data, n_rows: int = 24) -> str:
    """A tabular view of the two sub-figures (sampled to ``n_rows``)."""
    idx = np.linspace(0, len(data.times_ms) - 1, n_rows).astype(int)
    rows = [
        [
            f"{data.times_ms[i]:.2f}",
            f"{data.intreg_temp_c[i]:.2f}",
            f"{data.fpreg_temp_c[i]:.2f}",
            f"{data.frequency_scale[i]:.2f}",
            data.resident_benchmark[i],
        ]
        for i in idx
    ]
    header = (
        f"Figure 5: core {data.core} across migrations "
        f"(residents: {' -> '.join(data.resident_sequence)})"
    )
    table = render_table(
        ["time (ms)", "int reg (C)", "FP reg (C)", "freq scale", "resident"],
        rows,
        title=header,
    )
    sketch = multi_series(
        data.times_ms,
        {
            "int reg (C)": data.intreg_temp_c,
            "FP reg (C)": data.fpreg_temp_c,
            "freq scale": data.frequency_scale,
        },
        time_unit="ms",
    )
    return table + "\n\n" + sketch


def main() -> str:
    """Compute and print the figure data."""
    text = render(compute())
    print(text)
    return text


if __name__ == "__main__":
    main()
