"""Table 7: sensor-based migration on top of each base policy, including
the speedup over the corresponding counter-based policy.

Paper values: stop-go + sensor migration 5.43 / 38.64% / 1.20X / 1.95 /
1.02; dist stop-go 9.27 / 66.61% / 2.05X / 2.05 / 1.01; global DVFS
9.63 / 68.37% / 2.13X / 1.03 / 0.97; dist DVFS 11.70 / 82.64% / 2.59X /
1.03 / 1.01 — i.e. sensor-based performs "slightly better overall" but
not uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.taxonomy import MigrationKind
from repro.experiments import table6
from repro.experiments.common import default_config
from repro.sim.engine import SimulationConfig
from repro.sim.workloads import Workload
from repro.util.tables import render_table


@dataclass(frozen=True)
class Table7Row:
    """One Table 7 row: sensor migration vs. base and vs. counter."""

    policy_name: str
    spec_key: str
    bips: float
    duty_cycle: float
    relative_throughput: float
    speedup_over_base: float
    speedup_over_counter: float


def compute(
    config: Optional[SimulationConfig] = None,
    workloads: Optional[Sequence[Workload]] = None,
) -> List[Table7Row]:
    """Rows for the sensor policy, referencing the counter policy rows."""
    config = config or default_config()
    sensor_rows = table6.compute(config, workloads, kind=MigrationKind.SENSOR)
    counter_rows = table6.compute(config, workloads, kind=MigrationKind.COUNTER)
    out = []
    for s_row, c_row in zip(sensor_rows, counter_rows):
        out.append(
            Table7Row(
                policy_name=s_row.policy_name,
                spec_key=s_row.spec_key,
                bips=s_row.bips,
                duty_cycle=s_row.duty_cycle,
                relative_throughput=s_row.relative_throughput,
                speedup_over_base=s_row.speedup_over_base,
                speedup_over_counter=s_row.bips / c_row.bips,
            )
        )
    return out


def render(rows: Sequence[Table7Row]) -> str:
    """Paper-style Table 7."""
    return render_table(
        [
            "policy",
            "BIPS",
            "duty cycle",
            "relative throughput",
            "speedup over non-migration",
            "speedup over counter-based",
        ],
        [
            [
                r.policy_name,
                f"{r.bips:.2f}",
                f"{r.duty_cycle:.2%}",
                f"{r.relative_throughput:.2f}",
                f"{r.speedup_over_base:.2f}",
                f"{r.speedup_over_counter:.2f}",
            ]
            for r in rows
        ],
        title="Table 7: sensor-based migration policies",
    )


def main() -> str:
    """Compute and print the table."""
    text = render(compute())
    print(text)
    return text


if __name__ == "__main__":
    main()
