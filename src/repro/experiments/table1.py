"""Table 1: per-benchmark processor temperatures on a mobile platform.

The paper measures a Pentium M (Banias, 1.5 GHz) notebook through the
ACPI thermal diode while running SPEC programs: most settle at a steady
temperature between 59 and 71 C (Table 1a), while bzip2/ammp/facerec/
fma3d oscillate over ~6 degree ranges (Table 1b).

We reproduce the measurement protocol on the simulated mobile chip:

* single core + 1 MB L2 (``mobile_machine_config``), notebook cooling
  solution (``MOBILE_PACKAGE``);
* one thermal diode at the edge of the die — we read the L2 region
  adjacent to the die edge, whose temperature integrates total chip
  power the way a package-edge diode does;
* readings rounded to whole degrees (the ACPI interface restriction);
* the machine idles to a settled temperature before each run (warm start
  at idle power), then the benchmark runs long enough to reach its
  operating temperature.

Because the paper's temperature oscillations unfold over seconds-to-
minutes of real execution (full SPEC phases), the Table 1 runs stretch
each benchmark's phase period by ``PHASE_STRETCH`` and simulate several
seconds — the mobile package's external time constants filter anything
faster into invisibility, exactly as on the real laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import get_default_runner
from repro.obs.logconfig import get_logger
from repro.sim.runner import ParallelRunner
from repro.thermal.coupling import initialize_coupled_steady
from repro.thermal.layouts import build_mobile_floorplan, mobile_sensor_block
from repro.thermal.leakage import LeakageModel
from repro.thermal.model import ThermalModel
from repro.thermal.package import MOBILE_PACKAGE, ThermalPackage
from repro.uarch.benchmarks import get_benchmark
from repro.uarch.config import mobile_machine_config
from repro.uarch.interval_model import UNIT_ORDER
from repro.uarch.power import L2_BANK_PEAK_W, L2_IDLE_FRACTION
from repro.uarch.tracegen import generate_trace
from repro.util.rng import DEFAULT_ROOT_SEED
from repro.util.tables import render_table

#: The benchmarks of Table 1a with the paper's measured steady temps (C).
PAPER_STABLE = {
    "gzip": 70,
    "mcf": 59,
    "parser": 67,
    "twolf": 67,
    "mesa": 65,
    "swim": 62,
    "lucas": 63,
    "sixtrack": 71,
}

#: The benchmarks of Table 1b with the paper's measured ranges (C).
PAPER_RANGES = {
    "bzip2": (67, 72),
    "ammp": (58, 64),
    "facerec": (65, 71),
    "fma3d": (61, 67),
}

#: Block read by the edge thermal diode.
DIODE_BLOCK = mobile_sensor_block()

#: Mobile power budget relative to the high-performance chip: lower clock
#: (1.5 vs 3.6 GHz) and a power-conscious design point.
MOBILE_POWER_SCALE = 0.27

#: Workload-independent platform heat reaching the diode (uncore, PLL,
#: I/O, bus interface): the Banias diode sits at the package edge where
#: this baseline is a large share of what it sees, compressing the
#: apparent spread between hot and cool programs.
PLATFORM_IDLE_W = 5.0

#: Slow-down applied to benchmark phase periods (see module docstring).
#: Real SPEC programs swing over minutes — slow enough that the whole
#: cooling stack (including the heatsink, tau ~ a minute) follows, which
#: is why the ACPI diode sees multi-degree ranges.
PHASE_STRETCH = 6000.0

#: ACPI reading granularity.
QUANTIZATION_C = 1.0


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's measured temperature behaviour."""

    benchmark: str
    category: str  # "SPECint" / "SPECfp"
    stable: bool
    steady_c: Optional[int]            # Table 1a entries
    range_c: Optional[Tuple[int, int]]  # Table 1b entries


@dataclass(frozen=True)
class Table1Point:
    """One benchmark measurement's full input — the runner's cache key."""

    benchmark: str
    duration_s: float
    dt: float
    package: ThermalPackage
    power_scale: float
    seed: int


def _measure_point(point: Table1Point) -> np.ndarray:
    """Runner task: one benchmark's diode readings (picklable, pure)."""
    return _simulate_benchmark(
        point.benchmark,
        point.duration_s,
        point.dt,
        point.package,
        point.power_scale,
        point.seed,
    )


def _simulate_benchmark(
    name: str,
    duration_s: float,
    dt: float,
    package: ThermalPackage,
    power_scale: float,
    seed: int,
) -> np.ndarray:
    """Diode readings (quantised, 1/dt Hz) while ``name`` runs."""
    profile = get_benchmark(name)
    stretched = replace(
        profile,
        phase=replace(
            profile.phase, period_s=profile.phase.period_s * PHASE_STRETCH
        ),
    )
    # Sample the interval model directly at the coarse thermal step: the
    # trace then holds one power bin per step, phases included.
    machine = replace(
        mobile_machine_config(),
        trace_sample_cycles=int(round(dt * mobile_machine_config().clock_hz)),
    )
    trace = generate_trace(
        stretched,
        machine,
        duration_s=duration_s,
        seed=seed,
        power_scale=power_scale,
        use_cache=False,
    )

    floorplan = build_mobile_floorplan()
    model = ThermalModel(floorplan, package, dt)
    # 130 nm mobile part: leakage is a smaller share than at 90 nm.
    leakage = LeakageModel(floorplan, 8.0 * power_scale)
    net = model.network
    unit_idx = np.array([net.index(f"core0.{u}") for u in UNIT_ORDER])
    l2_idx = net.index("l2_0")
    n_blocks = net.n_blocks
    n_bins = trace.n_samples

    def l2_power(activity: float) -> float:
        return PLATFORM_IDLE_W + power_scale * L2_BANK_PEAK_W * (
            L2_IDLE_FRACTION + (1 - L2_IDLE_FRACTION) * activity
        )

    # The real protocol runs each benchmark for minutes before (and while)
    # polling — the whole stack is warm. Start from the benchmark's mean-
    # power steady state and let the phases swing around it.
    mean_p = np.zeros(n_blocks)
    mean_p[unit_idx] = trace.unit_power.mean(axis=0)
    mean_p[l2_idx] = l2_power(float(trace.l2_activity.mean()))
    initialize_coupled_steady(model, leakage, mean_p, tolerance_c=1e-3)

    n_steps = max(1, int(round(duration_s / dt)))
    readings = np.empty(n_steps)
    p = np.zeros(n_blocks)
    for k in range(n_steps):
        b = k % n_bins
        p[:] = 0.0
        p[unit_idx] = trace.unit_power[b]
        p[l2_idx] = l2_power(float(trace.l2_activity[b]))
        p += leakage.power(model.temperatures[:n_blocks])
        model.step(p, dt)
        readings[k] = model.temperature_of(DIODE_BLOCK)
    return np.round(readings / QUANTIZATION_C) * QUANTIZATION_C


def compute(
    duration_s: float = 900.0,
    dt: float = 20e-3,
    package: ThermalPackage = MOBILE_PACKAGE,
    power_scale: float = MOBILE_POWER_SCALE,
    seed: int = DEFAULT_ROOT_SEED,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[ParallelRunner] = None,
) -> List[Table1Row]:
    """Measure every Table 1 benchmark; returns rows in the paper's order.

    Each benchmark is an independent measurement, so the batch goes
    through ``runner`` (default: the session's default runner) — with
    ``jobs > 1`` benchmarks measure concurrently, and with a disk cache
    re-computing the table only re-measures changed points.
    """
    names = list(benchmarks) if benchmarks is not None else (
        list(PAPER_STABLE) + list(PAPER_RANGES)
    )
    runner = runner or get_default_runner()
    get_logger(__name__).info(
        "table1: measuring %d benchmarks for %.0f s at dt=%.3g",
        len(names),
        duration_s,
        dt,
    )
    points = [
        Table1Point(name, duration_s, dt, package, power_scale, seed)
        for name in names
    ]
    all_readings = runner.map_cached(
        "table1-readings",
        _measure_point,
        points,
        labels=[f"table1/{name}" for name in names],
    )
    rows = []
    for name, readings in zip(names, all_readings):
        profile = get_benchmark(name)
        settle = readings[len(readings) // 3:]  # discard the ramp-up
        stable = not profile.phase.is_oscillating
        if stable:
            steady = int(round(float(np.median(settle))))
            row = Table1Row(name, _category(profile), True, steady, None)
        else:
            lo, hi = int(settle.min()), int(settle.max())
            row = Table1Row(name, _category(profile), False, None, (lo, hi))
        rows.append(row)
    return rows


def _category(profile) -> str:
    return "SPECint" if profile.suite == "int" else "SPECfp"


def render(rows: Sequence[Table1Row]) -> str:
    """Paper-style Tables 1a and 1b."""
    stable_rows = [
        [r.benchmark, r.category, f"{r.steady_c}"]
        for r in rows
        if r.stable
    ]
    osc_rows = [
        [r.benchmark, r.category, f"{r.range_c[0]}-{r.range_c[1]}"]
        for r in rows
        if not r.stable
    ]
    parts = []
    if stable_rows:
        parts.append(
            render_table(
                ["benchmark", "category", "steady-state temperature (C)"],
                stable_rows,
                title="Table 1a: temperatures of stable benchmarks",
            )
        )
    if osc_rows:
        parts.append(
            render_table(
                ["benchmark", "category", "temperature range (C)"],
                osc_rows,
                title="Table 1b: temperature ranges of oscillating benchmarks",
            )
        )
    return "\n\n".join(parts)


def main() -> str:
    """Compute and print both sub-tables."""
    text = render(compute())
    print(text)
    return text


if __name__ == "__main__":
    main()
