"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``compute(...)`` returning structured rows and
``render(...)`` producing a paper-style plain-text table, so benchmark
output can be compared against the publication side by side. Runs are
cached per (workload, policy, configuration) in :mod:`repro.experiments.
common` — the tables share the same underlying 12x12 grid of simulations.

Experiment index (see DESIGN.md for the full mapping):

* :mod:`repro.experiments.table1` — Pentium M-style per-benchmark
  temperatures (stable temps and oscillation ranges);
* :mod:`repro.experiments.table5` — non-migration policy averages;
* :mod:`repro.experiments.figure3` — per-workload normalised throughput;
* :mod:`repro.experiments.figure5` — migration/DVFS time series;
* :mod:`repro.experiments.table6` — counter-based migration;
* :mod:`repro.experiments.table7` — sensor-based migration;
* :mod:`repro.experiments.figure7` — per-workload migration deltas;
* :mod:`repro.experiments.table8` — the full 12-policy summary grid;
* :mod:`repro.experiments.ablations` — threshold, sensor-fidelity,
  PI-gain, and migration-period sensitivity studies.
"""

from repro.experiments.common import (
    average_metrics,
    clear_result_cache,
    default_config,
    run_matrix,
)

__all__ = [
    "average_metrics",
    "clear_result_cache",
    "default_config",
    "run_matrix",
]
