"""Declarative many-core scenarios: core classes, tech nodes, presets.

The paper evaluates its 12-policy taxonomy on one homogeneous 4-core
90 nm CMP. This module generalises that chip into data: a
:class:`Scenario` names a topology (the paper's core row or a tiled
mesh), a tuple of :class:`CoreClass` entries (big/LITTLE/accelerator
tiles with their own unit layout, area, power scale and DVFS floor) and
a :class:`TechNode` (HotSpot/lumos-style voltage/frequency ladder plus
leakage parameters). The engine, fleet, CLI and experiments consume
scenarios purely through this module, so adding a chip is a table edit,
not a code change — see ``docs/SCENARIOS.md`` for the gallery and a
worked "add your own core class" example.

Everything here is a frozen dataclass built from tuples, strings and
numbers only, so scenarios hash into the runner's content-addressed
cache key via ``canonicalize`` without special cases.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.control.pi import MAX_FREQUENCY_SCALE, MIN_FREQUENCY_SCALE
from repro.thermal.floorplan import Floorplan
from repro.thermal.layouts import (
    CORE_UNITS,
    DEFAULT_CORE_LAYOUT,
    DEFAULT_CORE_SIZE_MM,
    LayoutItems,
    build_cmp_floorplan,
    build_mesh_floorplan,
)
from repro.uarch.config import MachineConfig, default_machine_config

#: Cache-heavy layout for efficiency ("LITTLE") cores: larger caches in
#: the bottom band, a thinner execution band on top — in-order-style
#: silicon where SRAM dominates and the datapath is modest.
EFFICIENCY_CORE_LAYOUT: LayoutItems = (
    ("icache", (0.00, 0.00, 0.50, 0.45)),
    ("dcache", (0.50, 0.00, 0.50, 0.45)),
    ("bpred", (0.00, 0.45, 0.25, 0.25)),
    ("decode", (0.25, 0.45, 0.25, 0.25)),
    ("iq", (0.50, 0.45, 0.25, 0.25)),
    ("lsu", (0.75, 0.45, 0.25, 0.25)),
    ("fxu", (0.00, 0.70, 0.22, 0.30)),
    ("intreg", (0.22, 0.70, 0.13, 0.30)),
    ("bxu", (0.35, 0.70, 0.13, 0.30)),
    ("fpreg", (0.48, 0.70, 0.13, 0.30)),
    ("fpu", (0.61, 0.70, 0.39, 0.30)),
)

#: Datapath-heavy layout for accelerator-leaning tiles: small front end,
#: a tall execution band where the register files and FPU dominate.
ACCELERATOR_CORE_LAYOUT: LayoutItems = (
    ("icache", (0.00, 0.00, 0.30, 0.25)),
    ("dcache", (0.30, 0.00, 0.70, 0.25)),
    ("bpred", (0.00, 0.25, 0.20, 0.20)),
    ("decode", (0.20, 0.25, 0.30, 0.20)),
    ("iq", (0.50, 0.25, 0.25, 0.20)),
    ("lsu", (0.75, 0.25, 0.25, 0.20)),
    ("fxu", (0.00, 0.45, 0.25, 0.55)),
    ("intreg", (0.25, 0.45, 0.15, 0.55)),
    ("bxu", (0.40, 0.45, 0.10, 0.55)),
    ("fpreg", (0.50, 0.45, 0.15, 0.55)),
    ("fpu", (0.65, 0.45, 0.35, 0.55)),
)


@dataclass(frozen=True)
class CoreClass:
    """One core type placeable on a scenario chip.

    ``power_scale`` multiplies the machine's nominal per-core power
    (a LITTLE core burns a fraction of a big core's watts);
    ``min_freq_scale`` is the class's lowest legal DVFS operating point
    (simple in-order cores often cannot scale as deep as big cores
    hold voltage margins); ``layout`` is the fractional unit plan as
    hashable items.
    """

    name: str
    size_mm: float = DEFAULT_CORE_SIZE_MM
    power_scale: float = 1.0
    min_freq_scale: float = MIN_FREQUENCY_SCALE
    layout: LayoutItems = DEFAULT_CORE_LAYOUT

    def __post_init__(self) -> None:
        """Validate geometry, power and operating-point parameters."""
        if not self.size_mm > 0:
            raise ValueError(f"size_mm must be positive, got {self.size_mm}")
        if not self.power_scale > 0:
            raise ValueError(
                f"power_scale must be positive, got {self.power_scale}"
            )
        if not 0.0 < self.min_freq_scale < MAX_FREQUENCY_SCALE:
            raise ValueError(
                "min_freq_scale must be in (0, "
                f"{MAX_FREQUENCY_SCALE}), got {self.min_freq_scale}"
            )
        units = sorted(u for u, _ in self.layout)
        if units != sorted(CORE_UNITS):
            raise ValueError(
                f"layout for class {self.name!r} must cover exactly "
                f"{sorted(CORE_UNITS)}, got {units}"
            )


@dataclass(frozen=True)
class TechNode:
    """A CMOS technology node: clocking, DVFS ladder, leakage physics.

    ``dvfs_ladder`` lists ``(voltage_scale, frequency_scale)`` operating
    points in ascending frequency order (HotSpot/lumos-style per-node
    tables); the lowest rung bounds how deep PI-DVFS may throttle on
    this node. ``leakage_beta`` / ``leakage_t_ref_c`` parameterise the
    exponential temperature dependence of leakage
    (``P = P_ref * exp(beta * (T - T_ref))``): smaller nodes leak more
    steeply, which is exactly the feedback loop the paper's thermal
    policies must tame.
    """

    name: str
    process_nm: float
    vdd: float
    clock_hz: float
    dvfs_ladder: Tuple[Tuple[float, float], ...]
    leakage_beta: float = 0.028
    leakage_t_ref_c: float = 85.0

    def __post_init__(self) -> None:
        """Validate the ladder's range and monotonicity."""
        if not self.dvfs_ladder:
            raise ValueError(f"tech node {self.name!r} needs a DVFS ladder")
        freqs = [f for _, f in self.dvfs_ladder]
        if any(not 0.0 < f <= MAX_FREQUENCY_SCALE for f in freqs):
            raise ValueError(
                f"ladder frequency scales must be in (0, "
                f"{MAX_FREQUENCY_SCALE}]: {freqs}"
            )
        if freqs != sorted(freqs):
            raise ValueError(
                f"ladder must ascend in frequency scale: {freqs}"
            )
        if any(not 0.0 < v <= 1.5 for v, _ in self.dvfs_ladder):
            raise ValueError(
                "ladder voltage scales must be in (0, 1.5]: "
                f"{[v for v, _ in self.dvfs_ladder]}"
            )

    @property
    def min_freq_scale(self) -> float:
        """The node's lowest legal frequency scale (bottom ladder rung)."""
        return self.dvfs_ladder[0][1]


#: The paper's node: 3.6 GHz at 90 nm, the full 0.2–1.0 DVFS range.
TECH_90NM = TechNode(
    name="90nm",
    process_nm=90.0,
    vdd=1.0,
    clock_hz=3.6e9,
    dvfs_ladder=(
        (0.70, 0.20),
        (0.78, 0.40),
        (0.85, 0.60),
        (0.93, 0.80),
        (1.00, 1.00),
    ),
)

#: 65 nm shrink: slightly faster clock, steeper leakage.
TECH_65NM = TechNode(
    name="65nm",
    process_nm=65.0,
    vdd=1.0,
    clock_hz=4.0e9,
    dvfs_ladder=(
        (0.72, 0.25),
        (0.80, 0.45),
        (0.87, 0.65),
        (0.94, 0.85),
        (1.00, 1.00),
    ),
    leakage_beta=0.032,
)

#: 45 nm node for dense meshes: many slower cores, leakage-dominated.
TECH_45NM = TechNode(
    name="45nm",
    process_nm=45.0,
    vdd=0.9,
    clock_hz=3.2e9,
    dvfs_ladder=(
        (0.70, 0.30),
        (0.78, 0.50),
        (0.86, 0.70),
        (0.93, 0.85),
        (1.00, 1.00),
    ),
    leakage_beta=0.036,
    leakage_t_ref_c=80.0,
)

#: The paper's out-of-order big core.
PERFORMANCE_CORE = CoreClass(name="perf")

#: A LITTLE core: ~42% of the big core's area, 45% of its power, and a
#: shallower DVFS floor (in-order pipelines hold voltage margins).
EFFICIENCY_CORE = CoreClass(
    name="little",
    size_mm=2.6,
    power_scale=0.45,
    min_freq_scale=0.40,
    layout=EFFICIENCY_CORE_LAYOUT,
)

#: A dense mesh tile for 64-core chips: small, mid-power, cache-light.
DENSE_CORE = CoreClass(
    name="dense",
    size_mm=2.0,
    power_scale=0.55,
    min_freq_scale=0.30,
    layout=ACCELERATOR_CORE_LAYOUT,
)


@dataclass(frozen=True)
class Scenario:
    """A complete chip description: topology × core classes × tech node.

    ``topology`` is ``"row"`` (the paper's cores-over-L2 strip, built by
    :func:`repro.thermal.layouts.build_cmp_floorplan`) or ``"mesh"``
    (tiled ``rows × cols`` fabric from
    :func:`repro.thermal.layouts.build_mesh_floorplan`). ``core_classes``
    assigns a class per core, row-major; a length-1 tuple replicates one
    class across the whole chip.
    """

    name: str
    rows: int
    cols: int
    core_classes: Tuple[CoreClass, ...]
    tech: TechNode = TECH_90NM
    topology: str = "mesh"

    def __post_init__(self) -> None:
        """Validate shape, class count and topology."""
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                f"rows and cols must be >= 1, got {self.rows}x{self.cols}"
            )
        if self.topology not in ("row", "mesh"):
            raise ValueError(
                f"topology must be 'row' or 'mesh', got {self.topology!r}"
            )
        if self.topology == "row" and self.rows != 1:
            raise ValueError("row topology requires rows == 1")
        n = self.rows * self.cols
        if len(self.core_classes) not in (1, n):
            raise ValueError(
                f"core_classes must have 1 or {n} entries, "
                f"got {len(self.core_classes)}"
            )

    @property
    def n_cores(self) -> int:
        """Total core count (``rows * cols``)."""
        return self.rows * self.cols

    def core_class_for(self, core: int) -> CoreClass:
        """The class of core ``core`` (row-major index)."""
        if len(self.core_classes) == 1:
            return self.core_classes[0]
        return self.core_classes[core]

    def core_power_scales(self) -> List[float]:
        """Per-core power multipliers relative to the nominal core."""
        return [self.core_class_for(i).power_scale for i in range(self.n_cores)]

    def core_min_scales(self) -> List[float]:
        """Per-core DVFS floors: max of class floor and ladder bottom."""
        floor = self.tech.min_freq_scale
        return [
            max(self.core_class_for(i).min_freq_scale, floor)
            for i in range(self.n_cores)
        ]

    def build_floorplan(self) -> Floorplan:
        """Construct (memoised) the scenario's chip floorplan."""
        classes = [self.core_class_for(i) for i in range(self.n_cores)]
        if self.topology == "row":
            return build_cmp_floorplan(
                n_cores=self.n_cores,
                core_sizes_mm=[c.size_mm for c in classes],
                core_layouts=[c.layout for c in classes],
            )
        return build_mesh_floorplan(self.rows, self.cols, classes)

    def machine_config(
        self, base: Optional[MachineConfig] = None
    ) -> MachineConfig:
        """A machine config with this scenario's core count and node."""
        base = default_machine_config() if base is None else base
        return dataclasses.replace(
            base,
            n_cores=self.n_cores,
            process_nm=self.tech.process_nm,
            vdd=self.tech.vdd,
            clock_hz=self.tech.clock_hz,
        )


#: The paper's chip expressed as a scenario (row of four big cores).
CMP4 = Scenario(
    name="cmp4",
    rows=1,
    cols=4,
    core_classes=(PERFORMANCE_CORE,),
    tech=TECH_90NM,
    topology="row",
)

#: Homogeneous 16-core mesh of big cores on the paper's node.
MESH16 = Scenario(
    name="mesh16",
    rows=4,
    cols=4,
    core_classes=(PERFORMANCE_CORE,),
    tech=TECH_90NM,
)

#: Dense 64-core mesh on the 45 nm node (leakage-dominated regime).
MESH64 = Scenario(
    name="mesh64",
    rows=8,
    cols=8,
    core_classes=(DENSE_CORE,),
    tech=TECH_45NM,
)

#: big.LITTLE 2×4 mesh: a row of four big cores under four LITTLE cores.
BIGLITTLE_4_4 = Scenario(
    name="biglittle4+4",
    rows=2,
    cols=4,
    core_classes=(
        PERFORMANCE_CORE,
        PERFORMANCE_CORE,
        PERFORMANCE_CORE,
        PERFORMANCE_CORE,
        EFFICIENCY_CORE,
        EFFICIENCY_CORE,
        EFFICIENCY_CORE,
        EFFICIENCY_CORE,
    ),
    tech=TECH_90NM,
)

#: Name -> preset registry consumed by the CLI and experiments.
SCENARIOS: Dict[str, Scenario] = {
    s.name: s for s in (CMP4, MESH16, MESH64, BIGLITTLE_4_4)
}


def get_scenario(name: str) -> Scenario:
    """Look up a preset scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Registered preset names, in registry order."""
    return list(SCENARIOS)
