"""Performance benchmark: engine throughput in simulated-steps/second.

Unlike the table/figure benchmarks (which measure one full experiment,
rounds=1), this one uses pytest-benchmark conventionally — repeated
rounds over a fixed small run — so regressions in the hot loop (power
assembly, thermal step, policy updates) show up as timing changes across
revisions.
"""

import pytest

from repro.core.taxonomy import spec_by_key
from repro.sim.engine import SimulationConfig, ThermalTimingSimulator
from repro.sim.workloads import get_workload

W7 = get_workload("workload7")
RUN_S = 0.02  # 720 engine steps


def _run(spec_key):
    sim = ThermalTimingSimulator(
        W7.benchmarks,
        spec_by_key(spec_key) if spec_key else None,
        SimulationConfig(duration_s=RUN_S),
    )
    return sim.run()


@pytest.mark.parametrize(
    "spec_key",
    [
        None,
        "distributed-stop-go-none",
        "distributed-dvfs-none",
        "distributed-dvfs-sensor",
    ],
    ids=["unthrottled", "stopgo", "dvfs", "dvfs+sensor-migration"],
)
def test_engine_steps_per_second(benchmark, spec_key):
    result = benchmark.pedantic(
        _run, args=(spec_key,), rounds=3, iterations=1, warmup_rounds=1
    )
    # Sanity on the measured run itself.
    assert result.bips > 0
    n_steps = round(RUN_S / (100_000 / 3.6e9))
    benchmark.extra_info["simulated_steps"] = n_steps
    benchmark.extra_info["steps_per_second"] = (
        n_steps / benchmark.stats.stats.mean
    )
