"""Performance benchmark: engine throughput in simulated-steps/second.

Unlike the table/figure benchmarks (which measure one full experiment,
rounds=1), this one uses pytest-benchmark conventionally — repeated
rounds over a fixed small run — so regressions in the hot loop (power
assembly, thermal step, policy updates) show up as timing changes across
revisions.

The case list is shared with ``repro bench`` / ``BENCH_engine.json``
(see :mod:`repro.sim.bench`): the four policy configs, a faulted DVFS
run (fusion blocked, fault hot paths exercised), and a full-length
Table-1-style characterization run.
"""

import pytest

from repro.sim.bench import ENGINE_BENCH_CASES, build_simulator, case_steps

# Sweep-backend cases (fleet vs pool batches) time a whole runner batch,
# not one simulator — `repro bench` measures those; here we keep the
# single-engine protocol.
SHORT_CASES = [c for c in ENGINE_BENCH_CASES if c.short and c.backend is None]
FULL_CASES = [
    c for c in ENGINE_BENCH_CASES if not c.short and c.backend is None
]


def _measure(benchmark, case, rounds):
    # Fresh simulator per round, built outside the timed body — the same
    # run()-only protocol as `repro bench` (docs/PERFORMANCE.md).
    def setup():
        return (build_simulator(case),), {}

    result = benchmark.pedantic(
        lambda sim: sim.run(),
        setup=setup, rounds=rounds, iterations=1, warmup_rounds=1,
    )
    # Sanity on the measured run itself.
    assert result.bips > 0
    n_steps = case_steps(case)
    if benchmark.stats is not None:  # None under --benchmark-disable
        benchmark.extra_info["simulated_steps"] = n_steps
        benchmark.extra_info["steps_per_second"] = (
            n_steps / benchmark.stats.stats.mean
        )


@pytest.mark.parametrize(
    "case", SHORT_CASES, ids=[c.key for c in SHORT_CASES]
)
def test_engine_steps_per_second(benchmark, case):
    _measure(benchmark, case, rounds=3)


@pytest.mark.parametrize(
    "case", FULL_CASES, ids=[c.key for c in FULL_CASES]
)
def test_engine_steps_per_second_full(benchmark, case):
    # Full-length run: one round is ~25x a short round, so don't repeat.
    _measure(benchmark, case, rounds=1)
