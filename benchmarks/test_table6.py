"""Benchmark: regenerate Table 6 (counter-based migration).

Paper reference: stop-go + migration 1.18X (1.91 over non-migration);
dist stop-go 2.02X (2.02); global DVFS 2.18X (1.06); dist DVFS 2.57X
(1.02).
"""

from benchmarks.conftest import save_result
from repro.experiments import table6


def test_table6(benchmark, config, results_dir):
    rows = benchmark.pedantic(
        table6.compute, args=(config,), rounds=1, iterations=1
    )
    save_result(results_dir, "table6", table6.render(rows))

    by_key = {r.spec_key: r for r in rows}
    # Migration is a large win on stop-go policies...
    assert by_key["distributed-stop-go-counter"].speedup_over_base > 1.25
    assert by_key["global-stop-go-counter"].speedup_over_base > 1.25
    # ...and roughly neutral on DVFS (diminishing returns).
    assert 0.93 < by_key["distributed-dvfs-counter"].speedup_over_base < 1.10
    assert 0.93 < by_key["global-dvfs-counter"].speedup_over_base < 1.15
    # Migrations actually happened.
    assert by_key["distributed-stop-go-counter"].migrations > 0
