"""Benchmark: regenerate Figure 7 (per-workload migration deltas on
distributed DVFS).

Paper reference: bars between about -2% and +8% — migration is a small
effect on the best base policy, positive for most workloads, negative for
a few (both mechanisms are approximation algorithms).
"""

from benchmarks.conftest import save_result
from repro.experiments import figure7


def test_figure7(benchmark, config, results_dir):
    rows = benchmark.pedantic(
        figure7.compute, args=(config,), rounds=1, iterations=1
    )
    save_result(results_dir, "figure7", figure7.render(rows))

    assert len(rows) == 12
    for r in rows:
        # Deltas are small-percentage effects, as in the paper.
        assert -10.0 < r.counter_delta_pct < 15.0, r.workload
        assert -10.0 < r.sensor_delta_pct < 15.0, r.workload
    # Not all workloads benefit (the paper's figure includes negatives),
    # and the average magnitude is small.
    avg_counter = sum(r.counter_delta_pct for r in rows) / len(rows)
    avg_sensor = sum(r.sensor_delta_pct for r in rows) / len(rows)
    assert abs(avg_counter) < 5.0
    assert abs(avg_sensor) < 5.0
