"""Benchmark: the sensitivity studies (threshold, sensors, PI gains,
migration period).

Paper reference for the threshold sweep (Section 5.3): raising the limit
to 100 C raises duty cycles by ~10-15 percentage points while preserving
the relative tradeoffs.
"""

from benchmarks.conftest import save_result
from repro.experiments import ablations
from repro.experiments.common import default_config


def _compute_all(config):
    return {
        "threshold": ablations.threshold_sweep(config=config),
        "sensors": ablations.sensor_fidelity_sweep(config=config),
        "sensor_bias": ablations.sensor_bias_sweep(config=config),
        "pi_gains": ablations.pi_gain_sweep(config=config),
        "migration_period": ablations.migration_period_sweep(config=config),
    }


def test_ablations(benchmark, config, results_dir):
    sweeps = benchmark.pedantic(
        _compute_all, args=(config,), rounds=1, iterations=1
    )
    text = "\n\n".join(
        ablations.render(points, f"Ablation: {name}")
        for name, points in sweeps.items()
    )
    save_result(results_dir, "ablations", text)

    # Threshold: duty rises with the limit, ordering preserved.
    by_label = {p.label: p for p in sweeps["threshold"]}
    gain_sg = (
        by_label["Dist. stop-go @ 100.0C"].duty_cycle
        - by_label["Dist. stop-go @ 84.2C"].duty_cycle
    )
    assert 0.03 < gain_sg < 0.45  # paper: +10-15 points
    assert (
        by_label["Dist. DVFS @ 100.0C"].bips
        > by_label["Dist. stop-go @ 100.0C"].bips
    )

    # PI gains: robust across an 8x range around the paper's values
    # (similar BIPS, no emergencies). The 0.25x point marks the lower
    # robustness boundary — a controller that sluggish can briefly
    # overshoot the envelope, which is why it is in the sweep.
    pi_points = sweeps["pi_gains"]
    bips = [p.bips for p in pi_points]
    assert max(bips) / min(bips) < 1.25
    assert all(
        p.emergency_s < 0.002 for p in pi_points if p.label != "gains x0.25"
    )

    # Sensor fidelity: ideal sensors are clean; degradation is graceful.
    sensor = {p.label: p for p in sweeps["sensors"]}
    assert sensor["ideal"].emergency_s == 0.0
    assert sensor["noise 2.0C"].bips > 0.5 * sensor["ideal"].bips

    # Sensor bias: a low-reading sensor breaks the envelope; the hardware
    # trip restores safety.
    bias = {p.label: p for p in sweeps["sensor_bias"]}
    assert bias["reads 3C low"].emergency_s > 0
    assert bias["reads 3C low + hardware trip"].emergency_s == 0.0
