"""Benchmark: regenerate Figure 3 (per-workload normalised throughput).

Paper reference: distributed DVFS wins on every workload (bars up to
~2.8X); global stop-go sits far below 1.0 everywhere.
"""

from benchmarks.conftest import save_result
from repro.experiments import figure3


def test_figure3(benchmark, config, results_dir):
    rows = benchmark.pedantic(
        figure3.compute, args=(config,), rounds=1, iterations=1
    )
    save_result(results_dir, "figure3", figure3.render(rows))

    assert len(rows) == 12
    for r in rows:
        # Distributed DVFS dominates global stop-go on every workload.
        assert (
            r.relative["distributed-dvfs-none"]
            > r.relative["global-stop-go-none"]
        ), r.workload
        # Global stop-go never beats the distributed stop-go baseline.
        assert r.relative["global-stop-go-none"] <= 1.05, r.workload
    # Distributed DVFS wins on the large majority of workloads (the paper
    # shows it winning everywhere; cool workloads can tie).
    wins = sum(
        r.relative["distributed-dvfs-none"]
        >= r.relative["global-dvfs-none"] - 1e-9
        for r in rows
    )
    assert wins >= 9
