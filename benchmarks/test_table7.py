"""Benchmark: regenerate Table 7 (sensor-based migration).

Paper reference: the sensor-based mechanism performs about the same as
counter-based, "slightly better overall" (speedups over counter-based of
0.97-1.02 per row); on dist DVFS it reaches 2.59X.
"""

from benchmarks.conftest import save_result
from repro.experiments import table7


def test_table7(benchmark, config, results_dir):
    rows = benchmark.pedantic(
        table7.compute, args=(config,), rounds=1, iterations=1
    )
    save_result(results_dir, "table7", table7.render(rows))

    by_key = {r.spec_key: r for r in rows}
    # Same large-win-on-stop-go / neutral-on-DVFS structure as Table 6.
    assert by_key["distributed-stop-go-sensor"].speedup_over_base > 1.2
    assert 0.92 < by_key["distributed-dvfs-sensor"].speedup_over_base < 1.10
    # Sensor-vs-counter stays within a few percent per row (paper:
    # 0.97-1.02).
    for r in rows:
        assert 0.85 < r.speedup_over_counter < 1.15, r.policy_name
