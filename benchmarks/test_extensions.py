"""Benchmark: the asymmetric-cores extension study.

Section 9 of the paper names asymmetric cores as a possible extension of
the taxonomy. The study shows (a) thread placement matters on an
asymmetric chip where it does not on the symmetric one, and (b)
sensor-based migration — whose thread-core thermal table learns per-core
biases — recovers a bad placement where core-blind counter-based
migration cannot.
"""

from benchmarks.conftest import save_result
from repro.experiments import extensions
from repro.experiments.common import default_config


def _compute(config):
    return (
        extensions.placement_sensitivity(config),
        extensions.asymmetric_migration_study(config),
        extensions.smt_study(config),
    )


def test_extensions_asymmetric_cores(benchmark, config, results_dir):
    placement, recovery, smt = benchmark.pedantic(
        _compute, args=(config,), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            extensions.render(
                placement, "Extension: asymmetric cores — placement sensitivity"
            ),
            extensions.render(
                recovery, "Extension: asymmetric cores — migration recovery"
            ),
            extensions.render(smt, "Extension: SMT vs CMP at equal area"),
        ]
    )
    save_result(results_dir, "extensions_asymmetric", text)

    by_label = {r.label: r for r in placement}
    # Symmetric chip: placement is (near) irrelevant.
    sym_gap = abs(
        by_label["symmetric, hot on cores 0/1"].bips
        - by_label["symmetric, hot on cores 2/3"].bips
    )
    # Asymmetric chip: placement matters, and good > bad.
    asym_gap = (
        by_label["asymmetric, hot on BIG cores"].bips
        - by_label["asymmetric, hot on SMALL cores"].bips
    )
    assert asym_gap > 0
    assert asym_gap > 2 * sym_gap

    rec = {r.label: r for r in recovery}
    # Sensor-based migration recovers the bad placement; counter-based,
    # being core-blind, gains far less.
    sensor_gain = rec["sensor-based migration"].bips - rec["no migration"].bips
    counter_gain = rec["counter-based migration"].bips - rec["no migration"].bips
    assert sensor_gain > 0.02 * rec["no migration"].bips
    assert sensor_gain > counter_gain
    assert rec["sensor-based migration"].migrations > 0

    # SMT study: at equal area, one thread per smaller core wins under a
    # thermal limit (the Donald & Martonosi [9] / Li et al. finding).
    by_smt = {r.label: r for r in smt}
    cmp4 = by_smt["CMP-4: one thread per core"].bips
    best_smt = max(
        r.bips for label, r in by_smt.items() if label.startswith("SMT-2")
    )
    assert cmp4 > best_smt
