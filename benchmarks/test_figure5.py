"""Benchmark: regenerate Figure 5 (temperatures and DVFS control across
migrations on one core, workload gzip-twolf-ammp-lucas).

Paper reference: the core's residents alternate (lucas -> gzip -> lucas ->
ammp in their run); the critical hotspot's temperature stays serviced by
the PI controller in the high-70s/low-80s while the other hotspot drifts,
and the frequency scale swings roughly between 0.5 and 1.0.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments import figure5


def test_figure5(benchmark, config, results_dir):
    data = benchmark.pedantic(
        figure5.compute, args=(config,), rounds=1, iterations=1
    )
    save_result(results_dir, "figure5", figure5.render(data))

    # Multiple residencies within the window (several migration intervals).
    assert len(data.resident_sequence) >= 2
    # Temperatures live in the controlled band.
    for arr in (data.intreg_temp_c, data.fpreg_temp_c):
        assert arr.min() > 60.0
        assert arr.max() < 84.6
    # The control output actually swings (Figure 5b's 0.5-1.0 range).
    assert data.frequency_scale.max() - data.frequency_scale.min() > 0.2
    # The two hotspots separate (the drift the migration policy exploits).
    assert np.abs(data.intreg_temp_c - data.fpreg_temp_c).max() > 2.0
