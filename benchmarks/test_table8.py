"""Benchmark: regenerate Table 8 (the full 12-policy summary grid).

Paper reference::

                 no migration    counter-based    sensor-based
                 stop-go  DVFS   stop-go  DVFS    stop-go  DVFS
    Global        0.62X   2.1X    1.2X    2.2X     1.2X    2.1X
    Distributed  baseline 2.5X    2X      2.6X     2.1X    2.6X
"""

from benchmarks.conftest import save_result
from repro.core.taxonomy import MigrationKind, Scope, ThrottleKind
from repro.experiments import table8


def test_table8(benchmark, config, results_dir):
    grid = benchmark.pedantic(
        table8.compute, args=(config,), rounds=1, iterations=1
    )
    save_result(results_dir, "table8", table8.render(grid))

    rel = grid.relative
    # Within-row orderings the paper's table exhibits.
    assert rel["global-stop-go-none"] < rel["distributed-stop-go-none"]
    assert rel["global-dvfs-none"] <= rel["distributed-dvfs-none"] + 0.02
    assert rel["global-stop-go-counter"] > rel["global-stop-go-none"]
    assert rel["distributed-stop-go-counter"] > 1.25
    assert rel["distributed-stop-go-sensor"] > 1.2

    # DVFS dominates stop-go within every migration column.
    for scope in ("global", "distributed"):
        for mig in ("none", "counter", "sensor"):
            assert (
                rel[f"{scope}-dvfs-{mig}"] > rel[f"{scope}-stop-go-{mig}"]
            ), (scope, mig)

    # The best combination is a distributed DVFS + migration policy family
    # member (paper: dist DVFS + sensor migration at 2.6X).
    assert "distributed-dvfs" in grid.best_key
