"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper. The
simulation horizon defaults to the paper's 0.5 s of silicon time; set
``REPRO_BENCH_DURATION`` (seconds) to trade fidelity for speed. Results
are cached across benchmarks within a session (the tables are views over
one policy x workload grid), and each benchmark writes its rendered
output under ``results/`` for side-by-side comparison with the paper —
EXPERIMENTS.md is assembled from those files.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.common import default_config

#: Where rendered tables/figures are written.
RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_duration() -> float:
    """Simulation horizon for benchmark runs (seconds of silicon time)."""
    return float(os.environ.get("REPRO_BENCH_DURATION", "0.5"))


@pytest.fixture(scope="session")
def config():
    """The session's simulation configuration."""
    return default_config(duration_s=bench_duration())


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Output directory for rendered experiment artifacts."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one rendered experiment and echo it to the test log."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
