"""Write the tracked engine-throughput baseline (``BENCH_engine.json``).

Thin script wrapper around :mod:`repro.sim.bench` so the artifact can be
regenerated without pytest::

    PYTHONPATH=src python benchmarks/bench_to_json.py            # full suite
    PYTHONPATH=src python benchmarks/bench_to_json.py --short \
        --check BENCH_engine.json                                # CI gate

Identical to ``python -m repro bench`` (same flags, same measurement
protocol); both delegate to :func:`repro.sim.bench.main`.
"""

import sys

from repro.sim.bench import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
