"""Benchmark: regenerate Table 2 (the DTM taxonomy itself).

This is structural rather than simulated: the 12-policy product of the
three axes, rendered the way the paper lays it out, plus a tiny build
round-trip proving every cell is constructible.
"""

from benchmarks.conftest import save_result
from repro.core.taxonomy import (
    ALL_POLICY_SPECS,
    MigrationKind,
    PolicySpec,
    Scope,
    ThrottleKind,
    build_policy,
)
from repro.util.tables import render_grid


def _render_taxonomy() -> str:
    cols = []
    for migration in (MigrationKind.NONE, MigrationKind.COUNTER, MigrationKind.SENSOR):
        for throttle in (ThrottleKind.STOP_GO, ThrottleKind.DVFS):
            cols.append((migration, throttle))
    rows = []
    for scope in (Scope.GLOBAL, Scope.DISTRIBUTED):
        rows.append(
            [PolicySpec(t, scope, m).name for m, t in cols]
        )
    return render_grid(
        ["Global", "Distributed"],
        [f"{m.value}/{t.value}" for m, t in cols],
        rows,
        corner="scope",
        title="Table 2: thermal control taxonomy (12 schemes)",
    )


def _build_all():
    dt = 100_000 / 3.6e9
    return [build_policy(s, n_cores=4, dt=dt) for s in ALL_POLICY_SPECS]


def test_table2_taxonomy(benchmark, results_dir):
    built = benchmark.pedantic(_build_all, rounds=1, iterations=1)
    save_result(results_dir, "table2_taxonomy", _render_taxonomy())

    assert len(built) == 12
    assert len(ALL_POLICY_SPECS) == 12
    migrations = [m for _t, m in built if m is not None]
    assert len(migrations) == 8  # two migration kinds x four base policies
