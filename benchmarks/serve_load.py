"""Load-test the serve subsystem and write ``BENCH_serve.json``.

Thin script wrapper around :mod:`repro.serve.bench` so the latency
artifact can be regenerated without pytest::

    PYTHONPATH=src python benchmarks/serve_load.py               # artifact
    PYTHONPATH=src python benchmarks/serve_load.py \
        --check BENCH_serve.json                                 # CI gate
    PYTHONPATH=src python benchmarks/serve_load.py \
        --url http://127.0.0.1:8023                              # live server

Identical to ``python -m repro serve-bench`` (same flags, same
cold/warm measurement protocol); both delegate to
:func:`repro.serve.bench.main`.
"""

import sys

from repro.serve.bench import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
