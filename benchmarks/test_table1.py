"""Benchmark: regenerate Table 1 (mobile per-benchmark temperatures).

Paper reference (Pentium M Banias, ACPI diode): stable temps 59-71 C with
mcf coolest and gzip/sixtrack hottest; bzip2/ammp/facerec/fma3d oscillate
over ~5-6 degree ranges.
"""

from benchmarks.conftest import save_result
from repro.experiments import table1


def test_table1(benchmark, results_dir):
    rows = benchmark.pedantic(table1.compute, rounds=1, iterations=1)
    save_result(results_dir, "table1", table1.render(rows))

    steady = {r.benchmark: r.steady_c for r in rows if r.stable}
    ranges = {r.benchmark: r.range_c for r in rows if not r.stable}

    # Table 1a shape: mcf coolest, gzip/sixtrack hottest, band ~59-75 C.
    assert steady["mcf"] == min(steady.values())
    top_two = sorted(steady, key=steady.get, reverse=True)[:2]
    assert set(top_two) == {"gzip", "sixtrack"}
    assert all(52 <= t <= 80 for t in steady.values())

    # Table 1b shape: the four oscillators swing several degrees.
    assert set(ranges) == {"bzip2", "ammp", "facerec", "fma3d"}
    assert all(hi - lo >= 3 for lo, hi in ranges.values())
