"""Benchmark: regenerate Table 5 (non-migration policy averages).

Paper reference: global stop-go 2.79 BIPS / 19.77% / 0.62X; dist stop-go
4.53 / 32.57% / 1.00X; global DVFS 9.36 / 66.49% / 2.07X; dist DVFS
11.36 / 81.02% / 2.51X.
"""

from benchmarks.conftest import save_result
from repro.experiments import table5


def test_table5(benchmark, config, results_dir):
    rows = benchmark.pedantic(
        table5.compute, args=(config,), rounds=1, iterations=1
    )
    save_result(results_dir, "table5", table5.render(rows))

    by_key = {r.spec_key: r for r in rows}
    # Shape assertions: ordering and rough factors must match the paper.
    assert by_key["global-stop-go-none"].relative_throughput < 0.85
    assert by_key["distributed-stop-go-none"].relative_throughput == 1.0
    assert 1.5 < by_key["global-dvfs-none"].relative_throughput < 3.2
    assert 1.9 < by_key["distributed-dvfs-none"].relative_throughput < 3.4
    assert (
        by_key["distributed-dvfs-none"].relative_throughput
        >= by_key["global-dvfs-none"].relative_throughput
    )
    assert by_key["distributed-dvfs-none"].duty_cycle > 0.65
    assert by_key["distributed-stop-go-none"].duty_cycle < 0.5
