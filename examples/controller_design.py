#!/usr/bin/env python3
"""Reproduce the paper's formal control design workflow (Section 4).

Walks the same path the authors took in MATLAB: start from the continuous
PI controller G(s) = Kp + Ki/s, discretise it at the trace sample period
(recovering the paper's published coefficients), check closed-loop
stability against a thermal plant via pole locations and a root-locus
sweep, and simulate the regulated step response.

Run:
    python examples/controller_design.py
"""

import numpy as np

from repro.control import (
    FirstOrderThermalPlant,
    closed_loop_step_response,
    design_paper_controller,
    is_stable,
    root_locus,
    settling_time,
)
from repro.control.pi import PAPER_KI, PAPER_KP
from repro.control.stability import stability_margin_gain
from repro.control.transfer import first_order_plant, pi_transfer_function

SAMPLE_PERIOD = 100_000 / 3.6e9  # 100k cycles at 3.6 GHz = 27.78 us


def main() -> None:
    print("=== 1. Discretising the paper's PI controller ===\n")
    design = design_paper_controller(SAMPLE_PERIOD)
    print(f"Continuous design: Kp = {PAPER_KP}, Ki = {PAPER_KI}")
    print(f"Sample period:     {SAMPLE_PERIOD * 1e6:.2f} us (the paper's '28 us')")
    print(
        "Discrete law:      u[n] = u[n-1] "
        f"- {design.b0:.4f} e[n] + {-design.b1:.6f} e[n-1]"
    )
    print("Paper's law:       u[n] = u[n-1] - 0.0107 e[n] + 0.003796 e[n-1]\n")

    print("=== 2. Stability (the paper's root-locus check) ===\n")
    controller = pi_transfer_function(PAPER_KP, PAPER_KI)
    plant = first_order_plant(gain=50.0, tau=7e-3)  # ms-scale thermal pole
    closed = (controller * plant).feedback()
    poles = closed.poles()
    print(f"Closed-loop poles: {np.array2string(poles, precision=2)}")
    print(f"All in left half plane: {is_stable(closed)}")
    margin = stability_margin_gain(
        controller * plant, gains=np.logspace(-1, 3, 30)
    )
    print(f"Stable up to a sampled loop-gain factor of {margin:.0f}x")
    locus = root_locus(controller * plant, gains=np.logspace(-1, 2, 12))
    print("Root locus (max real part per sampled gain):")
    for k, row in zip(np.logspace(-1, 2, 12), locus):
        finite = row[~np.isnan(row)]
        print(f"  gain x{k:7.2f}: max Re(pole) = {finite.real.max():9.2f}")
    print()

    print("=== 3. Regulated step response ===\n")
    hot_plant = FirstOrderThermalPlant(gain=55.0, tau=7e-3, ambient=45.0)
    setpoint = 82.2
    resp = closed_loop_step_response(design, hot_plant, setpoint, horizon=0.4)
    print(f"Plant: full-speed equilibrium {hot_plant.equilibrium(1.0):.1f} C "
          f"(above the limit); setpoint {setpoint} C")
    print(f"Final temperature: {resp.final_temperature:.2f} C")
    print(f"Peak temperature:  {resp.max_temperature:.2f} C "
          f"(emergency threshold 84.2 C)")
    print(f"Settling time:     {settling_time(resp) * 1000:.1f} ms")
    print(f"Equilibrium scale: {resp.outputs[-1]:.3f}")
    print("\nTemperature trajectory:")
    idx = np.linspace(0, len(resp.times) - 1, 12).astype(int)
    for i in idx:
        t = resp.times[i] * 1000
        bar = "#" * int((resp.temperatures[i] - 45) / 2)
        print(f"  t={t:6.1f} ms  {resp.temperatures[i]:6.2f} C  "
              f"scale={resp.outputs[i]:.2f}  {bar}")


if __name__ == "__main__":
    main()
