#!/usr/bin/env python3
"""Fault study: what happens when the thermal sensors lie?

Every policy in the paper acts on sensor readings, not on silicon truth.
This example injects the classic failure modes — noise, quantisation, and
the dangerous one, a *low-reading calibration bias* — and shows:

* noise and rounding cost a little throughput but stay safe (the PI
  integral filters them);
* a sensor reading 3 C low silently drives the silicon past the 84.2 C
  limit — closed-loop control cannot detect a biased input;
* an independent PROCHOT-style hardware trip (reading true silicon)
  restores safety, at the brutal cost such last-resort mechanisms carry —
  which is exactly why it's a backstop, not a policy.

Run:
    python examples/sensor_faults.py [duration_seconds]
"""

import sys
from dataclasses import replace

from repro import SimulationConfig, get_workload, run_workload, spec_by_key
from repro.util.tables import render_table


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    workload = get_workload("workload3")  # bzip2-gzip-twolf-swim, hot
    spec = spec_by_key("distributed-dvfs-none")
    base = SimulationConfig(duration_s=duration)

    scenarios = [
        ("ideal sensors", base),
        ("0.5 C noise", replace(base, sensor_noise_std_c=0.5)),
        ("1 C quantisation", replace(base, sensor_quantization_c=1.0)),
        ("reads 3 C LOW (dangerous)", replace(base, sensor_offset_c=-3.0)),
        (
            "reads 3 C low + hardware trip",
            replace(base, sensor_offset_c=-3.0, hardware_trip=True),
        ),
        ("reads 3 C high (wasteful)", replace(base, sensor_offset_c=3.0)),
    ]

    print(f"Workload: {workload.label} under '{spec.name}', {duration:.2f} s\n")
    rows = []
    for label, config in scenarios:
        r = run_workload(workload, spec, config)
        rows.append(
            [
                label,
                f"{r.bips:.2f}",
                f"{r.duty_cycle:.1%}",
                f"{r.max_temp_c:.1f}",
                f"{r.emergency_s * 1000:.1f}",
                str(r.prochot_events),
            ]
        )
    print(
        render_table(
            ["sensors", "BIPS", "duty", "max T (C)",
             "time over limit (ms)", "hardware trips"],
            rows,
        )
    )
    print(
        "\nThe low-reading sensor is the quiet catastrophe: best throughput "
        "on paper, silicon\nout of its envelope the whole time. The hardware "
        "trip catches it — by bluntly gating\nthe chip — which is why real "
        "processors carry both calibrated control sensors and\nan "
        "independent analog trip circuit."
    )


if __name__ == "__main__":
    main()
