#!/usr/bin/env python3
"""Quickstart: simulate one workload under thermal duress.

Runs the paper's gzip-twolf-ammp-lucas workload (workload7) three ways —
no thermal management, the distributed stop-go baseline, and the paper's
best policy (distributed DVFS + sensor-based migration) — and prints the
comparison. With no DTM the chip blows through the 84.2 C limit; stop-go
keeps it safe at a heavy throughput cost; the two-loop DVFS+migration
design keeps it safe at a fraction of that cost.

Run:
    python examples/quickstart.py [duration_seconds]
"""

import sys

from repro import SimulationConfig, get_workload, run_workload, spec_by_key
from repro.util.tables import render_table


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    workload = get_workload("workload7")
    config = SimulationConfig(duration_s=duration)

    print(f"Workload: {workload.label}")
    print(f"Silicon time: {duration:.3f} s, thermal limit: 84.2 C\n")

    scenarios = [
        ("No DTM (unthrottled)", None),
        ("Dist. stop-go (baseline)", spec_by_key("distributed-stop-go-none")),
        ("Dist. DVFS + sensor migration", spec_by_key("distributed-dvfs-sensor")),
    ]

    rows = []
    baseline_bips = None
    for label, spec in scenarios:
        result = run_workload(workload, spec, config)
        if spec is not None and spec.is_baseline:
            baseline_bips = result.bips
        rows.append((label, result))

    table = []
    for label, r in rows:
        rel = (
            f"{r.bips / baseline_bips:.2f}X"
            if baseline_bips and not label.startswith("No DTM")
            else "-"
        )
        table.append(
            [
                label,
                f"{r.bips:.2f}",
                f"{r.duty_cycle:.1%}",
                f"{r.max_temp_c:.1f}",
                "YES" if r.had_emergency else "no",
                rel,
            ]
        )
    print(
        render_table(
            ["policy", "BIPS", "duty cycle", "max temp (C)",
             "over limit?", "vs baseline"],
            table,
        )
    )
    print(
        "\nThe unthrottled run shows why DTM exists; the last row is the "
        "paper's headline ~2.6X result."
    )


if __name__ == "__main__":
    main()
