#!/usr/bin/env python3
"""Tour of the full DTM taxonomy (the paper's Table 2 / Table 8).

Runs all 12 policy combinations on one workload and prints the resulting
grid of relative throughputs, reproducing in miniature the paper's
summary table. Useful for exploring how the three axes interact on a
specific program mix.

Run:
    python examples/policy_tour.py [workload_name] [duration_seconds]
"""

import sys

from repro import (
    ALL_POLICY_SPECS,
    MigrationKind,
    PolicySpec,
    Scope,
    SimulationConfig,
    ThrottleKind,
    get_workload,
    run_workload,
)
from repro.util.tables import render_grid


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "workload8"
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    workload = get_workload(workload_name)
    config = SimulationConfig(duration_s=duration)

    print(f"Workload: {workload.label}, {duration:.3f} s per policy")
    print(f"Running all {len(ALL_POLICY_SPECS)} policy combinations...\n")

    results = {}
    for spec in ALL_POLICY_SPECS:
        results[spec.key] = run_workload(workload, spec, config)
        r = results[spec.key]
        print(
            f"  {spec.name:42s} BIPS={r.bips:6.2f} duty={r.duty_cycle:6.1%} "
            f"migrations={r.migrations}"
        )

    baseline = results["distributed-stop-go-none"].bips
    cells = []
    for scope in (Scope.GLOBAL, Scope.DISTRIBUTED):
        row = []
        for migration in (
            MigrationKind.NONE, MigrationKind.COUNTER, MigrationKind.SENSOR
        ):
            for throttle in (ThrottleKind.STOP_GO, ThrottleKind.DVFS):
                key = PolicySpec(throttle, scope, migration).key
                row.append(f"{results[key].bips / baseline:.2f}X")
        cells.append(row)

    print()
    print(
        render_grid(
            ["Global", "Distributed"],
            [
                "stop-go", "DVFS",
                "sg+counter", "DVFS+counter",
                "sg+sensor", "DVFS+sensor",
            ],
            cells,
            corner="scope",
            title=f"Relative throughput on {workload.name} "
                  "(vs. distributed stop-go)",
        )
    )


if __name__ == "__main__":
    main()
