#!/usr/bin/env python3
"""Extension demo: DTM on an asymmetric-core chip (paper Section 9).

The paper names asymmetric cores as a natural extension of its taxonomy.
This example builds a chip with two big (5.0 mm) and two small (2.65 mm)
cores — same microarchitecture and power, different silicon area, so the
small cores run any given thread at higher power density and hotter —
and shows:

1. thread placement now matters (hot threads belong on big cores), and
2. sensor-based migration discovers that by itself: its thread-core
   thermal table learns per-core biases, while counter-based migration
   (performance counters know the thread, not the die position) cannot.

Run:
    python examples/asymmetric_cores.py [duration_seconds]
"""

import sys

from repro.experiments import extensions
from repro.experiments.common import default_config


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    config = default_config(duration_s=duration)
    sizes = ", ".join(f"{s:.2f}" for s in extensions.ASYMMETRIC_SIZES)
    print(
        f"Chip: 4 cores sized [{sizes}] mm "
        f"(same total area as 4x4.0 mm)\n"
        f"Workload: {'-'.join(extensions.STUDY_BENCHMARKS)} "
        "(gzip/sixtrack hot, mcf/swim cool)\n"
    )

    print("Step 1 — does placement matter?\n")
    placement = extensions.placement_sensitivity(config)
    print(extensions.render(placement, "Placement sensitivity (dist. DVFS)"))
    by = {r.label: r for r in placement}
    gap = (
        by["asymmetric, hot on BIG cores"].bips
        - by["asymmetric, hot on SMALL cores"].bips
    )
    print(
        f"\nOn the asymmetric chip a bad placement costs "
        f"{gap / by['asymmetric, hot on BIG cores'].bips:.1%} of throughput; "
        "on the symmetric chip the\ntwo placements tie.\n"
    )

    print("Step 2 — can the OS fix a bad placement?\n")
    recovery = extensions.asymmetric_migration_study(config)
    print(extensions.render(recovery, "Migration recovery from bad placement"))
    rec = {r.label: r for r in recovery}
    print(
        "\nSensor-based migration recovers "
        f"{rec['sensor-based migration'].bips / rec['no migration'].bips - 1:+.1%} "
        "because its thermal table learns that the small\ncores run hot; "
        "counter-based migration "
        f"({rec['counter-based migration'].bips / rec['no migration'].bips - 1:+.1%}) "
        "cannot see the difference between cores."
    )


if __name__ == "__main__":
    main()
