#!/usr/bin/env python3
"""Explore the thermal substrate: floorplan, hotspots, and time constants.

Uses the HotSpot-style model directly (no DTM policy) to show why the
paper watches the two register files: run each benchmark's power profile
to steady state on one core of the 4-core chip and report the hottest
blocks, then demonstrate the millisecond-scale transient the stop-go and
DVFS policies operate against.

Run:
    python examples/thermal_hotspots.py
"""

import numpy as np

from repro.thermal import ThermalModel, build_cmp_floorplan
from repro.thermal.layouts import CORE_UNITS, core_block_name
from repro.thermal.leakage import LeakageModel
from repro.thermal.package import HIGH_PERFORMANCE_PACKAGE
from repro.uarch import PowerModel, generate_trace
from repro.uarch.config import MachineConfig
from repro.uarch.interval_model import UNIT_ORDER
from repro.util.tables import render_table


def steady_hotspots(model, leakage, unit_idx, trace, n_blocks):
    """Steady temperatures with benchmark power on core 0 only."""
    from repro.thermal.coupling import coupled_steady_state

    p = np.zeros(n_blocks)
    p[unit_idx] = trace.unit_power.mean(axis=0)
    temps, _ = coupled_steady_state(model, leakage, p, tolerance_c=1e-3)
    return temps


def main() -> None:
    machine = MachineConfig()
    floorplan = build_cmp_floorplan()
    model = ThermalModel(floorplan, HIGH_PERFORMANCE_PACKAGE, machine.sample_period_s)
    leakage = LeakageModel(floorplan, PowerModel(machine).reference_leakage_w)
    net = model.network
    unit_idx = np.array([net.index(core_block_name(0, u)) for u in UNIT_ORDER])

    print("=== Which unit limits each benchmark? ===\n")
    rows = []
    for name in ("gzip", "mcf", "sixtrack", "swim", "mesa", "ammp"):
        trace = generate_trace(name, machine, duration_s=0.02)
        temps = steady_hotspots(model, leakage, unit_idx, trace, net.n_blocks)
        core0 = {
            u: temps[net.index(core_block_name(0, u))] for u in CORE_UNITS
        }
        hottest = max(core0, key=core0.get)
        second = max((u for u in core0 if u != hottest), key=core0.get)
        rows.append(
            [
                name,
                hottest,
                f"{core0[hottest]:.1f}",
                second,
                f"{core0[second]:.1f}",
                f"{core0[hottest] - core0[second]:.1f}",
            ]
        )
    print(
        render_table(
            ["benchmark", "critical hotspot", "T (C)",
             "second hotspot", "T (C)", "imbalance"],
            rows,
        )
    )
    print(
        "\nInteger programs pin the integer register file, FP programs the "
        "FP register file\n— the imbalance column is what drives the "
        "paper's migration decisions (Figure 4).\n"
    )

    print("=== Transient response: why milliseconds matter ===\n")
    trace = generate_trace("gzip", machine, duration_s=0.02)
    p = np.zeros(net.n_blocks)
    p[unit_idx] = trace.unit_power.mean(axis=0)
    model.initialize_steady(p * 0.3)
    hot_block = core_block_name(0, "intreg")
    start = model.temperature_of(hot_block)
    samples = []
    step_ms = 0.5
    for k in range(20):  # 10 ms of full-power heating
        model.step(p + leakage.power(model.temperatures[: net.n_blocks]),
                   dt=step_ms * 1e-3)
        samples.append((step_ms * (k + 1), model.temperature_of(hot_block)))
    print(f"gzip steps from 30% power to full; {hot_block} heating curve:")
    for t_ms, temp in samples[::4]:
        bar = "#" * int((temp - start) * 3)
        print(f"  t={t_ms:5.1f} ms  {temp:6.2f} C  {bar}")
    tc = model.time_constants()
    print(
        f"\nFastest block time constants: {tc[0] * 1000:.1f} ms — the paper's "
        "30 ms stop-go freeze\nand 10 ms migration cadence both sit on this "
        "scale by design."
    )

    print("\n=== Die thermal map (grid-mode solver) ===\n")
    from repro.thermal import GridThermalModel

    grid = GridThermalModel(floorplan, HIGH_PERFORMANCE_PACKAGE, nx=64, ny=24)
    p_map = np.zeros(net.n_blocks)
    for c, name in enumerate(("gzip", "mcf", "sixtrack", "swim")):
        trace = generate_trace(name, machine, duration_s=0.02)
        idx = np.array(
            [net.index(core_block_name(c, u)) for u in UNIT_ORDER]
        )
        p_map[idx] = trace.unit_power.mean(axis=0) * 0.5
    print("gzip | mcf | sixtrack | swim, each at 50% power:")
    print(grid.temperature_map(p_map[: len(floorplan)]))


if __name__ == "__main__":
    main()
