#!/usr/bin/env python3
"""Anatomy of the two-loop design: watch migrations interact with DVFS.

Reproduces the paper's Figure 5 view on live data: runs workload7
(gzip-twolf-ammp-lucas) under distributed DVFS + counter-based migration
with full series recording, then prints, for the busiest core, the
residence timeline, both register-file temperatures, and the PI
controller's frequency output — the inner loop regulating while the outer
loop rotates threads.

Run:
    python examples/migration_anatomy.py [duration_seconds]
"""

import sys

import numpy as np

from repro import SimulationConfig, get_workload, run_workload, spec_by_key


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 0.12
    workload = get_workload("workload7")
    config = SimulationConfig(duration_s=duration, record_series=True)
    spec = spec_by_key("distributed-dvfs-counter")

    print(f"Running {workload.label} under '{spec.name}' for {duration:.2f} s...\n")
    result = run_workload(workload, spec, config)
    series = result.series

    print(
        f"BIPS={result.bips:.2f}  duty={result.duty_cycle:.1%}  "
        f"migrations={result.migrations}  max T={result.max_temp_c:.1f} C\n"
    )

    changes = (np.diff(series.assignments, axis=0) != 0).sum(axis=0)
    core = int(np.argmax(changes))
    pid_names = dict(enumerate(workload.benchmarks))
    view = series.core_series(core)

    print(f"=== Core {core}: residence timeline ===\n")
    boundaries = [0] + list(np.flatnonzero(np.diff(view["pid"]) != 0) + 1)
    for start, end in zip(boundaries, boundaries[1:] + [len(view["pid"])]):
        name = pid_names[int(view["pid"][start])]
        t0, t1 = view["times"][start] * 1000, view["times"][end - 1] * 1000
        mean_scale = view["scale"][start:end].mean()
        print(
            f"  {t0:7.1f} - {t1:7.1f} ms  {name:8s} "
            f"avg scale {mean_scale:.2f}  "
            f"intreg {view['intreg'][start:end].mean():.1f} C  "
            f"fpreg {view['fpreg'][start:end].mean():.1f} C"
        )

    print(f"\n=== Core {core}: sampled trace (Figure 5 style) ===\n")
    idx = np.linspace(0, len(view["times"]) - 1, 20).astype(int)
    print("   t (ms)   intreg   fpreg   scale  resident")
    for i in idx:
        name = pid_names[int(view["pid"][i])]
        scale_bar = "*" * int(view["scale"][i] * 20)
        print(
            f"  {view['times'][i] * 1000:7.2f}  {view['intreg'][i]:6.1f}  "
            f"{view['fpreg'][i]:6.1f}   {view['scale'][i]:.2f}   "
            f"{name:8s} {scale_bar}"
        )

    print(
        "\nNote how the critical hotspot sticks near the setpoint while the "
        "other register\nfile 'drifts' with whichever thread is resident — "
        "the behaviour Figure 5 of the\npaper illustrates, and the signal "
        "the sensor-based policy mines."
    )


if __name__ == "__main__":
    main()
