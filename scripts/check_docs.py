#!/usr/bin/env python
"""Documentation checker: relative links, anchors, and CLI examples.

Two failure classes this script turns from "reader finds out" into "CI
finds out":

* **Broken relative links.** Every ``[text](target)`` in the checked
  markdown set must resolve to a file in the repository (anchored
  links additionally need a matching heading in the target, using
  GitHub's slug rules).
* **Drifted CLI examples.** Every fenced ``repro ...`` /
  ``python -m repro ...`` command line is parsed against the *actual*
  ``repro.cli`` argument parser — a renamed flag, removed subcommand
  or invalid preset name fails the check without running a single
  simulation.

Stdlib + the repo's own import graph only; run from the repo root:

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import re
import shlex
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links and CLI examples are enforced.
CHECKED_DOCS: Tuple[str, ...] = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "docs/MODELING.md",
    "docs/PERFORMANCE.md",
    "docs/OBSERVABILITY.md",
    "docs/SERVING.md",
    "docs/SCENARIOS.md",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
#: Shell variable-assignment prefix (``PYTHONPATH=src python -m repro …``).
_ENV_PREFIX_RE = re.compile(r"^(?:[A-Za-z_][A-Za-z0-9_]*=\S+\s+)+")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def iter_links(text: str) -> Iterable[str]:
    """All markdown link targets in ``text`` (code fences excluded)."""
    in_fence = False
    for line in text.splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield match.group(1)


def check_links(path: Path, text: str) -> List[str]:
    """Broken-link/anchor error strings for one document."""
    errors = []
    for target in iter_links(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        ref, _, anchor = target.partition("#")
        dest = (path.parent / ref).resolve() if ref else path
        if ref and not dest.exists():
            errors.append(f"{path.name}: broken link -> {target}")
            continue
        if anchor:
            if dest.suffix != ".md":
                continue
            slugs = {
                github_slug(m.group(1))
                for m in map(
                    _HEADING_RE.match, dest.read_text().splitlines()
                )
                if m
            }
            if anchor not in slugs:
                errors.append(
                    f"{path.name}: dead anchor -> {target} "
                    f"(no heading slug {anchor!r} in {dest.name})"
                )
    return errors


def iter_fenced_commands(text: str) -> Iterable[str]:
    """Candidate CLI command lines from fenced code blocks.

    Joins backslash continuations, strips ``$`` prompts, environment
    prefixes and trailing ``#`` comments, and yields only lines that
    invoke the ``repro`` CLI (``repro …`` or ``python -m repro …`` —
    not ``python -m repro.experiments…`` module runs).
    """
    in_fence = False
    pending = ""
    for raw in text.splitlines():
        stripped = raw.strip()
        if _FENCE_RE.match(stripped):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        line = pending + stripped
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        if line.startswith("$"):
            line = line[1:].strip()
        line = _ENV_PREFIX_RE.sub("", line)
        line = line.split("#", 1)[0].strip()
        if line.startswith("python -m repro "):
            yield line[len("python -m repro "):]
        elif line.startswith("repro "):
            yield line[len("repro "):]


def normalise_argv(command: str) -> List[str]:
    """Shell-split a doc example, dropping ``[optional]`` groups."""
    command = re.sub(r"\[[^\]]*\]", "", command)
    command = command.replace("…", "").replace("...", "")
    return shlex.split(command)


def check_cli_examples(path: Path, text: str, parser) -> List[str]:
    """Unparseable-CLI-example error strings for one document."""
    errors = []
    for command in iter_fenced_commands(text):
        argv = normalise_argv(command)
        if not argv:
            continue
        try:
            parser.parse_args(argv)
        except SystemExit as exc:
            if exc.code not in (0, None):
                errors.append(
                    f"{path.name}: CLI example does not parse: "
                    f"repro {command}"
                )
    return errors


def main() -> int:
    """Run both checks over the documentation set; 0 iff clean."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import _build_parser

    parser = _build_parser()
    errors: List[str] = []
    commands = 0
    for rel in CHECKED_DOCS:
        path = REPO_ROOT / rel
        if not path.exists():
            errors.append(f"checked document missing: {rel}")
            continue
        text = path.read_text()
        errors.extend(check_links(path, text))
        found = list(iter_fenced_commands(text))
        commands += len(found)
        errors.extend(check_cli_examples(path, text, parser))
    if errors:
        print(f"{len(errors)} documentation problem(s):")
        for err in errors:
            print(f"  {err}")
        return 1
    print(
        f"ok: {len(CHECKED_DOCS)} documents, all relative links resolve, "
        f"{commands} CLI examples parse against the live parser"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
