#!/usr/bin/env python
"""Stdlib-only trace parentage checker for CI smoke jobs.

Validates a ``repro-trace/1`` span payload (the document served by
``GET /jobs/<id>/trace`` or written by the smoke scripts) **without
importing the repro package** — the point is an independent check of
the wire format, runnable against an artifact from any build:

* every span carries the required fields with well-formed hex ids;
* span ids are unique and all spans share one ``trace_id``;
* every ``parent_id`` refers to a span in the set — except exactly
  one root (a span whose parent is absent), which must be of kind
  ``request`` (override with ``--root-kind``);
* with ``--min-kinds N``, at least ``N`` distinct span kinds appear.

Usage::

    python scripts/check_trace.py trace.json --min-kinds 5

Exit code 0 when the trace is well-formed, 1 with one problem per
stderr line otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

#: The span-payload schema this checker understands.
TRACE_SCHEMA = "repro-trace/1"

#: Fields every span document must carry.
REQUIRED_FIELDS = (
    "name", "kind", "trace_id", "span_id", "started_at", "elapsed_s",
)


def _is_hex(value, width: int) -> bool:
    """Whether ``value`` is a lowercase hex string of ``width`` chars."""
    if not isinstance(value, str) or len(value) != width:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return value == value.lower()


def check_payload(payload: Dict, root_kind: str = "request",
                  min_kinds: int = 0) -> List[str]:
    """All problems with a trace payload; empty means well-formed."""
    problems: List[str] = []
    if payload.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected "
            f"{TRACE_SCHEMA!r}"
        )
    spans = payload.get("spans")
    if not isinstance(spans, list) or not spans:
        problems.append("payload has no spans")
        return problems

    ids = set()
    trace_ids = set()
    kinds = set()
    for i, span in enumerate(spans):
        if not isinstance(span, dict):
            problems.append(f"span[{i}] is not an object")
            continue
        missing = [f for f in REQUIRED_FIELDS if f not in span]
        if missing:
            problems.append(f"span[{i}] missing fields: {missing}")
            continue
        if not _is_hex(span["trace_id"], 32):
            problems.append(
                f"span[{i}] trace_id {span['trace_id']!r} is not 32-hex"
            )
        if not _is_hex(span["span_id"], 16):
            problems.append(
                f"span[{i}] span_id {span['span_id']!r} is not 16-hex"
            )
        if span["span_id"] in ids:
            problems.append(f"duplicate span_id {span['span_id']!r}")
        ids.add(span["span_id"])
        trace_ids.add(span["trace_id"])
        kinds.add(span["kind"])
        if span.get("elapsed_s", 0) < 0:
            problems.append(f"span[{i}] has negative elapsed_s")

    if len(trace_ids) > 1:
        problems.append(
            f"{len(trace_ids)} distinct trace_ids in one trace: "
            f"{sorted(trace_ids)}"
        )
    roots = [
        s for s in spans
        if isinstance(s, dict) and s.get("parent_id") not in ids
    ]
    if len(roots) != 1:
        problems.append(
            f"expected exactly one root span, found {len(roots)}: "
            f"{[r.get('name') for r in roots]}"
        )
    elif root_kind and roots[0].get("kind") != root_kind:
        problems.append(
            f"root span kind is {roots[0].get('kind')!r}, expected "
            f"{root_kind!r}"
        )
    if min_kinds and len(kinds) < min_kinds:
        problems.append(
            f"only {len(kinds)} span kinds present ({sorted(kinds)}), "
            f"need >= {min_kinds}"
        )
    return problems


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="validate a repro-trace/1 span payload"
    )
    parser.add_argument("trace", help="span payload JSON file")
    parser.add_argument(
        "--root-kind", default="request",
        help="required kind of the single root span (default: request; "
             "empty string disables the kind check)",
    )
    parser.add_argument(
        "--min-kinds", type=int, default=0, metavar="N",
        help="require at least N distinct span kinds (default: 0 = off)",
    )
    args = parser.parse_args(argv)
    with open(args.trace) as fh:
        payload = json.load(fh)
    problems = check_payload(
        payload, root_kind=args.root_kind, min_kinds=args.min_kinds
    )
    if problems:
        for problem in problems:
            print(f"check_trace: {problem}", file=sys.stderr)
        return 1
    spans = payload["spans"]
    kinds = sorted({s["kind"] for s in spans})
    print(
        f"check_trace: ok — {len(spans)} spans, one root, "
        f"kinds: {', '.join(kinds)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
