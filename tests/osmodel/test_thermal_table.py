"""Tests for the thread-core thermal trend table (Figure 6)."""

import pytest

from repro.osmodel.thermal_table import ThreadCoreThermalTable

UNITS = ("intreg", "fpreg")


def make_table(n_cores=4):
    return ThreadCoreThermalTable(n_cores, UNITS)


class TestRecording:
    def test_basic_record_and_estimate(self):
        t = make_table()
        t.record(0, 1, "intreg", observation=10.0, avg_scale=1.0)
        assert t.estimate(0, 1, "intreg") == pytest.approx(10.0)
        assert t.n_observations() == 1

    def test_cubic_normalisation(self):
        """An observation at half frequency is scaled by 8x (cubic)."""
        t = make_table()
        t.record(0, 1, "intreg", observation=1.0, avg_scale=0.5)
        assert t.estimate(0, 1, "intreg") == pytest.approx(8.0)

    def test_linear_normalisation_for_stopgo(self):
        t = make_table()
        t.record(0, 1, "intreg", observation=1.0, avg_scale=0.5, exponent=1.0)
        assert t.estimate(0, 1, "intreg") == pytest.approx(2.0)

    def test_running_mean(self):
        t = make_table()
        t.record(0, 0, "fpreg", 4.0, 1.0)
        t.record(0, 0, "fpreg", 8.0, 1.0)
        assert t.estimate(0, 0, "fpreg") == pytest.approx(6.0)

    def test_scale_floor_guards_division(self):
        t = make_table()
        t.record(0, 0, "intreg", 1.0, avg_scale=0.0)  # clamped to 0.05
        assert t.estimate(0, 0, "intreg") == pytest.approx(1.0 / 0.05 ** 3)

    def test_validation(self):
        t = make_table()
        with pytest.raises(KeyError):
            t.record(0, 0, "dcache", 1.0, 1.0)
        with pytest.raises(IndexError):
            t.record(0, 9, "intreg", 1.0, 1.0)
        with pytest.raises(ValueError):
            t.record(0, 0, "intreg", 1.0, 1.0, exponent=-1.0)
        with pytest.raises(KeyError):
            t.estimate(0, 0, "dcache")


class TestSufficiency:
    """The Figure 6 decision: enough data to estimate all combinations?"""

    def test_empty_table_insufficient(self):
        assert not make_table().is_sufficient([0, 1, 2, 3])

    def test_needs_two_threads_per_core(self):
        t = make_table(n_cores=2)
        t.record(0, 0, "intreg", 1.0, 1.0)
        t.record(0, 1, "intreg", 1.0, 1.0)
        t.record(1, 0, "intreg", 1.0, 1.0)
        # Core 1 has seen only thread 0.
        assert not t.is_sufficient([0, 1])
        t.record(1, 1, "intreg", 1.0, 1.0)
        assert t.is_sufficient([0, 1])

    def test_every_thread_needs_data(self):
        t = make_table(n_cores=2)
        for pid in (0, 1):
            for core in (0, 1):
                t.record(pid, core, "intreg", 1.0, 1.0)
        assert t.is_sufficient([0, 1])
        assert not t.is_sufficient([0, 1, 2])  # thread 2 never observed

    def test_profiling_suggestion_fills_gaps(self):
        t = make_table(n_cores=2)
        t.record(0, 0, "intreg", 1.0, 1.0)
        suggestion = t.most_needed_profiling([0, 1])
        assert suggestion is not None
        pid, core = suggestion
        # Thread 1 is unobserved; core 1 has no data at all.
        assert pid == 1
        assert core == 1

    def test_no_suggestion_when_saturated(self):
        t = make_table(n_cores=1)
        t.record(0, 0, "intreg", 1.0, 1.0)
        assert t.most_needed_profiling([0]) is None


class TestProfilingCandidates:
    def test_ordered_by_core_need(self):
        t = make_table(n_cores=2)
        # Core 0 has seen two threads; core 1 none.
        t.record(0, 0, "intreg", 1.0, 1.0)
        t.record(1, 0, "intreg", 1.0, 1.0)
        candidates = t.profiling_candidates([0, 1, 2])
        # The first suggestions target core 1 (fewest observed threads).
        assert candidates[0][1] == 1

    def test_least_observed_thread_first_within_core(self):
        t = make_table(n_cores=1)
        t.record(0, 0, "intreg", 1.0, 1.0)  # thread 0 observed
        candidates = t.profiling_candidates([0, 1, 2])
        # Threads 1 and 2 (never observed anywhere) come before... they
        # are the only candidates (thread 0 already seen on core 0).
        pids = [p for p, _c in candidates]
        assert 0 not in pids
        assert set(pids) == {1, 2}

    def test_saturated_table_has_no_candidates(self):
        t = make_table(n_cores=1)
        for pid in (0, 1):
            t.record(pid, 0, "intreg", 1.0, 1.0)
        assert t.profiling_candidates([0, 1]) == []


class TestEstimation:
    def test_unobserved_thread_returns_none(self):
        assert make_table().estimate(5, 0, "intreg") is None

    def test_additive_model_uses_core_bias(self):
        """A thread never seen on core 1 inherits core 1's bias measured
        through other threads — the cross-estimation Figure 6 describes."""
        t = make_table(n_cores=2)
        # Thread 0: observed on both cores; core1 reads 2.0 hotter.
        t.record(0, 0, "intreg", 5.0, 1.0)
        t.record(0, 1, "intreg", 7.0, 1.0)
        # Thread 1: observed only on core 0.
        t.record(1, 0, "intreg", 3.0, 1.0)
        est = t.estimate(1, 1, "intreg")
        # Thread 1 mean = 3.0, core-1 bias = +1.0 (7 - thread0 mean 6).
        assert est == pytest.approx(4.0)

    def test_direct_observation_beats_model(self):
        t = make_table(n_cores=2)
        t.record(0, 0, "intreg", 5.0, 1.0)
        t.record(0, 1, "intreg", 9.0, 1.0)
        assert t.estimate(0, 1, "intreg") == pytest.approx(9.0)

    def test_observed_queries(self):
        t = make_table()
        t.record(2, 3, "fpreg", 1.0, 1.0)
        assert t.observed_cores_of(2) == [3]
        assert t.observed_threads_on(3) == [2]
        assert t.observed_cores_of(0) == []


class TestValidationConstruction:
    def test_requires_units(self):
        with pytest.raises(ValueError):
            ThreadCoreThermalTable(4, ())

    def test_requires_cores(self):
        with pytest.raises(ValueError):
            ThreadCoreThermalTable(0, UNITS)
