"""Tests for the scheduler and migration mechanics."""

import pytest

from repro.osmodel.process import Process
from repro.osmodel.scheduler import Scheduler
from repro.uarch.tracegen import generate_trace

NAMES = ("gzip", "twolf", "ammp", "lucas")


def make_scheduler():
    processes = [
        Process(pid=i, benchmark=n, trace=generate_trace(n, duration_s=0.005))
        for i, n in enumerate(NAMES)
    ]
    return Scheduler(processes, n_cores=4)


class TestConstruction:
    def test_identity_assignment(self):
        s = make_scheduler()
        assert s.assignment == [0, 1, 2, 3]
        assert s.process_on(2).benchmark == "ammp"

    def test_process_count_must_match_cores(self):
        processes = [
            Process(pid=0, benchmark="gzip", trace=generate_trace("gzip", duration_s=0.005))
        ]
        with pytest.raises(ValueError):
            Scheduler(processes, n_cores=4)

    def test_duplicate_pids_rejected(self):
        t = generate_trace("gzip", duration_s=0.005)
        processes = [Process(pid=0, benchmark="gzip", trace=t) for _ in range(2)]
        with pytest.raises(ValueError):
            Scheduler(processes, n_cores=2)


class TestQueries:
    def test_core_of(self):
        s = make_scheduler()
        assert s.core_of(3) == 3
        with pytest.raises(KeyError):
            s.core_of(99)

    def test_process_lookup(self):
        s = make_scheduler()
        assert s.process(1).benchmark == "twolf"
        with pytest.raises(KeyError):
            s.process(99)

    def test_processes_in_pid_order(self):
        s = make_scheduler()
        assert [p.pid for p in s.processes] == [0, 1, 2, 3]


class TestMigration:
    def test_swap(self):
        s = make_scheduler()
        record = s.apply_assignment([1, 0, 2, 3], time_s=0.01)
        assert record is not None
        assert sorted(record.cores_involved) == [0, 1]
        assert set(record.moves) == {0, 1}
        assert s.process_on(0).benchmark == "twolf"
        assert s.process(0).migrations == 1
        assert s.process(2).migrations == 0

    def test_four_way_rotation(self):
        """"as complex as a four-way rotation" (Section 6.1)."""
        s = make_scheduler()
        record = s.apply_assignment([3, 0, 1, 2], time_s=0.01)
        assert len(record.cores_involved) == 4
        assert s.total_migrations == 4

    def test_noop_returns_none(self):
        s = make_scheduler()
        assert s.apply_assignment([0, 1, 2, 3], time_s=0.01) is None
        assert s.migration_history == []

    def test_non_permutation_rejected(self):
        s = make_scheduler()
        with pytest.raises(ValueError, match="permutation"):
            s.apply_assignment([0, 0, 2, 3], time_s=0.01)
        with pytest.raises(ValueError):
            s.apply_assignment([0, 1, 2], time_s=0.01)

    def test_history_accumulates(self):
        s = make_scheduler()
        s.apply_assignment([1, 0, 2, 3], time_s=0.01)
        s.apply_assignment([1, 0, 3, 2], time_s=0.02)
        assert len(s.migration_history) == 2
        assert s.total_migrations == 4
        assert s.migration_history[1].time_s == pytest.approx(0.02)

    def test_uninvolved_cores_not_penalised(self):
        s = make_scheduler()
        record = s.apply_assignment([1, 0, 2, 3], time_s=0.01)
        assert 2 not in record.cores_involved
        assert 3 not in record.cores_involved
