"""Tests for the process abstraction."""

import pytest

from repro.osmodel.process import Process
from repro.uarch.tracegen import generate_trace


def make_process(pid=0, name="gzip"):
    trace = generate_trace(name, duration_s=0.005)
    return Process(pid=pid, benchmark=name, trace=trace)


class TestConstruction:
    def test_basic(self):
        p = make_process()
        assert p.position == 0.0
        assert p.migrations == 0

    def test_benchmark_trace_mismatch_rejected(self):
        trace = generate_trace("gzip", duration_s=0.005)
        with pytest.raises(ValueError, match="does not match"):
            Process(pid=0, benchmark="mcf", trace=trace)

    def test_negative_pid_rejected(self):
        trace = generate_trace("gzip", duration_s=0.005)
        with pytest.raises(ValueError):
            Process(pid=-1, benchmark="gzip", trace=trace)


class TestProgress:
    def test_advance(self):
        p = make_process()
        p.advance(1.5)
        p.advance(0.25)
        assert p.position == pytest.approx(1.75)

    def test_cannot_go_backwards(self):
        p = make_process()
        with pytest.raises(ValueError):
            p.advance(-0.1)

    def test_completed_passes(self):
        p = make_process()
        n = p.trace.n_samples
        assert p.completed_passes == 0
        p.advance(n * 2.5)
        assert p.completed_passes == 2

    def test_repr_readable(self):
        assert "gzip" in repr(make_process())
