"""Tests for periodic timers and rate limiting."""

import pytest

from repro.osmodel.timer import (
    DEFAULT_MIGRATION_PERIOD_S,
    PeriodicTimer,
    RateLimiter,
)


class TestPeriodicTimer:
    def test_fires_once_per_period(self):
        t = PeriodicTimer(10e-3)
        fires = [t.fire_due(k * 1e-3) for k in range(35)]
        assert sum(fires) == 3  # at 10, 20, 30 ms

    def test_does_not_fire_early(self):
        t = PeriodicTimer(10e-3)
        assert not t.fire_due(9.9e-3)
        assert t.fire_due(10.0e-3)

    def test_coarse_steps_skip_missed_periods(self):
        """Jumping far ahead yields one firing, not a backlog."""
        t = PeriodicTimer(10e-3)
        assert t.fire_due(45e-3)
        assert not t.fire_due(46e-3)
        assert t.fire_due(50e-3)

    def test_next_fire_property(self):
        t = PeriodicTimer(10e-3, start_s=5e-3)
        assert t.next_fire_s == pytest.approx(15e-3)

    def test_reset(self):
        t = PeriodicTimer(10e-3)
        t.fire_due(10e-3)
        t.reset(12e-3)
        assert t.next_fire_s == pytest.approx(22e-3)

    def test_default_period_is_10ms(self):
        assert DEFAULT_MIGRATION_PERIOD_S == pytest.approx(10e-3)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(0.0)

    def test_float_accumulation_robust(self):
        """Thousands of tiny steps still fire exactly once per period."""
        t = PeriodicTimer(10e-3)
        dt = 27.78e-6
        fires = sum(t.fire_due(k * dt) for k in range(36_000))  # ~1 s
        assert fires == 99 or fires == 100


class TestRateLimiter:
    def test_first_action_allowed(self):
        r = RateLimiter(10e-3)
        assert r.allow(0.0)

    def test_too_soon_denied(self):
        """"extra requests are simply ignored" (Section 6.1)."""
        r = RateLimiter(10e-3)
        r.record(0.0)
        assert not r.allow(5e-3)
        assert r.allow(10e-3)

    def test_allow_does_not_record(self):
        r = RateLimiter(10e-3)
        assert r.allow(0.0)
        assert r.allow(0.0)  # still allowed: nothing recorded

    def test_try_acquire(self):
        r = RateLimiter(10e-3)
        assert r.try_acquire(0.0)
        assert not r.try_acquire(1e-3)
        assert r.try_acquire(10.1e-3)

    def test_rejects_bad_separation(self):
        with pytest.raises(ValueError):
            RateLimiter(0.0)
