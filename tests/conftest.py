"""Shared fixtures.

Simulation-heavy tests use short horizons (tens of milliseconds of
silicon time) — enough for the policies to engage (thermal time constants
are single-digit milliseconds) while keeping the suite fast. Session-
scoped fixtures share expensive artifacts (traces, reference runs).
"""

from __future__ import annotations

import os

import pytest

from repro.core.taxonomy import spec_by_key
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.workloads import get_workload
from repro.thermal.layouts import build_cmp_floorplan
from repro.thermal.model import ThermalModel
from repro.thermal.package import HIGH_PERFORMANCE_PACKAGE
from repro.uarch.config import MachineConfig
from repro.uarch.tracegen import generate_trace


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the on-disk result cache at a per-session temp directory.

    CLI invocations under test would otherwise write to the user's real
    ``~/.cache/repro-dtm``."""
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("result-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def machine() -> MachineConfig:
    """The paper's Table 3 machine."""
    return MachineConfig()


@pytest.fixture(scope="session")
def quick_config() -> SimulationConfig:
    """A short-horizon simulation configuration for engine tests."""
    return SimulationConfig(duration_s=0.05)


@pytest.fixture(scope="session")
def cmp_floorplan():
    """The 4-core chip floorplan."""
    return build_cmp_floorplan()


@pytest.fixture(scope="session")
def thermal_model(cmp_floorplan, machine):
    """A fresh-per-test thermal model factory is overkill; most thermal
    tests only read structure. Tests that mutate state construct their
    own models."""
    return ThermalModel(
        cmp_floorplan, HIGH_PERFORMANCE_PACKAGE, machine.sample_period_s
    )


@pytest.fixture(scope="session")
def gzip_trace(machine):
    """A short gzip power trace."""
    return generate_trace("gzip", machine, duration_s=0.02)


@pytest.fixture(scope="session")
def mcf_trace(machine):
    """A short mcf power trace."""
    return generate_trace("mcf", machine, duration_s=0.02)


@pytest.fixture(scope="session")
def quick_dvfs_run(quick_config):
    """One short distributed-DVFS run of workload7, shared read-only."""
    return run_workload(
        get_workload("workload7"), spec_by_key("distributed-dvfs-none"), quick_config
    )


@pytest.fixture(scope="session")
def quick_stopgo_run(quick_config):
    """One short distributed-stop-go run of workload7, shared read-only."""
    return run_workload(
        get_workload("workload7"),
        spec_by_key("distributed-stop-go-none"),
        quick_config,
    )
