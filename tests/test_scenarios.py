"""Scenario schema validation and cache-key participation.

``repro.scenarios`` is declarative data — frozen core-class and tech-node
tables — so these tests pin (a) the validation contract that keeps bad
scenarios out of the engine, (b) the derived per-core operating points
(power scales, DVFS floors, machine configs), and (c) that a scenario
participates in the content-addressed result cache key, so two runs that
differ only in scenario can never alias each other's cached results.
"""

from dataclasses import replace

import pytest

from repro.control.pi import MIN_FREQUENCY_SCALE
from repro.scenarios import (
    BIGLITTLE_4_4,
    CMP4,
    EFFICIENCY_CORE,
    MESH16,
    MESH64,
    PERFORMANCE_CORE,
    SCENARIOS,
    CoreClass,
    Scenario,
    TechNode,
    get_scenario,
    scenario_names,
)
from repro.sim.engine import SimulationConfig
from repro.sim.runner import RunPoint, config_hash
from repro.sim.workloads import get_workload, tile_workload


class TestCoreClass:
    def test_defaults_are_the_paper_core(self):
        cls = CoreClass("perf")
        assert cls.power_scale == 1.0
        assert cls.min_freq_scale == MIN_FREQUENCY_SCALE

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreClass("bad", size_mm=0.0)
        with pytest.raises(ValueError):
            CoreClass("bad", power_scale=-1.0)
        with pytest.raises(ValueError):
            CoreClass("bad", min_freq_scale=0.0)
        with pytest.raises(ValueError):
            CoreClass("bad", layout=(("icache", (0, 0, 1, 1)),))


class TestTechNode:
    def test_ladder_bottom_is_min_freq_scale(self):
        node = TechNode(
            "t", 90, 1.0, 3.6e9, ((0.7, 0.2), (0.85, 0.6), (1.0, 1.0))
        )
        assert node.min_freq_scale == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            TechNode("t", 90, 1.0, 3.6e9, ())
        with pytest.raises(ValueError):  # non-ascending frequencies
            TechNode("t", 90, 1.0, 3.6e9, ((0.9, 0.8), (0.7, 0.2)))
        with pytest.raises(ValueError):  # frequency above max scale
            TechNode("t", 90, 1.0, 3.6e9, ((1.0, 2.0),))
        with pytest.raises(ValueError):  # absurd ladder voltage
            TechNode("t", 90, 1.0, 3.6e9, ((9.0, 1.0),))


class TestScenario:
    def test_validation(self):
        with pytest.raises(ValueError):
            replace(MESH16, rows=0)
        with pytest.raises(ValueError):
            replace(MESH16, topology="torus")
        with pytest.raises(ValueError):  # row topology is single-row
            replace(CMP4, rows=2, cols=2)
        with pytest.raises(ValueError):  # class list must be 1 or n long
            replace(MESH16, core_classes=(PERFORMANCE_CORE,) * 3)

    def test_singleton_class_list_replicates(self):
        assert MESH16.core_class_for(0) is MESH16.core_class_for(15)
        assert MESH16.n_cores == 16

    def test_biglittle_per_core_tables(self):
        scales = BIGLITTLE_4_4.core_power_scales()
        floors = BIGLITTLE_4_4.core_min_scales()
        assert scales[:4] == [1.0] * 4
        assert scales[4:] == [EFFICIENCY_CORE.power_scale] * 4
        # Floors take the max of the class floor and the tech ladder
        # bottom rung, so the little cores sit above both.
        tech_floor = BIGLITTLE_4_4.tech.min_freq_scale
        assert floors[:4] == [max(MIN_FREQUENCY_SCALE, tech_floor)] * 4
        assert floors[4:] == [
            max(EFFICIENCY_CORE.min_freq_scale, tech_floor)
        ] * 4

    def test_machine_config_binds_tech_node(self):
        machine = MESH64.machine_config()
        assert machine.n_cores == 64
        assert machine.process_nm == MESH64.tech.process_nm
        assert machine.vdd == MESH64.tech.vdd
        assert machine.clock_hz == MESH64.tech.clock_hz

    def test_cmp4_machine_matches_paper_default(self):
        from repro.uarch.config import default_machine_config

        assert CMP4.machine_config() == default_machine_config()

    def test_floorplans_build_for_every_preset(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            fp = scenario.build_floorplan()
            core0_units = [n for n in fp.names if n.startswith("core0.")]
            assert len(core0_units) == 11
            assert "xbar" in fp.names

    def test_registry_lookup(self):
        assert get_scenario("mesh16") is MESH16
        assert set(scenario_names()) == set(SCENARIOS)
        with pytest.raises(KeyError):
            get_scenario("mesh9000")


class TestScenarioCacheKey:
    """The scenario field must reach the content-addressed cache key."""

    def _hash(self, scenario):
        workload = get_workload("workload7")
        config = SimulationConfig(duration_s=0.02)
        if scenario is not None:
            workload = tile_workload(workload, scenario.n_cores)
            config = replace(
                config, machine=scenario.machine_config(), scenario=scenario
            )
        return config_hash(RunPoint(workload, None, config), version="v")

    def test_scenario_changes_the_hash(self):
        assert self._hash(None) != self._hash(MESH16)
        assert self._hash(MESH16) != self._hash(BIGLITTLE_4_4)

    def test_equal_scenarios_hash_equal(self):
        assert self._hash(MESH16) == self._hash(replace(MESH16))

    def test_core_class_detail_changes_the_hash(self):
        """Even a buried field (one class's power scale) must re-key the
        cache: same machine, same floorplan topology, different physics."""
        tweaked = replace(
            MESH16,
            core_classes=(replace(PERFORMANCE_CORE, power_scale=1.01),),
        )
        assert self._hash(MESH16) != self._hash(tweaked)


class TestScenarioConfigValidation:
    def test_machine_core_count_must_match(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration_s=0.02, scenario=MESH16)

    def test_consistent_config_accepted(self):
        config = SimulationConfig(
            duration_s=0.02,
            machine=MESH16.machine_config(),
            scenario=MESH16,
        )
        assert config.scenario is MESH16
