"""Smoke tests: every example script runs to completion.

Examples are the first thing a new user executes; they must never rot.
Each is run in-process (same interpreter, tiny horizons via argv) and its
output spot-checked for the story it claims to tell.
"""

import pathlib
import runpy
import sys


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv, capsys):
    """Execute an example as __main__ with the given argv tail."""
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", ["0.01"], capsys)
        assert "No DTM" in out
        assert "2." in out or "1." in out  # a relative factor printed

    def test_policy_tour(self, capsys):
        out = run_example("policy_tour.py", ["workload1", "0.005"], capsys)
        assert "Relative throughput" in out
        assert out.count("X") >= 11  # the grid of factors

    def test_controller_design(self, capsys):
        out = run_example("controller_design.py", [], capsys)
        assert "0.0107" in out
        assert "left half plane: True" in out

    def test_migration_anatomy(self, capsys):
        out = run_example("migration_anatomy.py", ["0.03"], capsys)
        assert "residence timeline" in out

    def test_thermal_hotspots(self, capsys):
        out = run_example("thermal_hotspots.py", [], capsys)
        assert "critical hotspot" in out
        assert "intreg" in out and "fpreg" in out

    def test_asymmetric_cores(self, capsys):
        out = run_example("asymmetric_cores.py", ["0.02"], capsys)
        assert "Placement sensitivity" in out

    def test_sensor_faults(self, capsys):
        out = run_example("sensor_faults.py", ["0.02"], capsys)
        assert "hardware trip" in out
