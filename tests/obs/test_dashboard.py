"""Tests for run bundles and the report dashboards (ASCII, HTML, diff)."""

import xml.etree.ElementTree as ET
from dataclasses import replace

import pytest

from repro.core.taxonomy import spec_by_key
from repro.faults.models import FaultPlan, StuckAtFault
from repro.obs.dashboard import (
    MetricDelta,
    diff_metrics,
    load_bundle,
    render_ascii,
    render_diff,
    render_html,
    write_bundle,
)
from repro.obs.events import RunEventLog
from repro.obs.telemetry import TelemetrySampler
from repro.sim.engine import SimulationConfig, run_workload
from repro.sim.workloads import get_workload

W1 = get_workload("workload1")
CFG = SimulationConfig(duration_s=0.02)
DVFS = spec_by_key("distributed-dvfs-none")


def _bundle(tmp_path, name="run", config=CFG, with_events=True):
    sampler = TelemetrySampler(1e-3)
    log = RunEventLog() if with_events else None
    result = run_workload(W1, DVFS, config, telemetry=sampler, event_log=log)
    prefix = str(tmp_path / name)
    write_bundle(prefix, result, sampler, log)
    return prefix, result


class TestBundleRoundTrip:
    def test_all_artifacts_written_and_loaded(self, tmp_path):
        prefix, result = _bundle(tmp_path)
        bundle = load_bundle(prefix)
        assert bundle.result["bips"] == result.bips
        assert bundle.result["policy"] == result.policy
        assert bundle.result["telemetry"]["samples"] == 21
        assert bundle.series is not None
        assert bundle.series.n_samples == 21
        assert bundle.prom is not None
        assert bundle.events is not None
        assert (
            bundle.events.count("dvfs-transition") == result.dvfs_transitions
        )

    def test_eventless_bundle_loads(self, tmp_path):
        prefix, _ = _bundle(tmp_path, with_events=False)
        bundle = load_bundle(prefix)
        assert bundle.events is None
        assert "events" not in bundle.result
        assert bundle.annotation_times() == []

    def test_missing_bundle_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(str(tmp_path / "nope"))

    def test_core_series_extraction(self, tmp_path):
        prefix, _ = _bundle(tmp_path)
        bundle = load_bundle(prefix)
        temps = bundle.core_series("core_temp_c")
        assert sorted(temps) == [0, 1, 2, 3]
        assert all(len(v) == 21 for v in temps.values())


class TestAsciiDashboard:
    def test_contains_stats_and_sparklines(self, tmp_path):
        prefix, result = _bundle(tmp_path)
        text = render_ascii(load_bundle(prefix))
        assert "Dist. DVFS" in text
        assert f"{result.bips:.3f}" in text
        for core in range(4):
            assert f"T{core} (C)" in text
            assert f"f{core}" in text
        assert "Tmax (C)" in text
        assert "telemetry: 21 samples" in text

    def test_event_track_rendered_when_events_present(self, tmp_path):
        plan = FaultPlan(faults=(StuckAtFault(core=0, value_c=60.0),),
                         name="stuck")
        prefix, _ = _bundle(tmp_path, config=replace(CFG, fault_plan=plan))
        text = render_ascii(load_bundle(prefix))
        assert "events" in text
        assert "marks)" in text


class TestHtmlDashboard:
    def test_well_formed_xml_with_per_core_svgs(self, tmp_path):
        prefix, _ = _bundle(tmp_path)
        html = render_html(load_bundle(prefix))
        root = ET.fromstring(html)
        ns = {"x": "http://www.w3.org/1999/xhtml",
              "svg": "http://www.w3.org/2000/svg"}
        svgs = root.findall(".//svg:svg", ns)
        # temp + freq per core, plus the chip-hotspot lane.
        assert len(svgs) == 2 * 4 + 1
        for svg in svgs:
            assert svg.findall("svg:polyline", ns)
        headings = [h.text for h in root.findall(".//x:h2", ns)]
        for core in range(4):
            assert f"core {core}" in headings

    def test_event_annotations_and_prom_snapshot_inline(self, tmp_path):
        plan = FaultPlan(faults=(StuckAtFault(core=0, value_c=60.0),),
                         name="stuck")
        prefix, _ = _bundle(tmp_path, config=replace(CFG, fault_plan=plan))
        html = render_html(load_bundle(prefix))
        root = ET.fromstring(html)
        ns = {"svg": "http://www.w3.org/2000/svg",
              "x": "http://www.w3.org/1999/xhtml"}
        # The stuck-sensor fault emits a fault.sensor event -> marker line.
        assert root.findall(".//svg:line", ns)
        pre = root.findall(".//x:pre", ns)
        assert pre and "core_temp_c" in pre[0].text

    def test_self_contained(self, tmp_path):
        """No scripts, no external resources — viewable from a file://."""
        prefix, _ = _bundle(tmp_path)
        html = render_html(load_bundle(prefix))
        assert "<script" not in html
        assert "http-equiv" not in html
        assert 'src="http' not in html


class TestDiff:
    def test_identical_runs_produce_no_flags(self, tmp_path):
        prefix_a, _ = _bundle(tmp_path, "a")
        prefix_b, _ = _bundle(tmp_path, "b")
        deltas = diff_metrics(
            load_bundle(prefix_a).result, load_bundle(prefix_b).result
        )
        assert all(not d.flagged for d in deltas)

    def test_faulted_run_flags_metric_deltas(self, tmp_path):
        """The acceptance path: --diff flags a faulted run's deviation."""
        prefix_a, _ = _bundle(tmp_path, "a")
        plan = FaultPlan(faults=(StuckAtFault(core=0, value_c=60.0),),
                         name="stuck")
        prefix_b, _ = _bundle(
            tmp_path, "b", config=replace(CFG, fault_plan=plan)
        )
        deltas = diff_metrics(
            load_bundle(prefix_a).result, load_bundle(prefix_b).result
        )
        flagged = {d.metric for d in deltas if d.flagged}
        assert "bips" in flagged
        assert "max_temp_c" in flagged
        assert "events.fault.sensor" in flagged

    def test_render_marks_flagged_rows(self):
        deltas = [
            MetricDelta("bips", 10.0, 12.0, True),
            MetricDelta("migrations", 3.0, 3.0, False),
        ]
        text = render_diff(deltas, "a", "b")
        bips_line = next(line for line in text.splitlines() if "bips" in line)
        assert "<<" in bips_line
        assert "1 metric(s) differ" in text

    def test_render_clean_diff(self):
        text = render_diff([MetricDelta("bips", 1.0, 1.0, False)], "a", "b")
        assert "no metric deviations" in text
