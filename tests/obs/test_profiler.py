"""Unit tests for the named-section step profiler."""

import time

import pytest

from repro.obs.profiler import (
    NULL_PROFILER,
    StepProfiler,
    render_sections,
    sorted_sections,
)


class TestStepProfiler:
    def test_sections_accumulate(self):
        prof = StepProfiler()
        for _ in range(3):
            with prof.section("a"):
                time.sleep(0.001)
        with prof.section("b"):
            pass
        totals = prof.totals()
        assert totals["a"] >= 0.003
        assert totals["b"] >= 0.0
        assert prof.counts() == {"a": 3, "b": 1}
        assert prof.total_s == pytest.approx(sum(totals.values()))

    def test_empty_profiler(self):
        prof = StepProfiler()
        assert prof.totals() == {}
        assert prof.total_s == 0.0

    def test_merge(self):
        prof = StepProfiler()
        prof.merge({"a": 1.0, "b": 2.0})
        prof.merge({"a": 0.5, "c": 3.0})
        assert prof.totals() == {"a": 1.5, "b": 2.0, "c": 3.0}

    def test_exception_still_charged(self):
        prof = StepProfiler()
        with pytest.raises(RuntimeError):
            with prof.section("boom"):
                raise RuntimeError("bang")
        assert prof.counts() == {"boom": 1}


class TestNullProfiler:
    def test_sections_are_noops(self):
        with NULL_PROFILER.section("anything"):
            pass
        assert NULL_PROFILER.totals() == {}


class TestRendering:
    def test_sorted_hottest_first(self):
        assert sorted_sections({"cold": 0.1, "hot": 0.9}) == [
            ("hot", 0.9), ("cold", 0.1),
        ]

    def test_render_contains_sections_and_shares(self):
        text = render_sections({"hot": 0.75, "cold": 0.25}, title="t:")
        lines = text.splitlines()
        assert lines[0] == "t:"
        assert lines[1].lstrip().startswith("hot")
        assert "75.0%" in lines[1]
        assert "total" in lines[-1]

    def test_render_empty(self):
        assert "no profiled sections" in render_sections({})
