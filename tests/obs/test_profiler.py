"""Unit tests for the named-section step profiler."""

import time

import pytest

from repro.obs.profiler import (
    ENGINE_SECTIONS,
    NULL_PROFILER,
    StepProfiler,
    render_engine_sections,
    render_sections,
    sorted_sections,
)


class TestStepProfiler:
    def test_sections_accumulate(self):
        prof = StepProfiler()
        for _ in range(3):
            with prof.section("a"):
                time.sleep(0.001)
        with prof.section("b"):
            pass
        totals = prof.totals()
        assert totals["a"] >= 0.003
        assert totals["b"] >= 0.0
        assert prof.counts() == {"a": 3, "b": 1}
        assert prof.total_s == pytest.approx(sum(totals.values()))

    def test_empty_profiler(self):
        prof = StepProfiler()
        assert prof.totals() == {}
        assert prof.total_s == 0.0

    def test_merge(self):
        prof = StepProfiler()
        prof.merge({"a": 1.0, "b": 2.0})
        prof.merge({"a": 0.5, "c": 3.0})
        assert prof.totals() == {"a": 1.5, "b": 2.0, "c": 3.0}

    def test_exception_still_charged(self):
        prof = StepProfiler()
        with pytest.raises(RuntimeError):
            with prof.section("boom"):
                raise RuntimeError("bang")
        assert prof.counts() == {"boom": 1}

    def test_max_tracks_slowest_entry(self):
        prof = StepProfiler()
        with prof.section("a"):
            pass
        with prof.section("a"):
            time.sleep(0.002)
        maxes = prof.maxes()
        assert maxes["a"] >= 0.002
        assert maxes["a"] <= prof.totals()["a"]

    def test_as_dict_derives_mean_and_max(self):
        prof = StepProfiler()
        for _ in range(4):
            with prof.section("a"):
                time.sleep(0.001)
        stats = prof.as_dict()["a"]
        assert stats["count"] == 4
        assert stats["mean_s"] == pytest.approx(stats["total_s"] / 4)
        assert stats["max_s"] >= stats["mean_s"]

    def test_as_dict_merged_sections_have_no_counts(self):
        """Merged totals carry no entry counts, so mean/max stay zero."""
        prof = StepProfiler()
        prof.merge({"remote": 1.5})
        stats = prof.as_dict()["remote"]
        assert stats["total_s"] == 1.5
        assert stats["count"] == 0
        assert stats["mean_s"] == 0.0
        assert stats["max_s"] == 0.0


class TestNullProfiler:
    def test_sections_are_noops(self):
        with NULL_PROFILER.section("anything"):
            pass
        assert NULL_PROFILER.totals() == {}

    def test_allocation_free(self):
        """Every section() call returns the one shared no-op object."""
        a = NULL_PROFILER.section("sensors")
        b = NULL_PROFILER.section("power")
        assert a is b
        assert a is NULL_PROFILER.section("anything-else")


class TestRendering:
    def test_sorted_hottest_first(self):
        assert sorted_sections({"cold": 0.1, "hot": 0.9}) == [
            ("hot", 0.9), ("cold", 0.1),
        ]

    def test_render_contains_sections_and_shares(self):
        text = render_sections({"hot": 0.75, "cold": 0.25}, title="t:")
        lines = text.splitlines()
        assert lines[0] == "t:"
        assert lines[1].lstrip().startswith("hot")
        assert "75.0%" in lines[1]
        assert "total" in lines[-1]

    def test_render_empty(self):
        assert "no profiled sections" in render_sections({})

    def test_engine_render_canonical_order_with_zero_rows(self):
        """Canonical order, every section present even when unmeasured."""
        text = render_engine_sections({"power": 0.9, "sensors": 0.1})
        lines = [line.strip() for line in text.splitlines()]
        names = [line.split()[0] for line in lines[:-1]]
        assert names == list(ENGINE_SECTIONS)
        os_tick_line = next(line for line in lines if line.startswith("os-tick"))
        assert "0.00 ms" in os_tick_line
        assert "90.0%" in next(line for line in lines if line.startswith("power"))

    def test_engine_render_appends_extras_hottest_first(self):
        text = render_engine_sections({"power": 0.5, "zeta": 0.2, "alpha": 0.3})
        lines = [line.strip().split()[0] for line in text.splitlines()]
        assert lines[len(ENGINE_SECTIONS):-1] == ["alpha", "zeta"]
