"""Unit tests for the structured-logging conventions."""

import io
import logging

import pytest

from repro.obs.logconfig import LOG_LEVELS, configure_logging, get_logger


@pytest.fixture(autouse=True)
def _restore_root_logger():
    """Leave the ``repro`` logger exactly as the suite found it."""
    root = logging.getLogger("repro")
    handlers = list(root.handlers)
    level = root.level
    propagate = root.propagate
    yield
    root.handlers = handlers
    root.setLevel(level)
    root.propagate = propagate


class TestGetLogger:
    def test_repro_names_pass_through(self):
        assert get_logger("repro.sim.engine").name == "repro.sim.engine"
        assert get_logger("repro").name == "repro"

    def test_outside_names_are_parented(self):
        assert get_logger("myscript").name == "repro.myscript"


class TestConfigureLogging:
    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        log = get_logger("repro.test")
        log.debug("hidden")
        log.info("shown")
        text = stream.getvalue()
        assert "hidden" not in text
        assert "shown" in text

    def test_structured_format(self):
        stream = io.StringIO()
        configure_logging("debug", stream=stream)
        get_logger("repro.sim.engine").debug("msg %d", 7)
        line = stream.getvalue().strip()
        assert "DEBUG" in line
        assert "repro.sim.engine" in line
        assert ":: msg 7" in line

    def test_reconfigure_does_not_stack_handlers(self):
        for _ in range(3):
            configure_logging("warning", stream=io.StringIO())
        root = logging.getLogger("repro")
        ours = [h for h in root.handlers if getattr(h, "_repro_handler", False)]
        assert len(ours) == 1

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="log level"):
            configure_logging("loud")

    def test_all_documented_levels_accepted(self):
        for level in LOG_LEVELS:
            configure_logging(level, stream=io.StringIO())
