"""Unit tests for the metrics registry and telemetry instruments."""

import pytest

from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetrySampler,
    TelemetrySeries,
    instrument_id,
)


class TestInstrumentIds:
    def test_unlabelled(self):
        assert instrument_id("x_total", ()) == "x_total"

    def test_labels_sorted_and_quoted(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("core_temp_c", core=3)
        assert gauge.id == 'core_temp_c{core="3"}'


class TestCounter:
    def test_monotone(self):
        reg = MetricsRegistry()
        ctr = reg.counter("hits_total")
        ctr.inc()
        ctr.inc(2.5)
        assert ctr.value == 3.5

    def test_negative_rejected(self):
        ctr = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError):
            ctr.inc(-1.0)


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("temp_c")
        gauge.set(80.0)
        gauge.set(75.5)
        assert gauge.value == 75.5


class TestHistogram:
    def test_bucketing(self):
        hist = MetricsRegistry().histogram("err", buckets=(0.0, 1.0, 2.0))
        for v in (-0.5, 0.5, 0.5, 1.5, 99.0):
            hist.observe(v)
        # Per-bucket counts: one slot per finite bound plus overflow.
        assert hist.bucket_counts == [1, 2, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(101.0)
        assert hist.cumulative_counts() == [1, 3, 4, 5]

    def test_boundary_goes_to_lower_bucket(self):
        """``le`` semantics: a value equal to a bound lands at that bound."""
        hist = MetricsRegistry().histogram("err", buckets=(0.0, 1.0))
        hist.observe(1.0)
        assert hist.bucket_counts == [0, 1, 0]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("err", buckets=(1.0, 0.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", core=0)
        b = reg.counter("hits_total", core=0)
        assert a is b
        assert len(reg) == 1

    def test_labels_distinguish(self):
        reg = MetricsRegistry()
        a = reg.gauge("temp_c", core=0)
        b = reg.gauge("temp_c", core=1)
        assert a is not b
        assert len(reg) == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x", core=0)

    def test_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("err", buckets=(0.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("err", buckets=(0.0, 2.0), core=1)

    def test_collect_preserves_registration_order(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a_total")
        assert [i.name for i in reg.collect()] == ["b", "a_total"]

    def test_as_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("hits_total").inc(2)
        reg.gauge("temp_c", core=0).set(81.0)
        hist = reg.histogram("err", buckets=(0.0,))
        hist.observe(-1.0)
        snap = reg.as_dict()
        assert snap["hits_total"] == 2
        assert snap['temp_c{core="0"}'] == 81.0
        assert snap["err_count"] == 1
        assert snap["err_sum"] == -1.0

    def test_instrument_classes_exported(self):
        reg = MetricsRegistry()
        assert isinstance(reg.counter("c_total"), Counter)
        assert isinstance(reg.gauge("g"), Gauge)
        assert isinstance(reg.histogram("h", buckets=(0.0,)), Histogram)


class TestSeries:
    def test_append_and_rows(self):
        series = TelemetrySeries(1e-3, ["a", "b"])
        series.append(0.0, [1.0, 2.0])
        series.append(1e-3, [3.0, 4.0])
        assert series.n_samples == 2
        assert series.column("b") == [2.0, 4.0]
        assert series.rows() == [(0.0, [1.0, 2.0]), (1e-3, [3.0, 4.0])]

    def test_length_mismatch_rejected(self):
        series = TelemetrySeries(1e-3, ["a"])
        with pytest.raises(ValueError):
            series.append(0.0, [1.0, 2.0])


class TestSamplerConfig:
    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetrySampler(0.0)
        with pytest.raises(ValueError):
            TelemetrySampler(-1e-3)

    def test_stride_quantizes_to_whole_steps(self):
        sam = TelemetrySampler(1e-3)
        dt = 1.0 / 36000.0  # the engine's 27.78 us step
        assert sam.stride_steps(dt) == 36

    def test_stride_floors_at_one_step(self):
        sam = TelemetrySampler(1e-9)
        assert sam.stride_steps(2.7778e-5) == 1
