"""Unit tests for the typed run-event log."""

import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    EventLogSummary,
    RunEvent,
    RunEventLog,
    read_jsonl,
)


class TestEmit:
    def test_events_kept_in_order(self):
        log = RunEventLog()
        log.emit(0.0, "os-tick")
        log.emit(0.001, "dvfs-transition", 2, **{"from": 1.0, "to": 0.8})
        log.emit(0.002, "migration", 1, pid=3)
        assert [e.type for e in log] == ["os-tick", "dvfs-transition", "migration"]
        assert [e.time_s for e in log] == [0.0, 0.001, 0.002]

    def test_unknown_type_rejected(self):
        log = RunEventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit(0.0, "reactor-meltdown")

    def test_core_and_data_recorded(self):
        log = RunEventLog()
        log.emit(0.5, "prochot-trip", temp_c=85.0)
        (event,) = log.events
        assert event.core is None
        assert event.data == {"temp_c": 85.0}

    def test_every_documented_type_accepted(self):
        log = RunEventLog()
        for i, event_type in enumerate(EVENT_TYPES):
            log.emit(i * 0.001, event_type)
        assert len(log) == len(EVENT_TYPES)


class TestQueries:
    def _log(self):
        log = RunEventLog()
        log.emit(0.0, "stopgo-trip", cores=[0])
        log.emit(0.01, "stopgo-thaw", 0)
        log.emit(0.02, "stopgo-trip", cores=[1])
        return log

    def test_count_and_counts(self):
        log = self._log()
        assert log.count("stopgo-trip") == 2
        assert log.count("stopgo-thaw") == 1
        assert log.count("os-tick") == 0
        assert log.counts() == {"stopgo-trip": 2, "stopgo-thaw": 1}

    def test_of_type_preserves_order(self):
        trips = self._log().of_type("stopgo-trip")
        assert [e.time_s for e in trips] == [0.0, 0.02]

    def test_summary(self):
        summary = self._log().summary()
        assert isinstance(summary, EventLogSummary)
        assert summary.total == 3
        assert summary.count("stopgo-trip") == 2
        assert summary.count("migration") == 0


class TestJsonl:
    def test_schema_fields(self):
        event = RunEvent(0.25, "dvfs-transition", 1, {"from": 1.0, "to": 0.9})
        record = json.loads(event.to_json())
        assert record == {
            "t": 0.25, "type": "dvfs-transition", "core": 1,
            "from": 1.0, "to": 0.9,
        }

    def test_round_trip(self, tmp_path):
        log = RunEventLog()
        log.emit(0.0, "os-tick")
        log.emit(0.001, "migration", 2, pid=1)
        path = tmp_path / "events.jsonl"
        log.write_jsonl(path)
        records = read_jsonl(path)
        assert len(records) == 2
        assert records[0]["type"] == "os-tick"
        assert records[1] == {"t": 0.001, "type": "migration", "core": 2, "pid": 1}

    def test_every_line_is_json(self, tmp_path):
        log = RunEventLog()
        for i in range(5):
            log.emit(i * 0.01, "os-tick")
        text = log.to_jsonl()
        lines = text.strip().splitlines()
        assert len(lines) == 5
        for line in lines:
            json.loads(line)

    def test_streaming_to_file_object(self):
        import io

        log = RunEventLog()
        log.emit(0.0, "os-tick")
        log.emit(0.01, "migration", 1, pid=2)
        buf = io.StringIO()
        assert log.write_jsonl(buf) is None  # caller owns the handle
        assert buf.getvalue() == log.to_jsonl()

    def test_dump_jsonl_returns_event_count(self):
        import io

        log = RunEventLog()
        for i in range(3):
            log.emit(i * 0.01, "os-tick")
        assert log.dump_jsonl(io.StringIO()) == 3

    def test_from_jsonl_round_trips_every_documented_type(self, tmp_path):
        """write_jsonl -> from_jsonl is the identity for every event
        type, including per-type data payloads."""
        payloads = {
            "dvfs-transition": {"from": 1.0, "to": 0.8, "penalty_s": 1e-5},
            "dvfs-rejected": {"requested": 0.81, "current": 0.8},
            "stopgo-trip": {"cores": [0, 2]},
            "migration-decision": {"assignment": {"0": 1}},
            "migration": {"pid": 3},
            "prochot-trip": {"temp_c": 85.0},
            "emergency-enter": {"temp_c": 83.2},
            "emergency-exit": {"temp_c": 81.1},
            "fault.sensor": {"kind": "stuck-at", "unit": "intreg",
                             "end_s": 0.5},
            "fault.dvfs": {"kind": "reject", "requested": 0.7,
                           "current": 1.0},
            "fault.migration": {"assignment": {"1": 0}},
        }
        log = RunEventLog()
        for i, event_type in enumerate(EVENT_TYPES):
            log.emit(i * 0.001, event_type, i % 4,
                     **payloads.get(event_type, {}))
        path = tmp_path / "all.jsonl"
        log.write_jsonl(path)
        loaded = RunEventLog.from_jsonl(path)
        assert len(loaded) == len(EVENT_TYPES)
        assert loaded.counts() == log.counts()
        assert loaded.to_jsonl() == log.to_jsonl()
        for original, parsed in zip(log, loaded):
            assert parsed.type == original.type
            assert parsed.time_s == original.time_s
            assert parsed.core == original.core
            assert parsed.data == original.data

    def test_from_jsonl_accepts_file_object(self):
        import io

        log = RunEventLog()
        log.emit(0.0, "os-tick")
        buf = io.StringIO(log.to_jsonl())
        assert RunEventLog.from_jsonl(buf).counts() == {"os-tick": 1}

    def test_from_jsonl_rejects_unknown_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0.0, "type": "quantum-tunnel", "core": null}\n')
        with pytest.raises(ValueError, match="unknown event type"):
            RunEventLog.from_jsonl(path)
