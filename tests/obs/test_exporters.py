"""Unit tests for the telemetry export formats."""

import csv
import io
import json

import pytest

from repro.obs.exporters import (
    parse_prometheus_text,
    profile_trace_events,
    prometheus_text,
    read_series_jsonl,
    runner_trace_events,
    write_chrome_trace,
    write_series_csv,
    write_series_jsonl,
)
from repro.obs.profiler import ENGINE_SECTIONS
from repro.obs.telemetry import MetricsRegistry, TelemetrySeries


def _series():
    series = TelemetrySeries(1e-3, ['temp_c{core="0"}', "hits_total"])
    series.append(0.0, [80.123456789012345, 0.0])
    series.append(1e-3, [81.5, 3.0])
    return series


class TestSeriesJsonl:
    def test_round_trip_exact(self, tmp_path):
        path = tmp_path / "series.jsonl"
        original = _series()
        write_series_jsonl(original, path)
        loaded = read_series_jsonl(path)
        assert loaded.sample_period_s == original.sample_period_s
        assert list(loaded.columns) == list(original.columns)
        assert loaded.rows() == original.rows()  # floats exact

    def test_file_object_round_trip(self):
        buf = io.StringIO()
        write_series_jsonl(_series(), buf)
        buf.seek(0)
        assert read_series_jsonl(buf).n_samples == 2

    def test_header_schema(self, tmp_path):
        path = tmp_path / "series.jsonl"
        write_series_jsonl(_series(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == "repro-telemetry/1"
        assert header["sample_period_s"] == 1e-3

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "other/9", "sample_period_s": 1, '
                        '"columns": []}\n')
        with pytest.raises(ValueError, match="schema"):
            read_series_jsonl(path)


class TestSeriesCsv:
    def test_csv_values_round_trip_exactly(self, tmp_path):
        path = tmp_path / "series.csv"
        original = _series()
        write_series_csv(original, path)
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["t"] + list(original.columns)
        assert float(rows[1][1]) == 80.123456789012345


class TestPrometheus:
    def _registry(self):
        reg = MetricsRegistry()
        reg.gauge("core_temp_c", help="true core temperature", core=0).set(81.25)
        reg.gauge("core_temp_c", core=1).set(79.0)
        reg.counter("dvfs_transitions_total").inc(7)
        hist = reg.histogram("pi_error_c", buckets=(-1.0, 0.0, 1.0), domain=0)
        for v in (-2.0, -0.5, 0.5, 3.0):
            hist.observe(v)
        return reg

    def test_exposition_structure(self):
        text = prometheus_text(self._registry())
        assert "# HELP core_temp_c true core temperature" in text
        assert "# TYPE core_temp_c gauge" in text
        assert '# TYPE pi_error_c histogram' in text
        assert 'core_temp_c{core="0"} 81.25' in text
        assert 'pi_error_c_bucket{domain="0",le="+Inf"} 4' in text
        assert 'pi_error_c_count{domain="0"} 4' in text

    def test_buckets_cumulative(self):
        text = prometheus_text(self._registry())
        values = parse_prometheus_text(text)
        assert values['pi_error_c_bucket{domain="0",le="-1.0"}'] == 1
        assert values['pi_error_c_bucket{domain="0",le="0.0"}'] == 2
        assert values['pi_error_c_bucket{domain="0",le="1.0"}'] == 3
        assert values['pi_error_c_bucket{domain="0",le="+Inf"}'] == 4

    def test_parse_inverts_format(self):
        values = parse_prometheus_text(prometheus_text(self._registry()))
        assert values["dvfs_transitions_total"] == 7
        assert values['core_temp_c{core="1"}'] == 79.0


def _valid_trace_event(event):
    """Chrome trace-event schema check for the phases we emit."""
    assert event["ph"] in ("X", "M")
    assert isinstance(event["pid"], int)
    if event["ph"] == "X":
        assert isinstance(event["name"], str)
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert isinstance(event["tid"], int)
    else:
        assert event["name"] in ("process_name", "thread_name")
        assert "name" in event["args"]


class TestChromeTrace:
    def _profile(self):
        return {
            "sensors": {"total_s": 0.002, "count": 10, "mean_s": 2e-4,
                        "max_s": 3e-4},
            "power": {"total_s": 0.006, "count": 10, "mean_s": 6e-4,
                      "max_s": 7e-4},
        }

    def test_profile_events_nest_inside_run_span(self):
        events = profile_trace_events(self._profile(), label="test run")
        for event in events:
            _valid_trace_event(event)
        run = next(e for e in events if e.get("cat") == "run")
        sections = [e for e in events if e.get("cat") == "section"]
        assert run["dur"] == pytest.approx(0.008e6)
        assert len(sections) == 2
        for s in sections:
            assert s["ts"] >= run["ts"]
            assert s["ts"] + s["dur"] <= run["ts"] + run["dur"] + 1e-6

    def test_sections_in_canonical_order(self):
        events = profile_trace_events(self._profile())
        names = [e["name"] for e in events if e.get("cat") == "section"]
        canon = [n for n in ENGINE_SECTIONS if n in names]
        assert names == canon

    def test_runner_events_lane_per_pid(self):
        class Report:
            def __init__(self, pid, started_at, cache_hit=False):
                self.label = f"point-{pid}"
                self.key = "k" * 16
                self.cache_hit = cache_hit
                self.elapsed_s = 0.5
                self.sections = {"power": 0.3}
                self.started_at = started_at
                self.pid = pid

        reports = [Report(100, 10.0), Report(101, 10.2),
                   Report(102, 0.0, cache_hit=True)]
        events = runner_trace_events(reports)
        for event in events:
            _valid_trace_event(event)
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {100, 101}  # cache hit skipped
        spans = [e for e in events if e.get("cat") == "run"]
        assert min(e["ts"] for e in spans) == 0.0  # aligned to first start

    def test_runner_events_empty_without_executions(self):
        assert runner_trace_events([]) == []

    def test_written_file_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(profile_trace_events(self._profile()), path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert isinstance(payload["traceEvents"], list)
        for event in payload["traceEvents"]:
            _valid_trace_event(event)
