"""Unit tests of the span layer: contexts, recorders, documents, rendering.

End-to-end propagation through a live server is covered in
``tests/serve/test_tracing.py``; non-perturbation and cache-key
independence in ``tests/sim/test_tracing.py``. This module pins the
building blocks themselves.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.exporters import span_trace_events
from repro.obs.tracing import (
    KIND_EXECUTE,
    KIND_POINT,
    KIND_REQUEST,
    KIND_SECTION,
    NULL_TRACER,
    NullRecorder,
    Span,
    SpanRecorder,
    TRACE_SCHEMA,
    TraceContext,
    finished_span,
    render_waterfall,
    section_spans,
    span_from_dict,
    spans_from_payload,
    spans_payload,
    validate_trace,
)
from repro.util.ascii_plot import span_bar


class TestTraceContext:
    def test_new_mints_wellformed_ids(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.parent_id is None
        int(ctx.trace_id, 16)
        int(ctx.span_id, 16)

    def test_child_shares_trace_and_links_parent(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_traceparent_round_trip(self):
        ctx = TraceContext.new()
        header = ctx.to_traceparent()
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        parsed = TraceContext.from_traceparent(header)
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",                                  # wrong widths
        "00-" + "g" * 32 + "-" + "0" * 16 + "-01",        # non-hex
        "00-" + "0" * 32 + "-" + "1234567890abcdef-01",   # all-zero trace
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",        # all-zero span
    ])
    def test_malformed_headers_are_dropped(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_header_parse_is_case_and_space_tolerant(self):
        ctx = TraceContext.new()
        header = "  " + ctx.to_traceparent().upper() + " "
        assert TraceContext.from_traceparent(header) == TraceContext(
            ctx.trace_id, ctx.span_id
        )

    def test_bad_widths_rejected_at_construction(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id="abc", span_id="0" * 16)

    def test_context_pickles(self):
        import pickle

        ctx = TraceContext.new().child()
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestSpanRecorder:
    def test_span_context_manager_records_one_span(self):
        rec = SpanRecorder()
        with rec.span("work", KIND_EXECUTE, backend="pool") as active:
            assert active.context is not None
            active.annotate(n_points=3)
        (span,) = rec.spans()
        assert span.name == "work"
        assert span.kind == KIND_EXECUTE
        assert span.attrs == {"backend": "pool", "n_points": 3}
        assert span.elapsed_s >= 0.0
        assert span.span_id == active.context.span_id

    def test_exception_annotates_and_still_records(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom", KIND_EXECUTE):
                raise RuntimeError("nope")
        (span,) = rec.spans()
        assert span.attrs["error"] == "RuntimeError: nope"

    def test_parented_span_joins_the_trace(self):
        rec = SpanRecorder()
        parent = TraceContext.new()
        with rec.span("child", KIND_POINT, parent=parent):
            pass
        (span,) = rec.spans()
        assert span.trace_id == parent.trace_id
        assert span.parent_id == parent.span_id

    def test_recorder_is_thread_safe(self):
        rec = SpanRecorder()
        parent = TraceContext.new()

        def hammer():
            for i in range(100):
                rec.record(finished_span(
                    parent.child(), f"s{i}", KIND_POINT, 0.0, 0.0,
                ))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec) == 800
        ids = {s.span_id for s in rec.spans()}
        assert len(ids) == 800

    def test_extend_folds_in_foreign_spans(self):
        rec = SpanRecorder()
        ctx = TraceContext.new()
        foreign = [finished_span(ctx.child(), "w", KIND_POINT, 1.0, 0.5)]
        rec.extend(foreign)
        assert rec.spans() == foreign


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", KIND_EXECUTE) as active:
            assert active.context is None
            active.annotate(ignored=True)
        assert NULL_TRACER.spans() == []
        assert len(NULL_TRACER) == 0

    def test_null_tracer_shares_one_active_span(self):
        a = NULL_TRACER.span("a", KIND_EXECUTE)
        b = NULL_TRACER.span("b", KIND_POINT, parent=TraceContext.new())
        assert a is b

    def test_record_and_extend_are_noops(self):
        rec = NullRecorder()
        ctx = TraceContext.new()
        rec.record(finished_span(ctx, "x", KIND_POINT, 0.0, 0.0))
        rec.extend([finished_span(ctx, "y", KIND_POINT, 0.0, 0.0)])
        assert rec.spans() == []


class TestSpanDocuments:
    def make_trace(self):
        root_ctx = TraceContext.new()
        root = finished_span(root_ctx, "job-1", KIND_REQUEST, 10.0, 1.0)
        child_ctx = root_ctx.child()
        child = finished_span(child_ctx, "exec", KIND_EXECUTE, 10.1, 0.8)
        leaf = finished_span(
            child_ctx.child(), "p0", KIND_POINT, 10.2, 0.5, mode="pool"
        )
        return [root, child, leaf]

    def test_span_dict_round_trip_is_identity(self):
        for span in self.make_trace():
            clone = span_from_dict(json.loads(json.dumps(span.to_dict())))
            assert clone == span

    def test_payload_round_trip(self):
        spans = self.make_trace()
        payload = spans_payload(spans)
        assert payload["schema"] == TRACE_SCHEMA
        assert payload["n_spans"] == 3
        assert payload["trace_id"] == spans[0].trace_id
        assert spans_from_payload(payload) == spans

    def test_payload_with_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            spans_from_payload({"schema": "bogus", "spans": []})

    def test_validate_accepts_wellformed_trace(self):
        spans = self.make_trace()
        assert validate_trace(spans) == []
        assert validate_trace(spans, root_kind=KIND_REQUEST) == []

    def test_validate_flags_problems(self):
        spans = self.make_trace()
        assert validate_trace([]) == ["trace has no spans"]
        assert any(
            "kind" in p
            for p in validate_trace(spans, root_kind=KIND_POINT)
        )
        two_roots = spans + [
            finished_span(TraceContext.new(), "other", KIND_REQUEST, 0, 1)
        ]
        problems = validate_trace(two_roots)
        assert any("trace ids" in p for p in problems)
        assert any("one root" in p for p in problems)
        dupe = spans + [spans[-1]]
        assert any("duplicate" in p for p in validate_trace(dupe))

    def test_remote_parent_is_still_one_root(self):
        """A server-side set parented on the client's span has one root."""
        client = TraceContext.new()
        request_ctx = client.child()
        spans = [
            finished_span(request_ctx, "job-1", KIND_REQUEST, 0.0, 1.0),
            finished_span(request_ctx.child(), "exec", KIND_EXECUTE, 0.1, 0.8),
        ]
        assert validate_trace(spans, root_kind=KIND_REQUEST) == []


class TestSectionSpans:
    def test_sections_lay_out_sequentially_in_canonical_order(self):
        parent = TraceContext.new()
        sections = {
            "thermal-step": 0.2, "sensors": 0.1, "weird-extra": 0.05,
        }
        spans = section_spans(parent, started_at=100.0, sections=sections)
        names = [s.name for s in spans]
        assert names == ["sensors", "thermal-step", "weird-extra"]
        assert spans[0].started_at == 100.0
        assert spans[1].started_at == pytest.approx(100.1)
        assert spans[2].started_at == pytest.approx(100.3)
        assert all(s.kind == KIND_SECTION for s in spans)
        assert all(s.parent_id == parent.span_id for s in spans)


class TestRendering:
    def test_span_bar_geometry(self):
        assert len(span_bar(0.0, 1.0, 0.0, 0.5, width=10)) == 10
        full = span_bar(0.0, 1.0, 0.0, 1.0, width=10)
        assert full.strip() != ""
        # Sub-column spans still leave a visible tick.
        tick = span_bar(0.0, 1.0, 0.5, 0.5000001, width=10)
        assert tick.strip() != ""

    def test_waterfall_renders_every_span_once(self):
        spans = TestSpanDocuments().make_trace()
        out = render_waterfall(spans, width=30)
        assert "3 spans" in out
        for span in spans:
            assert span.name in out
        assert "[pool]" in out
        assert render_waterfall([]) == "(empty trace)\n"

    def test_chrome_export_carries_ids_and_parents(self):
        spans = TestSpanDocuments().make_trace()
        events = span_trace_events(spans)
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) == len(spans)
        by_name = {e["name"]: e for e in complete}
        assert by_name["p0"]["args"]["parent_id"] == spans[1].span_id
        assert by_name["p0"]["args"]["mode"] == "pool"
