"""Tests for the sensitivity/ablation studies."""


from repro.experiments import ablations
from repro.experiments.common import default_config

CFG = default_config(duration_s=0.04)
WORKLOADS = ("workload3", "workload7")


class TestThresholdSweep:
    def test_higher_threshold_higher_duty(self):
        """Section 5.3: raising the limit to 100 C raises duty cycles."""
        points = ablations.threshold_sweep(
            thresholds=(84.2, 100.0), config=CFG, workloads=WORKLOADS
        )
        by_label = {p.label: p for p in points}
        for policy in ("Dist. stop-go", "Dist. DVFS"):
            low = by_label[f"{policy} @ 84.2C"].duty_cycle
            high = by_label[f"{policy} @ 100.0C"].duty_cycle
            assert high > low

    def test_ordering_preserved_across_thresholds(self):
        """"the relative performance tradeoffs remain as presented"."""
        points = ablations.threshold_sweep(
            thresholds=(84.2, 100.0), config=CFG, workloads=WORKLOADS
        )
        by_label = {p.label: p for p in points}
        for t in ("84.2", "100.0"):
            assert (
                by_label[f"Dist. DVFS @ {t}C"].bips
                > by_label[f"Dist. stop-go @ {t}C"].bips
            )


class TestSensorFidelity:
    def test_ideal_no_emergencies(self):
        points = ablations.sensor_fidelity_sweep(config=CFG, workloads=WORKLOADS)
        ideal = next(p for p in points if p.label == "ideal")
        assert ideal.emergency_s == 0.0

    def test_noise_degrades_gracefully(self):
        points = ablations.sensor_fidelity_sweep(config=CFG, workloads=WORKLOADS)
        by_label = {p.label: p for p in points}
        # Heavy noise may cost duty or safety, but the system keeps working.
        assert by_label["noise 2.0C"].bips > 0.3 * by_label["ideal"].bips


class TestSensorBias:
    def test_low_bias_breaks_envelope_and_trip_restores_it(self):
        points = {p.label: p for p in ablations.sensor_bias_sweep(
            config=CFG, workloads=WORKLOADS
        )}
        assert points["reads 3C low"].emergency_s > 0
        assert points["reads 3C low + hardware trip"].emergency_s == 0.0
        assert points["calibrated"].emergency_s == 0.0

    def test_high_bias_conservative(self):
        points = {p.label: p for p in ablations.sensor_bias_sweep(
            config=CFG, workloads=WORKLOADS
        )}
        assert points["reads 3C high"].bips <= points["calibrated"].bips


class TestPiGainSweep:
    def test_wide_gain_range_remains_safe(self):
        """Section 4.1: the constants "can deviate significantly"."""
        points = ablations.pi_gain_sweep(
            gain_factors=(0.5, 1.0, 2.0), config=CFG
        )
        for p in points:
            assert p.emergency_s < 0.002, p.label
            assert p.bips > 0

    def test_throughput_insensitive_near_nominal(self):
        points = ablations.pi_gain_sweep(gain_factors=(0.5, 1.0, 2.0), config=CFG)
        bips = [p.bips for p in points]
        assert max(bips) / min(bips) < 1.2


class TestMigrationPeriod:
    def test_sweep_produces_points(self):
        points = ablations.migration_period_sweep(
            periods_s=(5e-3, 20e-3), config=CFG, workloads=WORKLOADS
        )
        assert len(points) == 2
        for p in points:
            assert p.bips > 0


class TestRender:
    def test_render(self):
        points = ablations.migration_period_sweep(
            periods_s=(10e-3,), config=CFG, workloads=WORKLOADS
        )
        text = ablations.render(points, "Ablation: demo")
        assert "Ablation: demo" in text
        assert "period 10 ms" in text
