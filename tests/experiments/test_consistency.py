"""Cross-experiment consistency.

Tables 5-8 and Figures 3/7 are views over one policy x workload grid;
computing them in any order against the same configuration must produce
mutually consistent numbers (same underlying cached runs).
"""

import pytest

from repro.experiments import figure3, figure7, table5, table6, table7, table8
from repro.experiments.common import clear_result_cache, default_config
from repro.sim.workloads import get_workload

CFG = default_config(duration_s=0.03)
WORKLOADS = [get_workload(n) for n in ("workload1", "workload7", "workload10")]


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_result_cache()
    yield


def test_table5_and_table8_agree():
    rows = table5.compute(CFG, WORKLOADS)
    grid = table8.compute(CFG, WORKLOADS)
    for r in rows:
        assert grid.relative[r.spec_key] == pytest.approx(
            r.relative_throughput, rel=1e-12
        ), r.spec_key


def test_table6_and_table8_agree():
    rows = table6.compute(CFG, WORKLOADS)
    grid = table8.compute(CFG, WORKLOADS)
    for r in rows:
        assert grid.relative[r.spec_key] == pytest.approx(
            r.relative_throughput, rel=1e-12
        ), r.spec_key


def test_table7_consistent_with_table6(  ):
    rows6 = {r.spec_key: r for r in table6.compute(CFG, WORKLOADS)}
    rows7 = table7.compute(CFG, WORKLOADS)
    for r7 in rows7:
        counter_key = r7.spec_key.replace("sensor", "counter")
        expected = r7.bips / rows6[counter_key].bips
        assert r7.speedup_over_counter == pytest.approx(expected, rel=1e-12)


def test_figure3_means_match_table5_ratio_of_sums():
    """Per-workload figure bars are consistent with the averaged table:
    sum(policy bips) / sum(baseline bips) equals the table's relative."""
    rows5 = {r.spec_key: r for r in table5.compute(CFG, WORKLOADS)}
    bars = figure3.compute(CFG, WORKLOADS)
    from repro.experiments.common import run_matrix
    from repro.experiments.table5 import TABLE5_SPECS

    grid = run_matrix(list(TABLE5_SPECS), WORKLOADS, CFG)
    base_sum = sum(grid["distributed-stop-go-none"][w.name].bips for w in WORKLOADS)
    for key in figure3.FIGURE3_KEYS:
        policy_sum = sum(grid[key][w.name].bips for w in WORKLOADS)
        assert rows5[key].relative_throughput == pytest.approx(
            policy_sum / base_sum, rel=1e-12
        )


def test_figure7_deltas_match_tables():
    rows6 = {r.spec_key: r for r in table6.compute(CFG, WORKLOADS)}
    bars = figure7.compute(CFG, WORKLOADS)
    # The average per-workload delta and the table's aggregate speedup
    # must at least agree in sign regime (both are small numbers around 0).
    avg_delta = sum(b.counter_delta_pct for b in bars) / len(bars)
    aggregate = (
        rows6["distributed-dvfs-counter"].speedup_over_base - 1.0
    ) * 100.0
    assert abs(avg_delta - aggregate) < 5.0


def test_repeated_computation_identical():
    """Computing the same table twice gives bit-identical rows."""
    a = table5.compute(CFG, WORKLOADS)
    b = table5.compute(CFG, WORKLOADS)
    for ra, rb in zip(a, b):
        assert ra.bips == rb.bips
        assert ra.duty_cycle == rb.duty_cycle
