"""Tests for the robustness (fault-severity x policy) harness."""

import json

import pytest

from repro.cli import main
from repro.core.taxonomy import spec_by_key
from repro.experiments import robustness
from repro.experiments.common import default_config
from repro.faults.models import SENSOR_FAULT_TYPES, FaultPlan
from repro.sim.runner import ParallelRunner, ResultCache


SPECS = [spec_by_key("global-stop-go-none"), spec_by_key("global-dvfs-none")]


class TestSeverityPlans:
    def test_none_is_no_plan(self):
        assert robustness.severity_plan("none", 0.1) is None

    @pytest.mark.parametrize("severity", ("mild", "moderate", "severe"))
    def test_plans_valid_for_default_machine(self, severity):
        plan = robustness.severity_plan(severity, 0.1, n_cores=4)
        assert isinstance(plan, FaultPlan) and not plan.is_empty
        plan.validate_targets(4, ("intreg", "fpreg"))

    def test_plans_scale_with_duration(self):
        short = robustness.severity_plan("mild", 0.01)
        long = robustness.severity_plan("mild", 1.0)
        assert short != long  # windows are fractions of the horizon
        drift_s = next(
            f for f in short.faults if isinstance(f, SENSOR_FAULT_TYPES)
        )
        drift_l = next(
            f for f in long.faults if isinstance(f, SENSOR_FAULT_TYPES)
        )
        assert drift_l.start_s == pytest.approx(100 * drift_s.start_s)

    def test_severities_strictly_escalate(self):
        mild = robustness.severity_plan("mild", 0.1)
        moderate = robustness.severity_plan("moderate", 0.1)
        severe = robustness.severity_plan("severe", 0.1)
        assert len(mild.faults) < len(moderate.faults) <= len(severe.faults)
        assert not mild.actuator_faults == ()
        assert severe.sensor_faults and severe.actuator_faults

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            robustness.severity_plan("apocalyptic", 0.1)

    def test_plan_construction_is_pure(self):
        assert robustness.severity_plan("severe", 0.1) == (
            robustness.severity_plan("severe", 0.1)
        )


class TestCompute:
    @pytest.fixture(scope="class")
    def report(self):
        return robustness.compute(
            config=default_config(duration_s=0.008),
            specs=SPECS,
            severities=("none", "severe"),
            include_guards=True,
        )

    def test_report_shape(self, report):
        assert report.severities == ("none", "severe")
        assert [r.spec_key for r in report.rows] == [s.key for s in SPECS]
        for row in report.rows:
            assert len(row.cells) == 2
            assert row.guarded_cells is not None
            assert len(row.guarded_cells) == 2

    def test_baseline_cell_is_identity(self, report):
        for row in report.rows:
            none_cell = row.cells[0]
            assert none_cell.severity == "none"
            assert none_cell.relative_bips == pytest.approx(1.0)
            assert none_cell.emergency_delta_s == pytest.approx(0.0)
            assert none_cell.injected == 0

    def test_severe_cell_injects(self, report):
        for row in report.rows:
            assert row.cells[1].injected > 0

    def test_baseline_implicit_when_none_not_requested(self):
        report = robustness.compute(
            config=default_config(duration_s=0.008),
            specs=SPECS[:1],
            severities=("severe",),
        )
        (row,) = report.rows
        assert report.severities == ("severe",)
        assert len(row.cells) == 1
        assert row.guarded_cells is None

    def test_render_mentions_each_policy_and_severity(self, report):
        text = robustness.render(report)
        for row in report.rows:
            assert row.spec_key in text
        for severity in report.severities:
            assert severity in text
        assert "guard layer" in text  # guarded table present

    def test_serial_and_parallel_sweeps_identical(self, tmp_path):
        kwargs = dict(
            config=default_config(duration_s=0.008),
            specs=SPECS,
            severities=("none", "moderate"),
        )
        serial = robustness.compute(
            runner=ParallelRunner(jobs=1, cache=None), **kwargs
        )
        parallel = robustness.compute(
            runner=ParallelRunner(
                jobs=2, cache=ResultCache(tmp_path / "cache")
            ),
            **kwargs,
        )
        assert serial == parallel

    def test_cache_hits_on_rerun(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            config=default_config(duration_s=0.008),
            specs=SPECS[:1],
            severities=("none", "mild"),
        )
        first = robustness.compute(
            runner=ParallelRunner(jobs=1, cache=cache), **kwargs
        )
        rerun_runner = ParallelRunner(jobs=1, cache=cache)
        second = robustness.compute(runner=rerun_runner, **kwargs)
        assert first == second
        assert rerun_runner.stats.cache_hits == rerun_runner.stats.points
        assert rerun_runner.stats.simulated == 0


class TestCLI:
    def test_robustness_command(self, capsys, tmp_path):
        out_file = tmp_path / "degradation.txt"
        rc = main(
            ["robustness", "-d", "0.008",
             "-p", "global-stop-go-none", "global-dvfs-none",
             "--severities", "mild", "-o", str(out_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Degradation under injected faults" in out
        assert "global-dvfs-none" in out
        assert out_file.read_text().startswith("Degradation")

    def test_experiment_robustness_duration_override(self, capsys):
        # Ensure 'robustness' rides the generic experiment dispatcher too.
        assert "robustness" in __import__("repro.cli", fromlist=["EXPERIMENTS"]).EXPERIMENTS

    def test_run_with_fault_spec(self, capsys, tmp_path):
        spec_file = tmp_path / "faults.json"
        spec_file.write_text(json.dumps({
            "name": "cli-test",
            "faults": [
                {"kind": "calibration-step", "start_s": 0.0,
                 "end_s": "inf", "offset_c": -3.0},
                {"kind": "dvfs-reject", "start_s": 0.0, "end_s": "inf",
                 "prob": 1.0},
            ],
            "guards": {},
        }))
        rc = main(
            ["run", "-p", "global-dvfs-none", "-d", "0.008",
             "--fault-spec", str(spec_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults:" in out
        assert "guards:" in out

    def test_run_with_bad_fault_spec(self, tmp_path):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(json.dumps({
            "faults": [{"kind": "meltdown"}]
        }))
        with pytest.raises(ValueError, match="unknown fault kind"):
            main(["run", "-d", "0.005", "--fault-spec", str(spec_file)])
