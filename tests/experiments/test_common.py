"""Tests for the shared experiment machinery."""

import pytest

from repro.core.taxonomy import BASELINE_SPEC, spec_by_key
from repro.experiments.common import (
    average_metrics,
    clear_result_cache,
    default_config,
    run_cached,
    run_matrix,
)
from repro.sim.workloads import ALL_WORKLOADS

QUICK = default_config(duration_s=0.01)
WORKLOADS = list(ALL_WORKLOADS[:2])


class TestCaching:
    def test_cache_hit_returns_same_object(self):
        clear_result_cache()
        a = run_cached(WORKLOADS[0], BASELINE_SPEC, QUICK)
        b = run_cached(WORKLOADS[0], BASELINE_SPEC, QUICK)
        assert a is b

    def test_cache_distinguishes_policies(self):
        a = run_cached(WORKLOADS[0], BASELINE_SPEC, QUICK)
        b = run_cached(WORKLOADS[0], spec_by_key("distributed-dvfs-none"), QUICK)
        assert a is not b

    def test_cache_distinguishes_configs(self):
        a = run_cached(WORKLOADS[0], BASELINE_SPEC, QUICK)
        b = run_cached(
            WORKLOADS[0], BASELINE_SPEC, default_config(duration_s=0.012)
        )
        assert a is not b

    def test_clear_reports(self):
        run_cached(WORKLOADS[0], BASELINE_SPEC, QUICK)
        assert clear_result_cache() >= 1


class TestRunMatrix:
    def test_structure(self):
        grid = run_matrix([BASELINE_SPEC, None], WORKLOADS, QUICK)
        assert set(grid) == {BASELINE_SPEC.key, "unthrottled"}
        assert set(grid[BASELINE_SPEC.key]) == {w.name for w in WORKLOADS}

    def test_unthrottled_entry(self):
        grid = run_matrix([None], WORKLOADS, QUICK)
        r = grid["unthrottled"][WORKLOADS[0].name]
        assert r.policy == "unthrottled"


class TestAverages:
    def test_relative_throughput_of_baseline_is_one(self):
        grid = run_matrix([BASELINE_SPEC], WORKLOADS, QUICK)
        base = grid[BASELINE_SPEC.key]
        avg = average_metrics(base, base, BASELINE_SPEC)
        assert avg.relative_throughput == pytest.approx(1.0)
        assert avg.policy_name == BASELINE_SPEC.name

    def test_mismatched_workloads_rejected(self):
        grid = run_matrix([BASELINE_SPEC], WORKLOADS, QUICK)
        base = grid[BASELINE_SPEC.key]
        partial = {WORKLOADS[0].name: base[WORKLOADS[0].name]}
        with pytest.raises(ValueError):
            average_metrics(partial, base, BASELINE_SPEC)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_metrics({}, {}, BASELINE_SPEC)
